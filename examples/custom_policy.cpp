// Writing a custom allocation policy against the public AllocationPolicy
// interface, and racing it against the built-in schemes.
//
// The example policy, "MissShare", is intentionally simple: it grants a
// slab to whichever class carries the largest share of recent misses,
// taking it from the class with the smallest share — a coarse cousin of
// PSA that ignores density. The point is the mechanics: subscribe to the
// engine's events, keep your own telemetry, and compose the engine's
// primitive moves (EvictClassLru / MigrateSlabClassLru) inside MakeRoom.
//
//   $ ./example_custom_policy
#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "pamakv/policy/policy.hpp"
#include "pamakv/sim/experiment.hpp"
#include "pamakv/trace/generators.hpp"

using namespace pamakv;

namespace {

class MissSharePolicy final : public AllocationPolicy {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "miss-share";
  }

  void Attach(CacheEngine& engine) override {
    AllocationPolicy::Attach(engine);
    misses_.assign(engine.classes().num_classes(), 0);
  }

  void OnTick(AccessClock now) override {
    if (now - window_start_ < kWindow) return;
    window_start_ = now;
    for (auto& m : misses_) m /= 2;  // exponential forgetting
  }

  void OnMiss(KeyId, Bytes, MicroSecs, ClassId cls, SubclassId) override {
    ++misses_[cls];
  }

  [[nodiscard]] bool MakeRoom(ClassId cls, SubclassId) override {
    // If the requester is the top misser, take a slab from the bottom one.
    const auto top = static_cast<ClassId>(
        std::max_element(misses_.begin(), misses_.end()) - misses_.begin());
    if (cls == top) {
      ClassId donor = cls;
      std::uint64_t least = ~0ULL;
      for (ClassId c = 0; c < engine().classes().num_classes(); ++c) {
        if (c == cls || engine().pool().ClassSlabCount(c) == 0) continue;
        if (misses_[c] < least) {
          least = misses_[c];
          donor = c;
        }
      }
      if (donor != cls && engine().MigrateSlabClassLru(donor, cls)) {
        return true;
      }
    }
    return engine().EvictClassLru(cls);
  }

 private:
  static constexpr AccessClock kWindow = 50'000;
  std::vector<std::uint64_t> misses_;
  AccessClock window_start_ = 0;
};

SimResult Race(std::unique_ptr<AllocationPolicy> policy, Bytes cache) {
  EngineConfig cfg;
  cfg.capacity_bytes = cache;
  CacheEngine engine(cfg, std::move(policy));
  auto workload = EtcWorkload(1'000'000);
  SyntheticTrace trace(workload);
  Simulator sim;
  return sim.Run(engine, trace);
}

}  // namespace

int main() {
  const Bytes cache = 32ULL * 1024 * 1024;

  const SimResult custom = Race(std::make_unique<MissSharePolicy>(), cache);

  std::printf("%-12s hit=%.3f avg=%.2f ms\n", "miss-share",
              custom.overall_hit_ratio,
              custom.overall_avg_service_time_us / 1000.0);

  for (const char* scheme : {"memcached", "psa", "pama"}) {
    auto engine = MakeEngine(scheme, cache, SizeClassConfig{});
    auto workload = EtcWorkload(1'000'000);
    SyntheticTrace trace(workload);
    Simulator sim;
    const SimResult r = sim.Run(*engine, trace);
    std::printf("%-12s hit=%.3f avg=%.2f ms\n", scheme, r.overall_hit_ratio,
                r.overall_avg_service_time_us / 1000.0);
  }
  std::puts("\n(miss-share is a teaching policy: it chases misses without "
            "weighing size or penalty,\n so expect it between memcached and "
            "psa on hit ratio and far from pama on service time)");
  return 0;
}
