// MRC explorer: profile a workload's exact LRU miss-ratio curve AND its
// miss-PENALTY curve in one pass, before running any full simulation.
//
// The two curves disagreeing is the paper's whole motivation: the cache
// size where the miss *ratio* flattens is not where the miss *cost*
// flattens. This tool makes that visible for any trace file or synthetic
// workload.
//
//   $ ./example_mrc_explorer --generate etc --requests 1000000
//   $ ./example_mrc_explorer --trace mytrace.pkvt --bucket-mb 4
#include <cstdio>
#include <memory>
#include <string>

#include "pamakv/sim/mrc.hpp"
#include "pamakv/trace/generators.hpp"
#include "pamakv/trace/trace_io.hpp"
#include "pamakv/util/arg_parser.hpp"

using namespace pamakv;

int main(int argc, char** argv) {
  const ArgParser args(argc, argv);

  std::unique_ptr<TraceSource> trace;
  const std::string path = args.GetString("trace", "");
  if (!path.empty()) {
    trace = std::make_unique<BinaryTraceReader>(path);
  } else {
    const std::string name = args.GetString("generate", "etc");
    const auto requests =
        static_cast<std::uint64_t>(args.GetInt("requests", 1'000'000));
    WorkloadConfig cfg = name == "app" ? AppWorkload(requests)
                                       : EtcWorkload(requests);
    trace = std::make_unique<SyntheticTrace>(cfg);
  }

  const Bytes bucket =
      static_cast<Bytes>(args.GetInt("bucket-mb", 2)) * 1024 * 1024;
  MattsonProfiler profiler(bucket);
  profiler.Profile(*trace);
  const auto curve = profiler.Build();

  std::printf("cache_mb,miss_ratio,miss_penalty_ms_per_get\n");
  for (std::size_t i = 0; i < curve.miss_ratio.size(); ++i) {
    std::printf("%.1f,%.5f,%.4f\n",
                static_cast<double>((i + 1) * bucket) / (1024.0 * 1024.0),
                curve.miss_ratio[i],
                curve.miss_penalty_per_get_us[i] / 1000.0);
  }

  std::fprintf(stderr,
               "%llu GETs over %zu unique keys; %llu cold misses.\n",
               static_cast<unsigned long long>(curve.gets),
               profiler.unique_keys(),
               static_cast<unsigned long long>(curve.cold_misses));
  // Where does each curve reach within 10% of its floor?
  auto knee = [](const std::vector<double>& ys) -> std::size_t {
    if (ys.empty()) return 0;
    const double floor = ys.back();
    const double target = floor + 0.1 * (ys.front() - floor);
    for (std::size_t i = 0; i < ys.size(); ++i) {
      if (ys[i] <= target) return i;
    }
    return ys.size() - 1;
  };
  std::fprintf(stderr,
               "miss-ratio knee at ~%.0f MB; miss-penalty knee at ~%.0f MB "
               "— when these differ, penalty-aware allocation has room to "
               "work.\n",
               static_cast<double>((knee(curve.miss_ratio) + 1) * bucket) /
                   (1024.0 * 1024.0),
               static_cast<double>(
                   (knee(curve.miss_penalty_per_get_us) + 1) * bucket) /
                   (1024.0 * 1024.0));
  return 0;
}
