// Quickstart: build a PAMA-managed cache, exercise GET/SET/DEL, and read
// the stats — the minimal tour of the public API.
//
//   $ ./example_quickstart
#include <cstdio>

#include "pamakv/sim/experiment.hpp"

using namespace pamakv;

int main() {
  // A 16 MiB cache with the paper's five penalty bands, managed by PAMA.
  // MakeEngine wires the engine and policy; constructing CacheEngine with a
  // std::make_unique<PamaPolicy>(...) directly works the same way.
  auto cache = MakeEngine("pama", 16ULL * 1024 * 1024, SizeClassConfig{});

  // SET: key, value size in bytes, and the miss penalty you measured for
  // this key (how long the backend takes to recompute it).
  cache->Set(/*key=*/1001, /*size=*/120, /*penalty=*/25'000 /*25 ms*/);
  cache->Set(1002, 4'096, 800'000 /*0.8 s — expensive to recompute*/);

  // GET: pass the size + penalty so a miss can be routed and charged; a
  // real deployment takes them from its backend instrumentation.
  const GetResult hit = cache->Get(1001, 120, 25'000);
  std::printf("GET 1001 -> %s (service time %lld us)\n",
              hit.hit ? "HIT" : "MISS",
              static_cast<long long>(hit.service_time_us));

  const GetResult miss = cache->Get(9999, 64, 50'000);
  std::printf("GET 9999 -> %s (service time %lld us)\n",
              miss.hit ? "HIT" : "MISS",
              static_cast<long long>(miss.service_time_us));

  // Write-allocate after the miss, Memcached style.
  cache->Set(9999, 64, 50'000);
  std::printf("GET 9999 -> %s after write-allocate\n",
              cache->Get(9999, 64, 50'000).hit ? "HIT" : "MISS");

  cache->Del(1001);
  std::printf("GET 1001 -> %s after DEL\n",
              cache->Get(1001, 120, 25'000).hit ? "HIT" : "MISS");

  const CacheStats& stats = cache->stats();
  std::printf(
      "\nstats: %llu gets, %llu hits, %llu misses, hit ratio %.2f,\n"
      "       avg service time %.2f ms, %llu evictions, %llu slab "
      "migrations\n",
      static_cast<unsigned long long>(stats.gets),
      static_cast<unsigned long long>(stats.get_hits),
      static_cast<unsigned long long>(stats.get_misses), stats.HitRatio(),
      stats.AvgServiceTimeUs(cache->hit_time_us()) / 1000.0,
      static_cast<unsigned long long>(stats.evictions),
      static_cast<unsigned long long>(stats.slab_migrations));

  std::printf("cache: %zu items in %zu slabs (%zu free)\n",
              cache->item_count(),
              cache->pool().total_slabs() - cache->pool().free_slabs(),
              cache->pool().free_slabs());
  return 0;
}
