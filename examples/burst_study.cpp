// Burst study: how a cache scheme rides out a flood of unpopular items —
// the scenario of the paper's Sec. IV-C, runnable against any scheme.
//
//   $ ./example_burst_study --scheme psa
//   $ ./example_burst_study --scheme pama --burst-pct 25
#include <cstdio>
#include <iostream>

#include "pamakv/sim/experiment.hpp"
#include "pamakv/trace/generators.hpp"
#include "pamakv/trace/injector.hpp"
#include "pamakv/util/arg_parser.hpp"

using namespace pamakv;

int main(int argc, char** argv) {
  const ArgParser args(argc, argv);
  const std::string scheme = args.GetString("scheme", "pama");
  const Bytes cache =
      static_cast<Bytes>(args.GetInt("cache-mb", 24)) * 1024 * 1024;
  const auto requests =
      static_cast<std::uint64_t>(args.GetInt("requests", 1'500'000));
  const double burst_pct = args.GetDouble("burst-pct", 10.0);

  SimConfig sim_cfg;
  sim_cfg.window_gets = 50'000;
  ExperimentRunner runner(SizeClassConfig{}, SchemeOptions{}, sim_cfg);

  // Baseline run, then the same workload with a cold burst spliced in.
  SimResult results[2];
  for (const int with_burst : {0, 1}) {
    std::unique_ptr<TraceSource> trace =
        std::make_unique<SyntheticTrace>(EtcWorkload(requests));
    if (with_burst) {
      ColdBurstConfig burst;
      burst.after_gets = requests / 20;
      burst.total_bytes =
          static_cast<Bytes>(static_cast<double>(cache) * burst_pct / 100.0);
      burst.impacted_classes = {2, 3, 4};
      trace = std::make_unique<ColdBurstInjector>(std::move(trace), burst,
                                                  SizeClassConfig{});
    }
    results[with_burst] = runner.RunOne(scheme, cache, *trace, "etc");
  }

  std::printf("window, hit_no_burst, hit_with_burst, avg_ms_no_burst, "
              "avg_ms_with_burst\n");
  const std::size_t n =
      std::min(results[0].windows.size(), results[1].windows.size());
  double worst_drop = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const auto& a = results[0].windows[i];
    const auto& b = results[1].windows[i];
    std::printf("%zu, %.4f, %.4f, %.3f, %.3f\n", i, a.hit_ratio, b.hit_ratio,
                a.avg_service_time_us / 1000.0,
                b.avg_service_time_us / 1000.0);
    worst_drop = std::max(worst_drop, a.hit_ratio - b.hit_ratio);
  }
  std::fprintf(stderr,
               "%s: burst of %.0f%% of the cache -> worst window hit-ratio "
               "drop %.3f; overall avg %.2f -> %.2f ms\n",
               scheme.c_str(), burst_pct, worst_drop,
               results[0].overall_avg_service_time_us / 1000.0,
               results[1].overall_avg_service_time_us / 1000.0);
  return 0;
}
