// Trace replay: run any scheme over a trace file or a synthetic workload
// and print the per-window metric series.
//
//   # synthesize, dump, then replay a binary trace:
//   $ ./example_trace_replay --generate etc --requests 500000 --dump /tmp/etc.pkvt
//   $ ./example_trace_replay --trace /tmp/etc.pkvt --scheme pama --cache-mb 48
//
//   # or replay a CSV trace ("op,key,size,penalty_us[,timestamp_us]"):
//   $ ./example_trace_replay --trace mytrace.csv --scheme psa
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>

#include "pamakv/sim/experiment.hpp"
#include "pamakv/trace/generators.hpp"
#include "pamakv/trace/trace_io.hpp"
#include "pamakv/util/arg_parser.hpp"

using namespace pamakv;

namespace {

std::unique_ptr<TraceSource> OpenTrace(const ArgParser& args) {
  const std::string path = args.GetString("trace", "");
  if (!path.empty()) {
    if (path.size() > 4 && path.substr(path.size() - 4) == ".csv") {
      return std::make_unique<CsvTraceReader>(path);
    }
    return std::make_unique<BinaryTraceReader>(path);
  }
  const std::string name = args.GetString("generate", "etc");
  const auto requests =
      static_cast<std::uint64_t>(args.GetInt("requests", 1'000'000));
  const auto seed = static_cast<std::uint64_t>(args.GetInt("seed", 1));
  WorkloadConfig cfg;
  if (name == "etc") cfg = EtcWorkload(requests, seed);
  else if (name == "app") cfg = AppWorkload(requests, seed);
  else if (name == "usr") cfg = UsrWorkload(requests, seed);
  else if (name == "sys") cfg = SysWorkload(requests, seed);
  else if (name == "var") cfg = VarWorkload(requests, seed);
  else {
    std::fprintf(stderr, "unknown workload '%s'\n", name.c_str());
    std::exit(1);
  }
  return std::make_unique<SyntheticTrace>(cfg);
}

}  // namespace

int main(int argc, char** argv) {
  const ArgParser args(argc, argv);
  auto trace = OpenTrace(args);

  const std::string dump = args.GetString("dump", "");
  if (!dump.empty()) {
    const auto written = DumpTrace(*trace, dump);
    std::fprintf(stderr, "wrote %llu requests to %s\n",
                 static_cast<unsigned long long>(written), dump.c_str());
    return 0;
  }

  const std::string scheme = args.GetString("scheme", "pama");
  if (!IsKnownScheme(scheme)) {
    std::fprintf(stderr, "unknown scheme '%s'; known:", scheme.c_str());
    for (const auto& s : AllSchemeNames()) std::fprintf(stderr, " %s", s.c_str());
    std::fprintf(stderr, "\n");
    return 1;
  }
  const Bytes cache =
      static_cast<Bytes>(args.GetInt("cache-mb", 48)) * 1024 * 1024;

  SimConfig sim_cfg;
  sim_cfg.window_gets =
      static_cast<std::uint64_t>(args.GetInt("window-gets", 100'000));
  ExperimentRunner runner(SizeClassConfig{}, SchemeOptions{}, sim_cfg);
  const auto result = runner.RunOne(scheme, cache, *trace,
                                    args.GetString("generate", "trace"));

  WriteWindowCsv(std::cout, result, /*include_header=*/true);
  std::fprintf(stderr,
               "%s: %llu requests, hit ratio %.3f, avg service %.2f ms, "
               "%.2f s wall (%.2f Mreq/s)\n",
               scheme.c_str(),
               static_cast<unsigned long long>(result.requests_replayed),
               result.overall_hit_ratio,
               result.overall_avg_service_time_us / 1000.0,
               result.wall_seconds,
               static_cast<double>(result.requests_replayed) /
                   result.wall_seconds / 1e6);
  return 0;
}
