#include "pamakv/sim/metrics.hpp"

#include "pamakv/util/csv.hpp"

namespace pamakv {

void WriteWindowCsv(std::ostream& out, const SimResult& result,
                    bool include_header) {
  CsvWriter csv(out);
  if (include_header) {
    csv.WriteHeader({"scheme", "workload", "cache_mb", "window", "gets_total",
                     "hit_ratio", "avg_service_us", "evictions",
                     "slab_migrations"});
  }
  const double cache_mb =
      static_cast<double>(result.cache_bytes) / (1024.0 * 1024.0);
  for (const auto& w : result.windows) {
    csv.WriteRow(result.scheme, result.workload, cache_mb, w.window_index,
                 w.gets_total, w.hit_ratio, w.avg_service_time_us, w.evictions,
                 w.slab_migrations);
  }
}

void WriteClassSlabCsv(std::ostream& out, const SimResult& result,
                       bool include_header) {
  CsvWriter csv(out);
  if (include_header) {
    csv.WriteHeader({"scheme", "workload", "window", "class", "slabs"});
  }
  for (const auto& w : result.windows) {
    for (std::size_t c = 0; c < w.class_slabs.size(); ++c) {
      csv.WriteRow(result.scheme, result.workload, w.window_index, c,
                   w.class_slabs[c]);
    }
  }
}

void WriteSubclassCsv(std::ostream& out, const SimResult& result, ClassId cls,
                      std::uint32_t num_subclasses, bool include_header) {
  CsvWriter csv(out);
  if (include_header) {
    csv.WriteHeader({"scheme", "workload", "window", "class", "subclass",
                     "items"});
  }
  for (const auto& w : result.windows) {
    const std::size_t base = static_cast<std::size_t>(cls) * num_subclasses;
    if (base + num_subclasses > w.subclass_items.size()) continue;
    for (std::uint32_t s = 0; s < num_subclasses; ++s) {
      csv.WriteRow(result.scheme, result.workload, w.window_index, cls, s,
                   w.subclass_items[base + s]);
    }
  }
}

}  // namespace pamakv
