#include "pamakv/sim/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "pamakv/util/csv.hpp"

namespace pamakv {

namespace {

/// Element-wise v[i] += add[i], growing v as needed.
void AccumulateSeries(std::vector<std::size_t>& v,
                      const std::vector<std::size_t>& add) {
  if (v.size() < add.size()) v.resize(add.size(), 0);
  for (std::size_t i = 0; i < add.size(); ++i) v[i] += add[i];
}

}  // namespace

std::vector<WindowSample> MergeWindows(const std::vector<SimResult>& shards) {
  std::size_t num_windows = 0;
  for (const auto& s : shards) {
    num_windows = std::max(num_windows, s.windows.size());
  }

  std::vector<WindowSample> merged(num_windows);
  for (std::size_t w = 0; w < num_windows; ++w) {
    WindowSample& out = merged[w];
    out.window_index = w;
    std::uint64_t gets_in_window = 0;
    double hits = 0.0;
    double service_total_us = 0.0;
    for (const auto& s : shards) {
      if (s.windows.empty()) continue;
      if (w >= s.windows.size()) {
        // This shard ran out of GETs before window w; its cumulative total
        // still counts toward the aggregate's gets_total.
        out.gets_total += s.windows.back().gets_total;
        continue;
      }
      const WindowSample& in = s.windows[w];
      out.gets_total += in.gets_total;
      const std::uint64_t gets =
          w == 0 ? in.gets_total : in.gets_total - s.windows[w - 1].gets_total;
      gets_in_window += gets;
      hits += in.hit_ratio * static_cast<double>(gets);
      service_total_us += in.avg_service_time_us * static_cast<double>(gets);
      out.evictions += in.evictions;
      out.slab_migrations += in.slab_migrations;
      AccumulateSeries(out.class_slabs, in.class_slabs);
      AccumulateSeries(out.subclass_items, in.subclass_items);
      AccumulateSeries(out.subclass_slabs, in.subclass_slabs);
    }
    if (gets_in_window > 0) {
      out.hit_ratio = hits / static_cast<double>(gets_in_window);
      out.avg_service_time_us =
          service_total_us / static_cast<double>(gets_in_window);
    }
  }
  return merged;
}

void WriteWindowCsv(std::ostream& out, const SimResult& result,
                    bool include_header) {
  CsvWriter csv(out);
  if (include_header) {
    csv.WriteHeader({"scheme", "workload", "cache_mb", "window", "gets_total",
                     "hit_ratio", "avg_service_us", "evictions",
                     "slab_migrations"});
  }
  const double cache_mb =
      static_cast<double>(result.cache_bytes) / (1024.0 * 1024.0);
  for (const auto& w : result.windows) {
    csv.WriteRow(result.scheme, result.workload, cache_mb, w.window_index,
                 w.gets_total, w.hit_ratio, w.avg_service_time_us, w.evictions,
                 w.slab_migrations);
  }
}

void WriteClassSlabCsv(std::ostream& out, const SimResult& result,
                       bool include_header) {
  CsvWriter csv(out);
  if (include_header) {
    csv.WriteHeader({"scheme", "workload", "window", "class", "slabs"});
  }
  for (const auto& w : result.windows) {
    for (std::size_t c = 0; c < w.class_slabs.size(); ++c) {
      csv.WriteRow(result.scheme, result.workload, w.window_index, c,
                   w.class_slabs[c]);
    }
  }
}

void WriteSubclassCsv(std::ostream& out, const SimResult& result, ClassId cls,
                      std::uint32_t num_subclasses, bool include_header) {
  CsvWriter csv(out);
  if (include_header) {
    csv.WriteHeader({"scheme", "workload", "window", "class", "subclass",
                     "items"});
  }
  for (const auto& w : result.windows) {
    const std::size_t base = static_cast<std::size_t>(cls) * num_subclasses;
    if (base + num_subclasses > w.subclass_items.size()) continue;
    for (std::uint32_t s = 0; s < num_subclasses; ++s) {
      csv.WriteRow(result.scheme, result.workload, w.window_index, cls, s,
                   w.subclass_items[base + s]);
    }
  }
}

}  // namespace pamakv
