#include "pamakv/sim/parallel_simulator.hpp"

#include <chrono>
#include <exception>
#include <stdexcept>
#include <thread>

#include "pamakv/cache/sharded_cache.hpp"
#include "pamakv/util/spsc_ring.hpp"

namespace pamakv {

namespace {

using Batch = std::vector<Request>;
using BatchRing = SpscRing<Batch>;

/// TraceSource over one shard's ring: hands out the requests of each popped
/// batch in order, blocking between batches until the producer closes the
/// ring. This lets a worker replay its sub-stream through the ordinary
/// serial Simulator, so parallel per-shard semantics cannot drift from
/// serial ones.
class RingTraceSource final : public TraceSource {
 public:
  explicit RingTraceSource(BatchRing& ring) : ring_(ring) {}

  bool Next(Request& out) override {
    if (pos_ >= batch_.size()) {
      pos_ = 0;
      batch_.clear();
      if (!ring_.PopBlocking(batch_)) return false;
    }
    out = batch_[pos_++];
    return true;
  }

  void Reset() override {
    throw std::logic_error("RingTraceSource: streams are single-pass");
  }

 private:
  BatchRing& ring_;
  Batch batch_;
  std::size_t pos_ = 0;
};

}  // namespace

ParallelSimulator::ParallelSimulator(const ParallelSimConfig& config)
    : config_(config) {
  if (config_.shards == 0) {
    throw std::invalid_argument("ParallelSimulator: need at least one shard");
  }
  if (config_.batch_requests == 0) config_.batch_requests = 1;
  if (config_.ring_batches == 0) config_.ring_batches = 1;
}

std::size_t ParallelSimulator::ShardIndexFor(KeyId key) const noexcept {
  return ShardedCache::ShardIndexFor(key, config_.shards);
}

ParallelSimResult ParallelSimulator::Run(const EngineFactory& factory,
                                         Bytes total_capacity_bytes,
                                         TraceSource& trace,
                                         const std::string& workload) {
  const std::size_t shards = config_.shards;
  const Bytes per_shard_bytes = total_capacity_bytes / shards;

  std::vector<std::unique_ptr<CacheEngine>> engines;
  engines.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    auto engine = factory(per_shard_bytes);
    if (!engine) {
      throw std::invalid_argument("ParallelSimulator: factory returned null");
    }
    engines.push_back(std::move(engine));
  }

  std::vector<std::unique_ptr<BatchRing>> rings;
  rings.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    rings.push_back(std::make_unique<BatchRing>(config_.ring_batches));
  }

  std::vector<SimResult> per_shard(shards);
  std::vector<std::exception_ptr> errors(shards);

  const auto start = std::chrono::steady_clock::now();

  std::vector<std::thread> workers;
  workers.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    workers.emplace_back([&, i] {
      RingTraceSource source(*rings[i]);
      try {
        Simulator sim(config_.sim);
        per_shard[i] = sim.Run(*engines[i], source);
      } catch (...) {
        errors[i] = std::current_exception();
        // Keep draining so the producer can never block on a full ring
        // that nobody empties.
        Request r;
        while (source.Next(r)) {
        }
      }
    });
  }

  // The calling thread is the producer: route requests to their owning
  // shard, hand them over in batches.
  {
    std::vector<Batch> pending(shards);
    for (auto& b : pending) b.reserve(config_.batch_requests);
    Request r;
    while (trace.Next(r)) {
      const std::size_t s = ShardedCache::ShardIndexFor(r.key, shards);
      Batch& b = pending[s];
      b.push_back(r);
      if (b.size() >= config_.batch_requests) {
        rings[s]->Push(std::move(b));
        b = Batch();
        b.reserve(config_.batch_requests);
      }
    }
    for (std::size_t s = 0; s < shards; ++s) {
      if (!pending[s].empty()) rings[s]->Push(std::move(pending[s]));
      rings[s]->Close();
    }
  }

  for (auto& w : workers) w.join();
  for (const auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }

  const auto end = std::chrono::steady_clock::now();

  ParallelSimResult result;
  result.per_shard = std::move(per_shard);

  SimResult& agg = result.aggregate;
  agg.scheme = result.per_shard.front().scheme;
  agg.workload = workload;
  for (SimResult& shard : result.per_shard) {
    shard.workload = workload;
    agg.cache_bytes += shard.cache_bytes;
    agg.final_stats += shard.final_stats;
    agg.requests_replayed += shard.requests_replayed;
  }
  agg.windows = MergeWindows(result.per_shard);
  agg.overall_hit_ratio = agg.final_stats.HitRatio();
  agg.overall_avg_service_time_us =
      agg.final_stats.AvgServiceTimeUs(engines.front()->hit_time_us());
  agg.wall_seconds = std::chrono::duration<double>(end - start).count();
  return result;
}

}  // namespace pamakv
