#include "pamakv/sim/simulator.hpp"

#include <chrono>

#include "pamakv/policy/policy.hpp"

namespace pamakv {

void Simulator::SampleWindow(const CacheEngine& engine,
                             const CacheStats& delta, SimResult& result,
                             std::uint64_t window_index) const {
  WindowSample sample;
  sample.window_index = window_index;
  sample.gets_total = engine.stats().gets;
  sample.hit_ratio = delta.HitRatio();
  sample.avg_service_time_us = delta.AvgServiceTimeUs(engine.hit_time_us());
  sample.evictions = delta.evictions;
  sample.slab_migrations = delta.slab_migrations;
  if (config_.capture_class_slabs) {
    sample.class_slabs.reserve(engine.classes().num_classes());
    for (ClassId c = 0; c < engine.classes().num_classes(); ++c) {
      sample.class_slabs.push_back(engine.pool().ClassSlabCount(c));
    }
  }
  if (config_.capture_subclass_items) {
    const std::uint32_t subs = engine.num_subclasses();
    sample.subclass_items.reserve(
        static_cast<std::size_t>(engine.classes().num_classes()) * subs);
    sample.subclass_slabs.reserve(sample.subclass_items.capacity());
    for (ClassId c = 0; c < engine.classes().num_classes(); ++c) {
      for (SubclassId s = 0; s < subs; ++s) {
        sample.subclass_items.push_back(engine.SubclassItemCount(c, s));
        sample.subclass_slabs.push_back(engine.pool().SlabCount(c, s));
      }
    }
  }
  result.windows.push_back(std::move(sample));
}

SimResult Simulator::Run(CacheEngine& engine, TraceSource& trace) {
  SimResult result;
  result.scheme = std::string(engine.policy().name());
  result.cache_bytes =
      static_cast<Bytes>(engine.pool().total_slabs()) * engine.classes().slab_bytes();

  const auto start = std::chrono::steady_clock::now();
  CacheStats window_base = engine.stats();
  std::uint64_t gets_in_window = 0;
  std::uint64_t window_index = 0;

  Request request;
  while (trace.Next(request)) {
    ++result.requests_replayed;
    switch (request.op) {
      case Op::kGet: {
        const GetResult r = engine.Get(request.key, request.size,
                                       request.penalty_us);
        if (!r.hit && config_.write_allocate) {
          // The client fetches the value from the back end (paying the
          // penalty, already charged) and re-caches it.
          engine.Set(request.key, request.size, request.penalty_us);
        }
        if (++gets_in_window >= config_.window_gets) {
          const CacheStats now = engine.stats();
          SampleWindow(engine, now.Since(window_base), result, window_index++);
          window_base = now;
          gets_in_window = 0;
        }
        break;
      }
      case Op::kSet:
        engine.Set(request.key, request.size, request.penalty_us);
        break;
      case Op::kDel:
        engine.Del(request.key);
        break;
    }
  }
  // Flush a trailing partial window so short runs still report.
  if (gets_in_window > 0) {
    SampleWindow(engine, engine.stats().Since(window_base), result,
                 window_index);
  }

  const auto end = std::chrono::steady_clock::now();
  result.wall_seconds = std::chrono::duration<double>(end - start).count();
  result.final_stats = engine.stats();
  result.overall_hit_ratio = result.final_stats.HitRatio();
  result.overall_avg_service_time_us =
      result.final_stats.AvgServiceTimeUs(engine.hit_time_us());
  return result;
}

}  // namespace pamakv
