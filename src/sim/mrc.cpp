#include "pamakv/sim/mrc.hpp"

#include <algorithm>
#include <cassert>

namespace pamakv {

MattsonProfiler::MattsonProfiler(Bytes bucket_bytes)
    : bucket_bytes_(bucket_bytes ? bucket_bytes : 1) {}

Bytes MattsonProfiler::DepthBytes(std::size_t rank) const {
  if (stack_.empty()) return 0;
  const double mean =
      static_cast<double>(total_bytes_) / static_cast<double>(stack_.size());
  return static_cast<Bytes>(mean * static_cast<double>(rank));
}

void MattsonProfiler::Touch(KeyId key, Bytes size, MicroSecs penalty,
                            bool count) {
  const ItemHandle h = index_.Find(key);
  if (h != kInvalidHandle) {
    Tracked& t = items_[h];
    if (count) {
      // Reuse depth measured from the top (exclusive of the item itself).
      const std::size_t rank = stack_.RankFromTop(t.node);
      const auto bucket =
          static_cast<std::size_t>(DepthBytes(rank) / bucket_bytes_);
      if (bucket >= depth_hits_.size()) {
        depth_hits_.resize(bucket + 1, 0);
        depth_penalty_us_.resize(bucket + 1, 0.0);
      }
      ++depth_hits_[bucket];
      depth_penalty_us_[bucket] += static_cast<double>(penalty);
    }
    // Size updates keep the byte accounting honest.
    total_bytes_ += size;
    total_bytes_ -= t.size;
    t.size = size;
    stack_.MoveToTop(t.node);
    return;
  }
  if (count) {
    ++cold_misses_;
    penalty_cold_us_ += static_cast<double>(penalty);
  }
  ItemHandle handle;
  if (!free_items_.empty()) {
    handle = free_items_.back();
    free_items_.pop_back();
  } else {
    items_.emplace_back();
    handle = static_cast<ItemHandle>(items_.size() - 1);
  }
  Tracked& t = items_[handle];
  t.key = key;
  t.size = size;
  t.node = stack_.PushTop(handle);
  index_.Upsert(key, handle);
  total_bytes_ += size;
}

void MattsonProfiler::Record(const Request& request) {
  switch (request.op) {
    case Op::kGet:
      ++gets_;
      Touch(request.key, request.size, request.penalty_us, /*count=*/true);
      break;
    case Op::kSet:
      Touch(request.key, request.size, request.penalty_us, /*count=*/false);
      break;
    case Op::kDel: {
      const ItemHandle h = index_.Find(request.key);
      if (h == kInvalidHandle) break;
      Tracked& t = items_[h];
      total_bytes_ -= t.size;
      stack_.Erase(t.node);
      t.node = nullptr;
      index_.Erase(request.key);
      free_items_.push_back(h);
      break;
    }
  }
}

void MattsonProfiler::Profile(TraceSource& trace) {
  Request request;
  while (trace.Next(request)) Record(request);
}

MattsonProfiler::Curve MattsonProfiler::Build() const {
  Curve curve;
  curve.bucket_bytes = bucket_bytes_;
  curve.gets = gets_;
  curve.cold_misses = cold_misses_;
  if (gets_ == 0) return curve;

  // Misses at cache size s = hits at depths beyond s + cold misses.
  const double gets = static_cast<double>(gets_);
  double hits_within = 0.0;
  double penalty_within = 0.0;
  double total_penalty = penalty_cold_us_;
  for (const double p : depth_penalty_us_) total_penalty += p;
  double total_hits = static_cast<double>(cold_misses_);
  for (const auto h : depth_hits_) total_hits += static_cast<double>(h);

  curve.miss_ratio.reserve(depth_hits_.size());
  curve.miss_penalty_per_get_us.reserve(depth_hits_.size());
  for (std::size_t i = 0; i < depth_hits_.size(); ++i) {
    hits_within += static_cast<double>(depth_hits_[i]);
    penalty_within += depth_penalty_us_[i];
    curve.miss_ratio.push_back((total_hits - hits_within) / gets);
    curve.miss_penalty_per_get_us.push_back(
        (total_penalty - penalty_within) / gets);
  }
  return curve;
}

}  // namespace pamakv
