#include "pamakv/sim/experiment.hpp"

#include <algorithm>
#include <stdexcept>

#include "pamakv/cache/penalty_bands.hpp"
#include "pamakv/policy/no_realloc.hpp"
#include "pamakv/policy/twemcache.hpp"
#include "pamakv/util/thread_pool.hpp"

namespace pamakv {

namespace {

const char* const kSchemes[] = {"memcached", "psa",       "twemcache",
                                "facebook-age", "pre-pama", "pama",
                                "pama-exact",   "lama-hr",  "lama-st"};

[[nodiscard]] bool IsPamaFamily(std::string_view scheme) {
  return scheme == "pama" || scheme == "pama-exact" || scheme == "pre-pama";
}

}  // namespace

bool IsKnownScheme(std::string_view scheme) {
  return std::find(std::begin(kSchemes), std::end(kSchemes), scheme) !=
         std::end(kSchemes);
}

std::vector<std::string> AllSchemeNames() {
  return {std::begin(kSchemes), std::end(kSchemes)};
}

std::unique_ptr<CacheEngine> MakeEngine(std::string_view scheme,
                                        Bytes capacity_bytes,
                                        const SizeClassConfig& geometry,
                                        const SchemeOptions& options) {
  EngineConfig engine_cfg;
  engine_cfg.size_classes = geometry;
  engine_cfg.capacity_bytes = capacity_bytes;
  engine_cfg.hit_time_us = options.hit_time_us;
  engine_cfg.seed = options.engine_seed;

  std::unique_ptr<AllocationPolicy> policy;
  if (scheme == "memcached") {
    policy = std::make_unique<NoReallocPolicy>();
  } else if (scheme == "psa") {
    policy = std::make_unique<PsaPolicy>(options.psa);
  } else if (scheme == "twemcache") {
    policy = std::make_unique<TwemcachePolicy>(options.engine_seed);
  } else if (scheme == "facebook-age") {
    policy = std::make_unique<FacebookAgePolicy>(options.facebook);
  } else if (scheme == "lama-hr" || scheme == "lama-st") {
    LamaConfig cfg = options.lama;
    cfg.penalty_weighted = scheme == "lama-st";
    policy = std::make_unique<LamaPolicy>(cfg);
  } else if (IsPamaFamily(scheme)) {
    PamaConfig cfg = options.pama;
    cfg.penalty_aware = scheme != "pre-pama";
    cfg.use_bloom = scheme != "pama-exact";
    policy = std::make_unique<PamaPolicy>(cfg);
    // Full PAMA divides classes into penalty-band subclasses; pre-PAMA is
    // the paper's penalty-blind ablation and uses one band.
    if (scheme != "pre-pama") {
      engine_cfg.penalty_band_bounds =
          options.pama_bands.empty() ? PenaltyBandTable::PaperDefault().bounds()
                                     : options.pama_bands;
    }
    // Ghost region must cover the receiving segment + m references.
    engine_cfg.ghost_segments = static_cast<std::uint32_t>(
        std::max<std::size_t>(cfg.reference_segments + 1, 2));
  } else {
    throw std::invalid_argument("MakeEngine: unknown scheme '" +
                                std::string(scheme) + "'");
  }
  return std::make_unique<CacheEngine>(engine_cfg, std::move(policy));
}

SimResult ExperimentRunner::RunOne(const std::string& scheme,
                                   Bytes cache_bytes, TraceSource& trace,
                                   const std::string& workload) const {
  auto engine = MakeEngine(scheme, cache_bytes, geometry_, options_);
  Simulator sim(sim_config_);
  SimResult result = sim.Run(*engine, trace);
  result.scheme = scheme;
  result.workload = workload;
  return result;
}

std::vector<SimResult> ExperimentRunner::RunGrid(
    const std::vector<ExperimentCell>& cells, const TraceFactory& make_trace,
    const std::string& workload, std::size_t threads) const {
  std::vector<SimResult> results(cells.size());
  ThreadPool pool(threads);
  ParallelFor(pool, cells.size(), [&](std::size_t i) {
    const auto& cell = cells[i];
    auto trace = make_trace();
    results[i] = RunOne(cell.scheme, cell.cache_bytes, *trace, workload);
  });
  return results;
}

}  // namespace pamakv
