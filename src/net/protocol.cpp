#include "pamakv/net/protocol.hpp"

#include <charconv>

namespace pamakv::net {

namespace {

/// Splits the next space-delimited token off `rest` (runs of spaces are
/// tolerated, as memcached does). Empty view when exhausted.
std::string_view NextToken(std::string_view& rest) {
  std::size_t begin = 0;
  while (begin < rest.size() && rest[begin] == ' ') ++begin;
  std::size_t end = begin;
  while (end < rest.size() && rest[end] != ' ') ++end;
  const std::string_view token = rest.substr(begin, end - begin);
  rest.remove_prefix(end);
  return token;
}

bool ParseU64(std::string_view token, std::uint64_t& out) {
  if (token.empty()) return false;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), out);
  return ec == std::errc{} && ptr == token.data() + token.size();
}

bool ValidKey(std::string_view key) {
  if (key.empty() || key.size() > kMaxKeyBytes) return false;
  for (const char c : key) {
    // Spaces are token delimiters already; reject control bytes like
    // memcached does (a key containing \r or \n would desync the stream).
    if (static_cast<unsigned char>(c) <= 32 || c == 127) return false;
  }
  return true;
}

ParseResult ClientError(std::string_view message) {
  return ParseResult{ParseStatus::kClientError, message};
}

ParseResult ParseRetrieval(std::string_view rest, Command& out) {
  while (true) {
    const std::string_view key = NextToken(rest);
    if (key.empty()) break;
    if (!ValidKey(key)) return ClientError("bad key");
    if (out.num_keys == kMaxKeysPerGet) return ClientError("too many keys");
    out.keys[out.num_keys++] = key;
  }
  if (out.num_keys == 0) return ClientError("no keys");
  return ParseResult{};
}

ParseResult ParseSet(std::string_view rest, Command& out) {
  const std::string_view key = NextToken(rest);
  if (!ValidKey(key)) return ClientError("bad key");
  std::uint64_t flags = 0;
  if (!ParseU64(NextToken(rest), flags) || flags > 0xffffffffULL) {
    return ClientError("bad flags");
  }
  if (!ParseU64(NextToken(rest), out.exptime)) {
    return ClientError("bad exptime");
  }
  if (!ParseU64(NextToken(rest), out.value_bytes)) {
    return ClientError("bad byte count");
  }
  const std::string_view tail = NextToken(rest);
  if (tail == "noreply") {
    out.noreply = true;
  } else if (!tail.empty()) {
    return ClientError("trailing arguments");
  }
  if (!NextToken(rest).empty()) return ClientError("trailing arguments");
  out.keys[0] = key;
  out.num_keys = 1;
  out.flags = static_cast<std::uint32_t>(flags);
  return ParseResult{};
}

ParseResult ParseDelete(std::string_view rest, Command& out) {
  const std::string_view key = NextToken(rest);
  if (!ValidKey(key)) return ClientError("bad key");
  const std::string_view tail = NextToken(rest);
  if (tail == "noreply") {
    out.noreply = true;
  } else if (!tail.empty()) {
    return ClientError("trailing arguments");
  }
  if (!NextToken(rest).empty()) return ClientError("trailing arguments");
  out.keys[0] = key;
  out.num_keys = 1;
  return ParseResult{};
}

/// flush_all [delay] [noreply] — the delay is parsed and ignored (the
/// engine flushes immediately), matching our no-TTL simplification.
ParseResult ParseFlushAll(std::string_view rest, Command& out) {
  std::string_view token = NextToken(rest);
  std::uint64_t delay = 0;
  if (!token.empty() && token != "noreply") {
    if (!ParseU64(token, delay)) return ClientError("bad delay");
    token = NextToken(rest);
  }
  if (token == "noreply") {
    out.noreply = true;
    token = NextToken(rest);
  }
  if (!token.empty()) return ClientError("trailing arguments");
  return ParseResult{};
}

ParseResult ParseBare(std::string_view rest) {
  if (!NextToken(rest).empty()) return ClientError("trailing arguments");
  return ParseResult{};
}

}  // namespace

ParseResult ParseCommandLine(std::string_view line, Command& out) {
  out = Command{};
  std::string_view rest = line;
  const std::string_view verb = NextToken(rest);
  if (verb == "get") {
    out.verb = Verb::kGet;
    return ParseRetrieval(rest, out);
  }
  if (verb == "gets") {
    out.verb = Verb::kGets;
    return ParseRetrieval(rest, out);
  }
  if (verb == "set") {
    out.verb = Verb::kSet;
    return ParseSet(rest, out);
  }
  if (verb == "delete") {
    out.verb = Verb::kDelete;
    return ParseDelete(rest, out);
  }
  if (verb == "stats") {
    out.verb = Verb::kStats;
    const std::string_view arg = NextToken(rest);
    if (arg == "detail") {
      out.stats_detail = true;
    } else if (!arg.empty()) {
      return ClientError("bad stats argument");
    }
    if (!NextToken(rest).empty()) return ClientError("trailing arguments");
    return ParseResult{};
  }
  if (verb == "flush_all") {
    out.verb = Verb::kFlushAll;
    return ParseFlushAll(rest, out);
  }
  if (verb == "version") {
    out.verb = Verb::kVersion;
    return ParseBare(rest);
  }
  if (verb == "quit") {
    out.verb = Verb::kQuit;
    return ParseBare(rest);
  }
  return ParseResult{ParseStatus::kError, {}};
}

std::string_view VerbName(Verb v) noexcept {
  switch (v) {
    case Verb::kGet: return "get";
    case Verb::kGets: return "gets";
    case Verb::kSet: return "set";
    case Verb::kDelete: return "delete";
    case Verb::kStats: return "stats";
    case Verb::kFlushAll: return "flush_all";
    case Verb::kVersion: return "version";
    case Verb::kQuit: return "quit";
  }
  return "unknown";
}

void AppendUInt(std::vector<char>& out, std::uint64_t v) {
  char digits[20];
  char* end = digits + sizeof digits;
  char* p = end;
  do {
    *--p = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  out.insert(out.end(), p, end);
}

void AppendValueBlock(std::vector<char>& out, std::string_view key,
                      std::uint32_t flags, std::string_view data,
                      std::uint64_t cas, bool with_cas) {
  AppendLiteral(out, "VALUE ");
  AppendLiteral(out, key);
  out.push_back(' ');
  AppendUInt(out, flags);
  out.push_back(' ');
  AppendUInt(out, data.size());
  if (with_cas) {
    out.push_back(' ');
    AppendUInt(out, cas);
  }
  AppendLiteral(out, "\r\n");
  AppendLiteral(out, data);
  AppendLiteral(out, "\r\n");
}

void AppendStat(std::vector<char>& out, std::string_view name,
                std::uint64_t value) {
  AppendLiteral(out, "STAT ");
  AppendLiteral(out, name);
  out.push_back(' ');
  AppendUInt(out, value);
  AppendLiteral(out, "\r\n");
}

}  // namespace pamakv::net
