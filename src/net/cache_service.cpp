#include "pamakv/net/cache_service.hpp"

#include <stdexcept>
#include <string>

#include "pamakv/cache/string_keys.hpp"
#include "pamakv/net/protocol.hpp"
#include "pamakv/policy/pama.hpp"
#include "pamakv/util/failpoint.hpp"

namespace pamakv::net {

CacheService::CacheService(const CacheServiceConfig& config,
                           const EngineFactory& factory)
    : default_penalty_us_(config.default_penalty_us),
      default_size_(config.default_size) {
  if (config.shards == 0) throw std::invalid_argument("shards must be >= 1");
  shards_.reserve(config.shards);
  const Bytes per_shard = config.capacity_bytes / config.shards;
  for (std::size_t i = 0; i < config.shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->engine = factory(per_shard);
    shards_.push_back(std::move(shard));
  }
}

CacheService::Entry* CacheService::VerifiedLive(Shard& shard, KeyId id,
                                                std::string_view key) {
  const auto it = shard.entries.find(id);
  Entry* entry = it != shard.entries.end() ? &it->second : nullptr;
  if (!shard.engine->Contains(id)) {
    // Evicted behind our back (or never stored): the entry, if any, is a
    // tombstone that remembers size/penalty for miss routing.
    if (entry != nullptr) entry->live = false;
    return nullptr;
  }
  if (entry == nullptr || !entry->live || entry->key != key) {
    // The engine holds this id for a *different* string (or for a store
    // the table never saw — only possible if callers bypass the service).
    // Matching StringKeyCache, drop the squatter so both keys see
    // consistent misses from here on.
    ++shard.collisions;
    shard.engine->Del(id);
    if (entry != nullptr) entry->live = false;
    return nullptr;
  }
  return entry;
}

bool CacheService::Get(std::string_view key, std::vector<char>& out,
                       bool with_cas) {
  const KeyId id = HashStringKey(key);
  Shard& shard = ShardFor(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  Entry* entry = VerifiedLive(shard, id, key);
  if (entry != nullptr) {
    const auto result =
        shard.engine->Get(id, entry->value.size(), PenaltyOf(entry->flags));
    if (result.hit) {
      AppendValueBlock(out, key, entry->flags, entry->value, entry->cas,
                       with_cas);
      return true;
    }
    // Unreachable in practice (Contains was just true), but fall through
    // to miss handling rather than serving an unbacked value.
    entry->live = false;
    return false;
  }
  // Miss: charge the engine so stats, ghost lists and PAMA's demand
  // attribution see it. A remembered entry supplies the key's real size
  // and penalty; a never-seen key gets the configured defaults.
  const auto it = shard.entries.find(id);
  const Bytes size =
      it != shard.entries.end() ? it->second.value.size() : default_size_;
  const MicroSecs penalty = it != shard.entries.end()
                                ? PenaltyOf(it->second.flags)
                                : default_penalty_us_;
  shard.engine->Get(id, size, penalty);
  return false;
}

bool CacheService::Set(std::string_view key, std::uint32_t flags,
                       std::string_view value) {
  const KeyId id = HashStringKey(key);
  Shard& shard = ShardFor(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  // Resolve collisions first so the engine's overwrite path never mixes
  // two strings' metadata under one id.
  const auto it = shard.entries.find(id);
  if (shard.engine->Contains(id) &&
      (it == shard.entries.end() || !it->second.live ||
       it->second.key != key)) {
    ++shard.collisions;
    shard.engine->Del(id);
    if (it != shard.entries.end()) it->second.live = false;
  }
  // Stage every allocation the store needs — the entry node and its
  // key/value capacity — before the engine mutates. A bad_alloc from here
  // (real, or injected via the svc.store_bytes failpoint) aborts the
  // request with the engine and the table exactly as they were; a fresh
  // entry created just below stays a dead tombstone, which Get/Del handle.
  Entry& entry = it != shard.entries.end() ? it->second : shard.entries[id];
  PAMAKV_FAILPOINT_OOM("svc.store_bytes");
  entry.key.reserve(key.size());
  entry.value.reserve(value.size());
  const SetResult result =
      shard.engine->Set(id, value.size(), PenaltyOf(flags));
  // Record the store attempt either way: a refused store's tombstone keeps
  // routing this key's misses to the right ghost list, which is how the
  // key earns space once its demand proves itself. The assigns fit the
  // reserved capacity, so nothing below can throw.
  entry.key.assign(key.data(), key.size());
  entry.value.assign(value.data(), value.size());
  entry.flags = flags;
  entry.cas = ++shard.cas_counter;
  entry.live = result.stored;
  return result.stored;
}

bool CacheService::Del(std::string_view key) {
  const KeyId id = HashStringKey(key);
  Shard& shard = ShardFor(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.entries.find(id);
  if (it == shard.entries.end() || !it->second.live || it->second.key != key) {
    // Absent, stale, or a collision squatter: a DELETE of this name must
    // not remove someone else's entry. Count the attempt engine-side the
    // way CacheEngine::Del counts missing keys.
    shard.engine->Del(id);
    return false;
  }
  it->second.live = false;
  return shard.engine->Del(id);
}

std::uint64_t CacheService::FlushAll() {
  std::uint64_t flushed = 0;
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (auto& [id, entry] : shard->entries) {
      if (!entry.live) continue;
      entry.live = false;
      if (shard->engine->Del(id)) ++flushed;
    }
  }
  return flushed;
}

CacheStats CacheService::TotalStats() const {
  CacheStats total;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->engine->stats();
  }
  return total;
}

std::uint64_t CacheService::ItemCount() const {
  std::uint64_t items = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    items += shard->engine->item_count();
  }
  return items;
}

std::uint64_t CacheService::CollisionsResolved() const {
  std::uint64_t collisions = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    collisions += shard->collisions;
  }
  return collisions;
}

void CacheService::AppendStats(std::vector<char>& out, bool detail) const {
  const CacheStats total = TotalStats();
  for (const StatEntry& stat : total.Snapshot()) {
    AppendStat(out, stat.name, stat.value);
  }
  AppendStat(out, "curr_items", ItemCount());
  AppendStat(out, "shards", shards_.size());
  AppendStat(out, "hash_collisions_resolved", CollisionsResolved());
  {
    std::lock_guard<std::mutex> lock(extra_stats_mu_);
    if (extra_stats_) extra_stats_(out);
  }
  if (detail && metrics_ != nullptr) {
    // Same snapshot type the Prometheus endpoint renders — the two
    // surfaces cannot disagree on a value (net_server_test asserts it).
    metrics_->Snapshot().AppendStatLines(out);
  }
#if PAMAKV_FAILPOINTS
  // Injection-build only: how often each armed failpoint actually fired,
  // so a chaos run can check its storm happened (and operators can see
  // leftover armed points at a glance).
  for (const auto& [name, trips] : util::FailPoints::TripCounts()) {
    AppendStat(out, "failpoint." + name, trips);
  }
#endif
  AppendLiteral(out, "END\r\n");
}

void CacheService::SetExtraStats(
    std::function<void(std::vector<char>&)> appender) {
  std::lock_guard<std::mutex> lock(extra_stats_mu_);
  extra_stats_ = std::move(appender);
}

namespace {

std::string ClassBandLabels(ClassId c, SubclassId s) {
  return "{class=\"" + std::to_string(c) + "\",band=\"" + std::to_string(s) +
         "\"}";
}

}  // namespace

void CacheService::RegisterMetrics(util::MetricsRegistry& registry) {
  metrics_ = &registry;
  // All shards share one factory, so shard 0's geometry is everyone's.
  const CacheEngine& proto = *shards_.front()->engine;
  const std::uint32_t num_classes = proto.classes().num_classes();
  const std::uint32_t num_bands = proto.num_subclasses();

  for (std::uint32_t c = 0; c < num_classes; ++c) {
    for (std::uint32_t s = 0; s < num_bands; ++s) {
      const std::string labels =
          ClassBandLabels(static_cast<ClassId>(c), static_cast<SubclassId>(s));
      registry.RegisterCallbackGauge(
          "pamakv_slabs", labels,
          [this, c, s] {
            return SumOverShards([c, s](const CacheEngine& e) {
              return static_cast<double>(e.pool().SlabCount(
                  static_cast<ClassId>(c), static_cast<SubclassId>(s)));
            });
          },
          "slabs assigned per (size class, penalty band), summed over shards");
      registry.RegisterCallbackGauge(
          "pamakv_subclass_items", labels,
          [this, c, s] {
            return SumOverShards([c, s](const CacheEngine& e) {
              return static_cast<double>(e.SubclassItemCount(
                  static_cast<ClassId>(c), static_cast<SubclassId>(s)));
            });
          },
          "items per (size class, penalty band)");
      registry.RegisterCallbackGauge(
          "pamakv_ghost_hits", labels,
          [this, c, s] {
            return SumOverShards([c, s](const CacheEngine& e) {
              return static_cast<double>(e.GhostHitCount(
                  static_cast<ClassId>(c), static_cast<SubclassId>(s)));
            });
          },
          "GET misses found in this subclass's ghost (receiving) segments");
    }
  }
  registry.RegisterCallbackGauge(
      "pamakv_free_slabs", "",
      [this] {
        return SumOverShards([](const CacheEngine& e) {
          return static_cast<double>(e.pool().free_slabs());
        });
      },
      "unassigned slabs in the free pools");
  registry.RegisterCallbackGauge(
      "pamakv_total_slabs", "",
      [this] {
        return SumOverShards([](const CacheEngine& e) {
          return static_cast<double>(e.pool().total_slabs());
        });
      },
      "slabs the pools were built with");
  registry.RegisterCallbackGauge(
      "pamakv_curr_items", "",
      [this] { return static_cast<double>(ItemCount()); },
      "live items across shards");

  // Every CacheStats counter under its memcached stat name, prefixed.
  // Snapshot() entry names have static storage, so capturing the index
  // and re-snapshotting in the callback is race-free and allocation-free.
  const StatsSnapshot names = CacheStats{}.Snapshot();
  for (std::size_t i = 0; i < names.size(); ++i) {
    registry.RegisterCallbackGauge(
        std::string("pamakv_") + names[i].name, "",
        [this, i] {
          return static_cast<double>(TotalStats().Snapshot()[i].value);
        },
        "CacheStats counter, summed over shards");
  }

  // PAMA value-flow telemetry, when the shards run PamaPolicy. Per-shard
  // series: the sums are per-shard monotone and the last-comparison pair
  // is only meaningful per decision stream.
  if (dynamic_cast<const PamaPolicy*>(&proto.policy()) != nullptr) {
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      const std::string labels = "{shard=\"" + std::to_string(i) + "\"}";
      const auto flow = [this, i](auto pick) {
        Shard& shard = *shards_[i];
        std::lock_guard<std::mutex> lock(shard.mu);
        const auto* pama =
            dynamic_cast<const PamaPolicy*>(&shard.engine->policy());
        return pama != nullptr ? pick(pama->value_flow()) : 0.0;
      };
      registry.RegisterCallbackGauge(
          "pamakv_pama_decisions_total", labels,
          [flow] {
            return flow([](const PamaPolicy::ValueFlow& f) {
              return static_cast<double>(f.decisions);
            });
          },
          "MakeRoom decisions that had a donor candidate");
      registry.RegisterCallbackGauge(
          "pamakv_pama_outgoing_value_sum", labels,
          [flow] {
            return flow(
                [](const PamaPolicy::ValueFlow& f) { return f.outgoing_sum; });
          },
          "sum of candidate outgoing values at decisions");
      registry.RegisterCallbackGauge(
          "pamakv_pama_incoming_value_sum", labels,
          [flow] {
            return flow(
                [](const PamaPolicy::ValueFlow& f) { return f.incoming_sum; });
          },
          "sum of requester incoming values at decisions");
      registry.RegisterCallbackGauge(
          "pamakv_pama_migration_benefit_sum", labels,
          [flow] {
            return flow([](const PamaPolicy::ValueFlow& f) {
              return f.migration_benefit_sum;
            });
          },
          "sum of (incoming - outgoing) over executed migrations: the "
          "penalty-saved-vs-penalty-blind-LRU estimate");
      registry.RegisterCallbackGauge(
          "pamakv_pama_last_outgoing_value", labels,
          [flow] {
            return flow(
                [](const PamaPolicy::ValueFlow& f) { return f.last_outgoing; });
          },
          "candidate outgoing value at the latest decision");
      registry.RegisterCallbackGauge(
          "pamakv_pama_last_incoming_value", labels,
          [flow] {
            return flow(
                [](const PamaPolicy::ValueFlow& f) { return f.last_incoming; });
          },
          "winning incoming value at the latest decision");
    }
    for (std::uint32_t from = 0; from < num_bands; ++from) {
      for (std::uint32_t to = 0; to < num_bands; ++to) {
        const std::string labels = "{from_band=\"" + std::to_string(from) +
                                   "\",to_band=\"" + std::to_string(to) +
                                   "\"}";
        registry.RegisterCallbackGauge(
            "pamakv_pama_migration_flow_total", labels,
            [this, from, to] {
              return SumOverShards([from, to](const CacheEngine& e) {
                const auto* pama =
                    dynamic_cast<const PamaPolicy*>(&e.policy());
                return pama != nullptr
                           ? static_cast<double>(pama->MigrationFlow(
                                 static_cast<SubclassId>(from),
                                 static_cast<SubclassId>(to)))
                           : 0.0;
              });
            },
            "slab migrations from band to band (src -> dst), summed over "
            "shards");
      }
    }
  }
}

}  // namespace pamakv::net
