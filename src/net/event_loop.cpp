#include "pamakv/net/event_loop.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <algorithm>
#include <cassert>
#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <system_error>

#include "pamakv/net/syscall.hpp"

namespace pamakv::net {

namespace {
[[noreturn]] void ThrowErrno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

/// Min-heap ordering for (deadline, id) pairs: std::pair's operator> gives
/// earliest deadline first, lowest id first among equals.
constexpr auto kHeapGreater =
    std::greater<std::pair<std::int64_t, TimerId>>{};
}  // namespace

EventLoop::EventLoop(util::Clock& clock) : clock_(&clock) {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) ThrowErrno("epoll_create1");
  wake_fd_ = sys::EventFd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) {
    ::close(epoll_fd_);
    ThrowErrno("eventfd");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) != 0) {
    ::close(wake_fd_);
    ::close(epoll_fd_);
    ThrowErrno("epoll_ctl(wake)");
  }
  // A manual clock wakes the loop whenever it jumps, so due timers fire
  // without the epoll timeout ever mattering.
  clock_->RegisterWake(this, [this] { Wake(); });
}

EventLoop::~EventLoop() {
  clock_->UnregisterWake(this);
  ::close(wake_fd_);
  ::close(epoll_fd_);
}

void EventLoop::Add(int fd, std::uint32_t events, Handler handler) {
  auto boxed = std::make_unique<Handler>(std::move(handler));
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    ThrowErrno("epoll_ctl(add)");
  }
  handlers_[fd] = std::move(boxed);
}

void EventLoop::Mod(int fd, std::uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) != 0) {
    ThrowErrno("epoll_ctl(mod)");
  }
}

void EventLoop::Del(int fd) {
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  const auto it = handlers_.find(fd);
  if (it == handlers_.end()) return;
  // The handler may be the one currently executing; keep the object alive
  // until the dispatch round finishes.
  graveyard_.push_back(std::move(it->second));
  handlers_.erase(it);
}

TimerId EventLoop::RunAfter(std::chrono::nanoseconds delay,
                            std::function<void()> cb) {
  const TimerId id = next_timer_id_++;
  const std::int64_t deadline =
      clock_->NowNanos() + std::max<std::int64_t>(delay.count(), 0);
  timers_.emplace(id, TimerEntry{deadline, std::move(cb)});
  timer_heap_.emplace_back(deadline, id);
  std::push_heap(timer_heap_.begin(), timer_heap_.end(), kHeapGreater);
  return id;
}

bool EventLoop::Cancel(TimerId id) {
  // Lazy: the heap entry stays and is skipped when popped.
  return timers_.erase(id) > 0;
}

int EventLoop::NextTimeoutMs() {
  while (!timer_heap_.empty() &&
         timers_.find(timer_heap_.front().second) == timers_.end()) {
    // Prune cancelled entries so they don't shorten the wait.
    std::pop_heap(timer_heap_.begin(), timer_heap_.end(), kHeapGreater);
    timer_heap_.pop_back();
  }
  if (timer_heap_.empty()) return -1;
  const std::int64_t remaining_ns =
      timer_heap_.front().first - clock_->NowNanos();
  if (remaining_ns <= 0) return 0;
  // Round up so the wait never returns just short of the deadline.
  const std::int64_t ms = (remaining_ns + 999'999) / 1'000'000;
  return static_cast<int>(std::min<std::int64_t>(ms, 60'000));
}

void EventLoop::FireExpiredTimers() {
  const std::int64_t now = clock_->NowNanos();
  // Timers armed by the callbacks below belong to the next round, even at
  // zero delay — otherwise an immediate re-arm could starve the fds.
  const TimerId round_ceiling = next_timer_id_;
  while (!timer_heap_.empty() && timer_heap_.front().first <= now) {
    const TimerId id = timer_heap_.front().second;
    std::pop_heap(timer_heap_.begin(), timer_heap_.end(), kHeapGreater);
    timer_heap_.pop_back();
    const auto it = timers_.find(id);
    if (it == timers_.end()) continue;  // cancelled
    if (id >= round_ceiling) {
      // Re-armed during this sweep; push back and stop — its deadline is
      // necessarily >= every other due entry's.
      timer_heap_.emplace_back(it->second.deadline_ns, id);
      std::push_heap(timer_heap_.begin(), timer_heap_.end(), kHeapGreater);
      break;
    }
    auto cb = std::move(it->second.cb);
    timers_.erase(it);
    cb();  // may RunAfter/Cancel freely
  }
}

void EventLoop::Post(std::function<void()> fn) {
  // acquire pairs with Run()'s release store so loop_thread_ is visible.
  if (running_.load(std::memory_order_acquire) &&
      std::this_thread::get_id() == loop_thread_) {
    fn();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(posted_mu_);
    posted_.push_back(std::move(fn));
  }
  Wake();
}

void EventLoop::Wake() {
  const std::uint64_t one = 1;
  ssize_t n;
  do {
    n = ::write(wake_fd_, &one, sizeof one);
  } while (n < 0 && errno == EINTR);
  // EAGAIN means the counter is already nonzero — the wake is pending.
}

void EventLoop::DrainPosted() {
  std::vector<std::function<void()>> batch;
  {
    std::lock_guard<std::mutex> lock(posted_mu_);
    batch.swap(posted_);
  }
  for (auto& fn : batch) fn();
}

void EventLoop::Run() {
  loop_thread_ = std::this_thread::get_id();
  running_.store(true, std::memory_order_release);
  epoll_event events[64];
  while (running_.load(std::memory_order_acquire)) {
    const int n = sys::EpollWait(epoll_fd_, events, 64, NextTimeoutMs());
    cycles_.fetch_add(1, std::memory_order_relaxed);
    if (n < 0) {
      if (errno == EINTR) continue;
      ThrowErrno("epoll_wait");
    }
    // Due timers fire before fd dispatch: a wake from FakeClock::Advance
    // reaches them with the post-jump time, ahead of any I/O the test
    // performs afterwards.
    FireExpiredTimers();
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        std::uint64_t drain = 0;
        ssize_t r;
        do {
          r = ::read(wake_fd_, &drain, sizeof drain);
        } while (r < 0 && errno == EINTR);
        continue;
      }
      // Look the handler up per event: an earlier callback in this batch
      // may have Del()ed this fd already.
      const auto it = handlers_.find(fd);
      if (it == handlers_.end()) continue;
      (*it->second)(events[i].events);
    }
    graveyard_.clear();
    DrainPosted();
  }
  // One final drain so a Stop() racing with Post() leaves no orphans.
  DrainPosted();
  running_.store(false, std::memory_order_release);
}

void EventLoop::Stop() {
  running_.store(false, std::memory_order_release);
  Wake();
}

}  // namespace pamakv::net
