#include "pamakv/net/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <future>
#include <limits>
#include <new>
#include <system_error>

#include "pamakv/net/cache_service.hpp"
#include "pamakv/net/protocol.hpp"
#include "pamakv/net/syscall.hpp"

namespace pamakv::net {

namespace {

[[noreturn]] void ThrowErrno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

void SetNonBlocking(int fd) {
  // accept4/SOCK_NONBLOCK cover the common paths; this is the fallback.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

constexpr std::int64_t kNoDeadline = std::numeric_limits<std::int64_t>::max();

constexpr std::int64_t MsToNs(std::int64_t ms) { return ms * 1'000'000; }

}  // namespace

Server::Server(const ServerConfig& config, CacheService& service)
    : config_(config),
      service_(&service),
      clock_(config.clock != nullptr ? config.clock
                                     : &util::SteadyClock::Instance()) {}

Server::~Server() { Stop(); }

void Server::EnableMetrics(util::MetricsRegistry& registry) {
  conn_metrics_.clock = clock_;
  for (std::size_t v = 0; v < kNumVerbs; ++v) {
    const std::string labels =
        "{verb=\"" + std::string(VerbName(static_cast<Verb>(v))) + "\"}";
    // 0.1µs .. 10s covers everything from an in-memory hit to a stalled
    // flush; 64 log buckets ≈ 33% relative error per bucket.
    conn_metrics_.service_us[v] = &registry.GetHistogram(
        "pamakv_service_time_us", 0.1, 1e7, 64, labels,
        "per-command service time, microseconds");
  }
  tx_flush_us_ = &registry.GetHistogram(
      "pamakv_tx_flush_us", 0.1, 1e7, 64, "",
      "time to flush pending response bytes to the socket, microseconds");
  registry.RegisterCallbackGauge(
      "pamakv_curr_connections", "",
      [this] { return static_cast<double>(curr_connections()); },
      "open client connections");
  registry.RegisterCallbackGauge(
      "pamakv_total_connections", "",
      [this] { return static_cast<double>(total_connections()); },
      "connections accepted since start");
}

void Server::Start() {
  listen_fd_ =
      sys::Socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) ThrowErrno("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::invalid_argument("bad listen address: " + config_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(listen_fd_, 512) != 0) {
    const int saved = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    errno = saved;
    ThrowErrno("bind/listen");
  }
  socklen_t len = sizeof addr;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  // The EMFILE reserve: holding one fd we can give back means a
  // descriptor-starved acceptor can still complete one accept and shed
  // the connection with an explanation (see ShedOverflowAccept).
  spare_fd_ = ::open("/dev/null", O_RDONLY | O_CLOEXEC);

  draining_.store(false, std::memory_order_release);
  drain_forced_.store(false, std::memory_order_release);
  const std::size_t n = config_.threads > 0 ? config_.threads : 1;
  loops_.clear();
  try {
    for (std::size_t i = 0; i < n; ++i) {
      loops_.push_back(std::make_unique<Loop>(*clock_));
    }
    // The acceptor lives on loop 0.
    loops_[0]->loop.Add(listen_fd_, EPOLLIN,
                        [this](std::uint32_t) { Accept(); });
  } catch (...) {
    // A loop failed to build (epoll/eventfd exhaustion): release what
    // Start already took so a later retry begins from a clean slate.
    loops_.clear();
    ::close(listen_fd_);
    listen_fd_ = -1;
    if (spare_fd_ >= 0) {
      ::close(spare_fd_);
      spare_fd_ = -1;
    }
    throw;
  }
  for (auto& loop : loops_) {
    Loop* l = loop.get();
    l->thread = std::thread([l] { l->loop.Run(); });
  }
  // Surface connection/lifecycle counters through the `stats` command.
  service_->SetExtraStats(
      [this](std::vector<char>& out) { AppendServerStats(out); });
  started_ = true;
}

void Server::Stop() {
  if (!started_) return;
  for (auto& loop : loops_) loop->loop.Stop();
  Teardown();
}

bool Server::Shutdown(std::chrono::milliseconds grace) {
  if (!started_) return true;
  // Stop accepting before anything else; the posted closures run in
  // order, so the listen fd is gone before loop 0 starts draining.
  loops_[0]->loop.Post([this] { loops_[0]->loop.Del(listen_fd_); });

  std::vector<std::future<void>> armed;
  for (auto& loop : loops_) {
    Loop* l = loop.get();
    auto ready = std::make_shared<std::promise<void>>();
    armed.push_back(ready->get_future());
    l->loop.Post([this, l, grace, ready] {
      l->draining = true;
      // Close connections that are already quiescent; the rest close as
      // they go quiescent in HandleEvents, and CloseConnection stops the
      // loop when the last one goes.
      std::vector<int> quiescent;
      for (const auto& [fd, conn] : l->conns) {
        if (!conn->mid_request() && !conn->wants_write()) {
          quiescent.push_back(fd);
        }
      }
      for (const int fd : quiescent) CloseConnection(*l, fd);
      if (l->conns.empty()) {
        l->loop.Stop();
      } else {
        l->loop.RunAfter(grace, [this, l] {
          if (!l->conns.empty()) {
            drain_forced_.store(true, std::memory_order_release);
            std::vector<int> remaining;
            for (const auto& [fd, conn] : l->conns) remaining.push_back(fd);
            for (const int fd : remaining) CloseConnection(*l, fd);
          }
          l->loop.Stop();
        });
      }
      ready->set_value();
    });
  }
  for (auto& f : armed) f.wait();
  // Every loop is now draining with its grace deadline armed; a test may
  // Advance() a fake clock from this point on.
  draining_.store(true, std::memory_order_release);

  Teardown();
  return !drain_forced_.load(std::memory_order_acquire);
}

void Server::Teardown() {
  service_->SetExtraStats(nullptr);
  for (auto& loop : loops_) {
    if (loop->thread.joinable()) loop->thread.join();
  }
  // Loop threads are gone; tearing down connection maps is race-free now.
  for (auto& loop : loops_) loop->conns.clear();
  loops_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (spare_fd_ >= 0) {
    ::close(spare_fd_);
    spare_fd_ = -1;
  }
  started_ = false;
}

void Server::Accept() {
  while (true) {
    const int fd = sys::Accept4(listen_fd_, nullptr, nullptr,
                                SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      if (errno == EMFILE || errno == ENFILE) {
        // Out of descriptors. Returning with the backlog still pending
        // used to leave the listener readable forever — level-triggered
        // epoll then spun this loop at 100% CPU. Shed one connection via
        // the reserved fd; if even that fails, disarm and retry later.
        if (ShedOverflowAccept()) continue;
        PauseAccepting();
        return;
      }
      // ENOMEM/ENOBUFS and anything unexpected: same spin hazard, no way
      // to shed — back off and retry once the kernel recovers.
      PauseAccepting();
      return;
    }
    if (draining_.load(std::memory_order_acquire)) {
      ::close(fd);
      continue;
    }
    if (config_.max_conns != 0 &&
        curr_connections_.load(std::memory_order_relaxed) >=
            config_.max_conns) {
      // Shed with an explanation instead of a silent RST; best-effort,
      // the socket buffer of a fresh connection always has the room. The
      // counter bumps first so a client that saw the line sees the count.
      rejected_connections_.fetch_add(1, std::memory_order_relaxed);
      static constexpr char kShed[] = "SERVER_ERROR too many connections\r\n";
      [[maybe_unused]] const ssize_t sent =
          ::send(fd, kShed, sizeof kShed - 1, MSG_NOSIGNAL);
      ::close(fd);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    SetNonBlocking(fd);
    total_connections_.fetch_add(1, std::memory_order_relaxed);
    curr_connections_.fetch_add(1, std::memory_order_relaxed);
    Loop& target = *loops_[next_loop_.fetch_add(1, std::memory_order_relaxed) %
                           loops_.size()];
    // Register on the owning loop's thread so conns is single-threaded.
    target.loop.Post([this, &target, fd] { Register(target, fd); });
  }
}

bool Server::ShedOverflowAccept() {
  if (spare_fd_ < 0) return false;
  ::close(spare_fd_);
  spare_fd_ = -1;
  const int fd = sys::Accept4(listen_fd_, nullptr, nullptr,
                              SOCK_NONBLOCK | SOCK_CLOEXEC);
  if (fd >= 0) {
    emfile_sheds_.fetch_add(1, std::memory_order_relaxed);
    static constexpr char kShed[] =
        "SERVER_ERROR out of file descriptors\r\n";
    [[maybe_unused]] const ssize_t sent =
        ::send(fd, kShed, sizeof kShed - 1, MSG_NOSIGNAL);
    ::close(fd);
  }
  // Retake the reserve only after the shed fd is gone — in a true EMFILE
  // the descriptor we just released is the only one in the house.
  spare_fd_ = ::open("/dev/null", O_RDONLY | O_CLOEXEC);
  return fd >= 0;
}

void Server::PauseAccepting() {
  Loop& l = *loops_[0];
  l.loop.Del(listen_fd_);
  const std::int64_t retry_ms =
      config_.accept_retry_ms > 0 ? config_.accept_retry_ms : 10;
  l.loop.RunAfter(std::chrono::milliseconds(retry_ms), [this, &l] {
    if (l.draining) return;  // Shutdown already removed the listener
    l.loop.Add(listen_fd_, EPOLLIN, [this](std::uint32_t) { Accept(); });
    Accept();  // drain whatever queued while we were disarmed
  });
  // Counter last: once a test observes the bump, the retry timer is
  // armed and a FakeClock Advance cannot race past it.
  accept_pauses_.fetch_add(1, std::memory_order_release);
}

void Server::Register(Loop& loop, int fd) {
  std::unique_ptr<Connection> conn;
  try {
    conn = std::make_unique<Connection>(*service_, fd);
    conn->set_pause_threshold(config_.tx_pause_bytes);
    if (conn_metrics_.clock != nullptr) conn->set_metrics(&conn_metrics_);
    conn->Touch(clock_->NowNanos());
    Connection* raw = conn.get();
    loop.conns[fd] = std::move(conn);
    loop.loop.Add(fd, EPOLLIN, [this, &loop, raw](std::uint32_t events) {
      HandleEvents(loop, *raw, events);
    });
    ArmLifecycleTimer(loop, *raw);
  } catch (...) {
    // Registration starved (epoll ENOMEM, allocation failure): shed the
    // socket; the loop thread must survive. Exactly one owner closes the
    // fd — the map entry, the still-local unique_ptr, or us by hand.
    error_closes_.fetch_add(1, std::memory_order_relaxed);
    loop.loop.Del(fd);  // no-op unless Add succeeded
    const auto it = loop.conns.find(fd);
    if (it != loop.conns.end()) {
      loop.conns.erase(it);  // destroys the Connection, closing the fd
    } else if (conn == nullptr) {
      ::close(fd);
    }
    curr_connections_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void Server::HandleEvents(Loop& loop, Connection& conn, std::uint32_t events) {
  const int fd = conn.fd();
  if ((events & (EPOLLHUP | EPOLLERR)) != 0) {
    CloseConnection(loop, fd);
    return;
  }
  bool open = true;
  if ((events & EPOLLIN) != 0 && !conn.paused()) {
    try {
      open = conn.OnReadable() != IoStatus::kClosed;
    } catch (const std::bad_alloc&) {
      // Request processing starved the heap outside the guarded store
      // path (e.g. growing a connection buffer). Drop this connection and
      // keep serving — bad_alloc must never escape the event loop.
      error_closes_.fetch_add(1, std::memory_order_relaxed);
      CloseConnection(loop, fd);
      return;
    }
  }
  // Respond (or flush backlog) regardless of which event fired.
  IoStatus wrote;
  if (tx_flush_us_ != nullptr && conn.wants_write()) {
    const std::int64_t flush_start = clock_->NowNanos();
    wrote = conn.FlushOutput();
    tx_flush_us_->Observe(
        static_cast<double>(clock_->NowNanos() - flush_start) / 1000.0);
  } else {
    wrote = conn.FlushOutput();
  }
  if (wrote == IoStatus::kClosed) {
    CloseConnection(loop, fd);
    return;
  }
  if (!open || (conn.closing() && !conn.wants_write())) {
    CloseConnection(loop, fd);
    return;
  }
  conn.Touch(clock_->NowNanos());

  const std::size_t backlog = conn.tx_backlog();
  if (config_.tx_cap_bytes != 0 && backlog > config_.tx_cap_bytes) {
    // The client is not draining its responses; cut it loose before its
    // backlog eats the heap.
    overflow_closes_.fetch_add(1, std::memory_order_relaxed);
    CloseConnection(loop, fd);
    return;
  }
  if (!conn.paused() && config_.tx_pause_bytes != 0 &&
      backlog >= config_.tx_pause_bytes) {
    conn.set_paused(true);
    backpressure_pauses_.fetch_add(1, std::memory_order_relaxed);
  } else if (conn.paused() && backlog <= config_.tx_resume_bytes) {
    conn.set_paused(false);
    backpressure_resumes_.fetch_add(1, std::memory_order_relaxed);
  }

  if (loop.draining && !conn.mid_request() && !conn.wants_write()) {
    CloseConnection(loop, fd);
    return;
  }

  // Interest mask: EPOLLIN unless paused, EPOLLOUT exactly while a
  // backlog exists (a paused connection always has one).
  loop.loop.Mod(fd, (conn.paused() ? 0u : static_cast<std::uint32_t>(EPOLLIN)) |
                        (conn.wants_write()
                             ? static_cast<std::uint32_t>(EPOLLOUT)
                             : 0u));
  ArmLifecycleTimer(loop, conn);
}

std::int64_t Server::NextDeadlineNs(const Connection& conn) const {
  std::int64_t next = kNoDeadline;
  if (config_.idle_timeout_ms > 0) {
    next = std::min(next,
                    conn.last_activity_ns() + MsToNs(config_.idle_timeout_ms));
  }
  if (config_.request_timeout_ms > 0 && conn.request_start_ns() >= 0) {
    next = std::min(
        next, conn.request_start_ns() + MsToNs(config_.request_timeout_ms));
  }
  return next == kNoDeadline ? 0 : next;
}

void Server::ArmLifecycleTimer(Loop& loop, Connection& conn) {
  const std::int64_t next = NextDeadlineNs(conn);
  if (next == 0) {
    if (conn.lifecycle_timer != kInvalidTimer) {
      loop.loop.Cancel(conn.lifecycle_timer);
      conn.lifecycle_timer = kInvalidTimer;
    }
    return;
  }
  // Lazy re-arm: a deadline that moved later is caught when the armed
  // timer fires and rechecks; only an earlier one needs a fresh timer.
  // Steady-state traffic therefore does no timer churn per request.
  if (conn.lifecycle_timer != kInvalidTimer && next >= conn.armed_deadline_ns) {
    return;
  }
  if (conn.lifecycle_timer != kInvalidTimer) {
    loop.loop.Cancel(conn.lifecycle_timer);
  }
  const int fd = conn.fd();
  const std::int64_t delay = next - clock_->NowNanos();
  conn.armed_deadline_ns = next;
  conn.lifecycle_timer =
      loop.loop.RunAfter(std::chrono::nanoseconds(delay > 0 ? delay : 0),
                         [this, &loop, fd] { OnLifecycleTimer(loop, fd); });
}

void Server::OnLifecycleTimer(Loop& loop, int fd) {
  const auto it = loop.conns.find(fd);
  if (it == loop.conns.end()) return;
  Connection& conn = *it->second;
  conn.lifecycle_timer = kInvalidTimer;
  const std::int64_t now = clock_->NowNanos();
  const bool request_expired =
      config_.request_timeout_ms > 0 && conn.request_start_ns() >= 0 &&
      now - conn.request_start_ns() >= MsToNs(config_.request_timeout_ms);
  const bool idle_expired =
      config_.idle_timeout_ms > 0 &&
      now - conn.last_activity_ns() >= MsToNs(config_.idle_timeout_ms);
  if (request_expired || idle_expired) {
    timed_out_connections_.fetch_add(1, std::memory_order_relaxed);
    CloseConnection(loop, fd);
    return;
  }
  ArmLifecycleTimer(loop, conn);
}

void Server::CloseConnection(Loop& loop, int fd) {
  const auto it = loop.conns.find(fd);
  if (it == loop.conns.end()) return;
  if (it->second->lifecycle_timer != kInvalidTimer) {
    loop.loop.Cancel(it->second->lifecycle_timer);
  }
  loop.loop.Del(fd);
  loop.conns.erase(it);  // destroys the Connection, closing the fd
  curr_connections_.fetch_sub(1, std::memory_order_relaxed);
  if (loop.draining && loop.conns.empty()) loop.loop.Stop();
}

std::size_t Server::MidRequestConnections() {
  std::size_t total = 0;
  for (auto& loop : loops_) {
    Loop* l = loop.get();
    std::promise<std::size_t> count;
    auto got = count.get_future();
    l->loop.Post([l, &count] {
      std::size_t n = 0;
      for (const auto& [fd, conn] : l->conns) {
        if (conn->mid_request()) ++n;
      }
      count.set_value(n);
    });
    total += got.get();
  }
  return total;
}

std::uint64_t Server::LoopIterations() const {
  std::uint64_t total = 0;
  for (const auto& loop : loops_) total += loop->loop.cycles();
  return total;
}

void Server::AppendServerStats(std::vector<char>& out) const {
  AppendStat(out, "curr_connections", curr_connections());
  AppendStat(out, "total_connections", total_connections());
  AppendStat(out, "rejected_connections", rejected_connections());
  AppendStat(out, "timed_out_connections", timed_out_connections());
  AppendStat(out, "overflow_closes", overflow_closes());
  AppendStat(out, "backpressure_pauses", backpressure_pauses());
  AppendStat(out, "backpressure_resumes", backpressure_resumes());
  AppendStat(out, "emfile_sheds", emfile_sheds());
  AppendStat(out, "accept_pauses", accept_pauses());
  AppendStat(out, "error_closes", error_closes());
  AppendStat(out, "loop_iterations", LoopIterations());
}

}  // namespace pamakv::net
