#include "pamakv/net/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <system_error>

#include "pamakv/net/cache_service.hpp"

namespace pamakv::net {

namespace {

[[noreturn]] void ThrowErrno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

void SetNonBlocking(int fd) {
  // accept4/SOCK_NONBLOCK cover the common paths; this is the fallback.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

}  // namespace

Server::Server(const ServerConfig& config, CacheService& service)
    : config_(config), service_(&service) {}

Server::~Server() { Stop(); }

void Server::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) ThrowErrno("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::invalid_argument("bad listen address: " + config_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(listen_fd_, 512) != 0) {
    const int saved = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    errno = saved;
    ThrowErrno("bind/listen");
  }
  socklen_t len = sizeof addr;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  const std::size_t n = config_.threads > 0 ? config_.threads : 1;
  loops_.clear();
  for (std::size_t i = 0; i < n; ++i) {
    loops_.push_back(std::make_unique<Loop>());
  }
  // The acceptor lives on loop 0.
  loops_[0]->loop.Add(listen_fd_, EPOLLIN, [this](std::uint32_t) { Accept(); });
  for (auto& loop : loops_) {
    Loop* l = loop.get();
    l->thread = std::thread([l] { l->loop.Run(); });
  }
  started_ = true;
}

void Server::Stop() {
  if (!started_) return;
  started_ = false;
  for (auto& loop : loops_) loop->loop.Stop();
  for (auto& loop : loops_) {
    if (loop->thread.joinable()) loop->thread.join();
  }
  // Loop threads are gone; tearing down connection maps is race-free now.
  for (auto& loop : loops_) loop->conns.clear();
  loops_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void Server::Accept() {
  while (true) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      return;  // transient accept errors (ECONNABORTED, EMFILE) — drop
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    SetNonBlocking(fd);
    total_connections_.fetch_add(1, std::memory_order_relaxed);
    curr_connections_.fetch_add(1, std::memory_order_relaxed);
    Loop& target = *loops_[next_loop_.fetch_add(1, std::memory_order_relaxed) %
                           loops_.size()];
    // Register on the owning loop's thread so conns is single-threaded.
    target.loop.Post([this, &target, fd] { Register(target, fd); });
  }
}

void Server::Register(Loop& loop, int fd) {
  auto conn = std::make_unique<Connection>(*service_, fd);
  Connection* raw = conn.get();
  loop.conns[fd] = std::move(conn);
  loop.loop.Add(fd, EPOLLIN, [this, &loop, raw](std::uint32_t events) {
    HandleEvents(loop, *raw, events);
  });
}

void Server::HandleEvents(Loop& loop, Connection& conn, std::uint32_t events) {
  const int fd = conn.fd();
  if ((events & (EPOLLHUP | EPOLLERR)) != 0) {
    CloseConnection(loop, fd);
    return;
  }
  bool open = true;
  if ((events & EPOLLIN) != 0) {
    open = conn.OnReadable() != IoStatus::kClosed;
  }
  // Respond (or flush backlog) regardless of which event fired.
  const IoStatus wrote = conn.FlushOutput();
  if (wrote == IoStatus::kClosed) {
    CloseConnection(loop, fd);
    return;
  }
  if (!open || (conn.closing() && !conn.wants_write())) {
    CloseConnection(loop, fd);
    return;
  }
  // Keep EPOLLOUT armed exactly while a backlog exists.
  loop.loop.Mod(fd, conn.wants_write() ? (EPOLLIN | EPOLLOUT) : EPOLLIN);
}

void Server::CloseConnection(Loop& loop, int fd) {
  loop.loop.Del(fd);
  loop.conns.erase(fd);  // destroys the Connection, closing the fd
  curr_connections_.fetch_sub(1, std::memory_order_relaxed);
}

}  // namespace pamakv::net
