#include "pamakv/net/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <system_error>
#include <thread>

#include "pamakv/net/syscall.hpp"

namespace pamakv::net {

namespace {
[[noreturn]] void ThrowErrno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}
}  // namespace

BlockingClient::~BlockingClient() { Close(); }

BlockingClient::BlockingClient(BlockingClient&& other) noexcept
    : fd_(other.fd_),
      rxbuf_(std::move(other.rxbuf_)),
      rxpos_(other.rxpos_),
      host_(std::move(other.host_)),
      port_(other.port_),
      retry_(other.retry_),
      retry_rng_(other.retry_rng_) {
  other.fd_ = -1;
}

BlockingClient& BlockingClient::operator=(BlockingClient&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    rxbuf_ = std::move(other.rxbuf_);
    rxpos_ = other.rxpos_;
    host_ = std::move(other.host_);
    port_ = other.port_;
    retry_ = other.retry_;
    retry_rng_ = other.retry_rng_;
    other.fd_ = -1;
  }
  return *this;
}

void BlockingClient::set_retry_policy(const RetryPolicy& policy) {
  retry_ = policy;
  retry_rng_ = Rng(policy.seed);
}

void BlockingClient::BackoffSleep(int attempt) {
  if (!retry_ || retry_->backoff_base.count() <= 0) return;
  // Exponential, capped so the shift cannot overflow, jittered so
  // synchronized clients desynchronize.
  const int shift = attempt < 20 ? attempt : 20;
  double delay_ms = static_cast<double>(retry_->backoff_base.count()) *
                    static_cast<double>(1ULL << shift);
  const double j = retry_->jitter;
  if (j > 0.0) {
    delay_ms *= 1.0 + j * (2.0 * retry_rng_.NextDouble() - 1.0);
  }
  std::this_thread::sleep_for(
      std::chrono::duration<double, std::milli>(delay_ms));
}

void BlockingClient::Connect(const std::string& host, std::uint16_t port) {
  const int attempts = retry_ ? (retry_->attempts > 1 ? retry_->attempts : 1)
                              : 1;
  for (int attempt = 0;; ++attempt) {
    try {
      ConnectOnce(host, port);
      return;
    } catch (const std::system_error&) {
      if (attempt + 1 >= attempts) throw;
      BackoffSleep(attempt);
    }
  }
}

void BlockingClient::ConnectOnce(const std::string& host,
                                 std::uint16_t port) {
  Close();
  host_ = host;
  port_ = port;
  fd_ = sys::Socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) ThrowErrno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    Close();
    throw std::invalid_argument("bad address: " + host);
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    if (errno == EINTR) {
      // Interrupted connect keeps handshaking in the background; wait for
      // the verdict and read it from SO_ERROR, per POSIX.
      pollfd pfd{fd_, POLLOUT, 0};
      int rc;
      do {
        rc = ::poll(&pfd, 1, -1);
      } while (rc < 0 && errno == EINTR);
      int err = 0;
      socklen_t errlen = sizeof err;
      ::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &err, &errlen);
      if (err != 0) {
        Close();
        errno = err;
        ThrowErrno("connect");
      }
    } else {
      const int saved = errno;
      Close();
      errno = saved;
      ThrowErrno("connect");
    }
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  rxbuf_.clear();
  rxpos_ = 0;
}

template <typename Fn>
auto BlockingClient::WithRetry(Fn&& fn) -> decltype(fn()) {
  if (!retry_ || retry_->attempts <= 1) return fn();
  for (int attempt = 0;; ++attempt) {
    try {
      return fn();
    } catch (const ClientError& e) {
      const bool transient =
          e.kind() == ClientError::Kind::kConnectionClosed ||
          e.kind() == ClientError::Kind::kConnectionReset ||
          e.kind() == ClientError::Kind::kShortRead;
      if (!transient || attempt + 1 >= retry_->attempts) throw;
      BackoffSleep(attempt);
      Connect(host_, port_);  // fresh socket, empty buffers
    }
  }
}

void BlockingClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void BlockingClient::SendRaw(std::string_view data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = sys::Send(fd_, data.data() + sent, data.size() - sent,
                                MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == ECONNRESET || errno == EPIPE) {
        throw ClientError(ClientError::Kind::kConnectionReset,
                          "connection reset while sending");
      }
      ThrowErrno("send");
    }
    sent += static_cast<std::size_t>(n);
  }
}

bool BlockingClient::ReadMore() {
  // Compact lazily so rxbuf_ reuses its capacity.
  if (rxpos_ > 0 && rxpos_ == rxbuf_.size()) {
    rxbuf_.clear();
    rxpos_ = 0;
  }
  char chunk[16 * 1024];
  while (true) {
    const ssize_t n = sys::Recv(fd_, chunk, sizeof chunk, 0);
    if (n > 0) {
      rxbuf_.append(chunk, static_cast<std::size_t>(n));
      return true;
    }
    if (n == 0) return false;
    if (errno == EINTR) continue;
    if (errno == ECONNRESET) {
      throw ClientError(ClientError::Kind::kConnectionReset,
                        "connection reset while receiving");
    }
    ThrowErrno("recv");
  }
}

std::string BlockingClient::ReadLine() {
  while (true) {
    const std::size_t nl = rxbuf_.find('\n', rxpos_);
    if (nl != std::string::npos) {
      std::size_t end = nl;
      if (end > rxpos_ && rxbuf_[end - 1] == '\r') --end;
      std::string line = rxbuf_.substr(rxpos_, end - rxpos_);
      rxpos_ = nl + 1;
      return line;
    }
    if (!ReadMore()) {
      if (rxpos_ < rxbuf_.size()) {
        throw ClientError(ClientError::Kind::kShortRead,
                          "connection closed mid-line");
      }
      throw ClientError(ClientError::Kind::kConnectionClosed,
                        "server closed connection");
    }
  }
}

void BlockingClient::ReadExact(std::string& out, std::size_t n) {
  while (rxbuf_.size() - rxpos_ < n) {
    if (!ReadMore()) {
      throw ClientError(ClientError::Kind::kShortRead,
                        "connection closed mid-value (" +
                            std::to_string(rxbuf_.size() - rxpos_) + " of " +
                            std::to_string(n) + " bytes)");
    }
  }
  out.assign(rxbuf_, rxpos_, n);
  rxpos_ += n;
}

const std::string& BlockingClient::CheckServerError(const std::string& line) {
  if (line.rfind("SERVER_ERROR", 0) == 0) {
    throw ClientError(ClientError::Kind::kServerError, line);
  }
  return line;
}

bool BlockingClient::Set(std::string_view key, std::uint32_t flags,
                         std::string_view value) {
  return WithRetry([&] {
    txline_.clear();
    txline_.append("set ").append(key).append(" ");
    txline_.append(std::to_string(flags));
    txline_.append(" 0 ").append(std::to_string(value.size())).append("\r\n");
    txline_.append(value).append("\r\n");
    SendRaw(txline_);
    return CheckServerError(ReadLine()) == "STORED";
  });
}

bool BlockingClient::Get(std::string_view key, std::string& value,
                         std::uint32_t* flags) {
  return WithRetry([&] { return GetOnce(key, value, flags); });
}

bool BlockingClient::GetOnce(std::string_view key, std::string& value,
                             std::uint32_t* flags) {
  txline_.clear();
  txline_.append("get ").append(key).append("\r\n");
  SendRaw(txline_);
  bool hit = false;
  while (true) {
    const std::string line = CheckServerError(ReadLine());
    if (line == "END") return hit;
    if (line.rfind("VALUE ", 0) == 0) {
      // "VALUE <key> <flags> <bytes>"
      const std::size_t sp1 = line.find(' ', 6);
      const std::size_t sp2 = line.find(' ', sp1 + 1);
      const auto parsed_flags =
          std::stoul(line.substr(sp1 + 1, sp2 - sp1 - 1));
      const auto bytes = std::stoull(line.substr(sp2 + 1));
      if (flags != nullptr) *flags = static_cast<std::uint32_t>(parsed_flags);
      ReadExact(value, static_cast<std::size_t>(bytes));
      // Trailing CRLF after the data block.
      if (!ReadLine().empty()) {
        throw ClientError(ClientError::Kind::kProtocol, "bad value terminator");
      }
      hit = true;
      continue;
    }
    throw ClientError(ClientError::Kind::kProtocol,
                      "unexpected get response: " + line);
  }
}

bool BlockingClient::Delete(std::string_view key) {
  return WithRetry([&] {
    txline_.clear();
    txline_.append("delete ").append(key).append("\r\n");
    SendRaw(txline_);
    return CheckServerError(ReadLine()) == "DELETED";
  });
}

std::vector<std::pair<std::string, std::uint64_t>> BlockingClient::Stats() {
  return WithRetry([&] {
    SendRaw("stats\r\n");
    std::vector<std::pair<std::string, std::uint64_t>> stats;
    while (true) {
      const std::string line = CheckServerError(ReadLine());
      if (line == "END") return stats;
      if (line.rfind("STAT ", 0) != 0) {
        throw ClientError(ClientError::Kind::kProtocol,
                          "unexpected stats response: " + line);
      }
      const std::size_t sp = line.find(' ', 5);
      stats.emplace_back(line.substr(5, sp - 5),
                         std::stoull(line.substr(sp + 1)));
    }
  });
}

std::string BlockingClient::Version() {
  return WithRetry([&] {
    SendRaw("version\r\n");
    std::string line = CheckServerError(ReadLine());
    if (line.rfind("VERSION ", 0) == 0) line.erase(0, 8);
    return line;
  });
}

void BlockingClient::FlushAll() {
  WithRetry([&] {
    SendRaw("flush_all\r\n");
    const std::string line = CheckServerError(ReadLine());
    if (line != "OK") {
      throw ClientError(ClientError::Kind::kProtocol,
                        "flush_all failed: " + line);
    }
  });
}

}  // namespace pamakv::net
