#include "pamakv/net/metrics_http.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <system_error>

#include "pamakv/net/syscall.hpp"

namespace pamakv::net {

namespace {

[[noreturn]] void ThrowErrno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

}  // namespace

MetricsHttpServer::MetricsHttpServer(const MetricsHttpConfig& config,
                                     util::MetricsRegistry& registry)
    : config_(config),
      registry_(&registry),
      clock_(config.clock != nullptr ? config.clock
                                     : &util::SteadyClock::Instance()) {}

MetricsHttpServer::~MetricsHttpServer() { Stop(); }

void MetricsHttpServer::Start() {
  listen_fd_ =
      sys::Socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) ThrowErrno("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::invalid_argument("bad metrics address: " + config_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
          0 ||
      ::listen(listen_fd_, 64) != 0) {
    const int saved = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    errno = saved;
    ThrowErrno("bind/listen (metrics)");
  }
  socklen_t len = sizeof addr;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  start_ns_ = clock_->NowNanos();
  loop_ = std::make_unique<EventLoop>(*clock_);
  loop_->Add(listen_fd_, EPOLLIN, [this](std::uint32_t) { Accept(); });
  thread_ = std::thread([this] { loop_->Run(); });
  if (config_.dump_ms > 0) {
    loop_->Post([this] {
      loop_->RunAfter(std::chrono::milliseconds(config_.dump_ms),
                      [this] { DumpCsv(); });
    });
  }
  started_ = true;
}

void MetricsHttpServer::Stop() {
  if (!started_) return;
  started_ = false;
  loop_->Stop();
  thread_.join();
  for (auto& [fd, conn] : conns_) ::close(fd);
  conns_.clear();
  ::close(listen_fd_);
  listen_fd_ = -1;
  loop_.reset();
}

void MetricsHttpServer::Accept() {
  for (;;) {
    const int fd = sys::Accept4(listen_fd_, nullptr, nullptr,
                                SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN or transient error: wait for next EPOLLIN
    try {
      conns_.emplace(fd, Conn{});
      loop_->Add(fd, EPOLLIN,
                 [this, fd](std::uint32_t ev) { HandleConn(fd, ev); });
    } catch (...) {
      conns_.erase(fd);
      ::close(fd);
    }
  }
}

bool MetricsHttpServer::ParseRequest(const std::string& rx,
                                     std::string& target) {
  // Head complete at the first blank line; we only need the request line.
  if (rx.find("\r\n\r\n") == std::string::npos &&
      rx.find("\n\n") == std::string::npos) {
    return false;
  }
  const auto line_end = rx.find_first_of("\r\n");
  const std::string line = rx.substr(0, line_end);
  const auto sp1 = line.find(' ');
  if (sp1 == std::string::npos) return true;  // malformed; 404 it
  const auto sp2 = line.find(' ', sp1 + 1);
  const std::string method = line.substr(0, sp1);
  target = line.substr(sp1 + 1, sp2 == std::string::npos ? std::string::npos
                                                         : sp2 - sp1 - 1);
  if (method != "GET") target.clear();
  // Drop any query string: Prometheus may append ?format= parameters.
  const auto q = target.find('?');
  if (q != std::string::npos) target.resize(q);
  return true;
}

std::string MetricsHttpServer::BuildResponse(const std::string& target) {
  std::string body;
  std::string status;
  std::string content_type;
  if (target == "/metrics") {
    body = registry_->Snapshot().RenderPrometheus();
    status = "200 OK";
    content_type = "text/plain; version=0.0.4; charset=utf-8";
    scrapes_.fetch_add(1, std::memory_order_relaxed);
  } else {
    body = "not found\n";
    status = "404 Not Found";
    content_type = "text/plain; charset=utf-8";
  }
  char head[160];
  std::snprintf(head, sizeof head,
                "HTTP/1.0 %s\r\nContent-Type: %s\r\n"
                "Content-Length: %zu\r\nConnection: close\r\n\r\n",
                status.c_str(), content_type.c_str(), body.size());
  std::string out(head);
  out += body;
  return out;
}

void MetricsHttpServer::HandleConn(int fd, std::uint32_t events) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  Conn& conn = it->second;

  if ((events & (EPOLLHUP | EPOLLERR)) != 0) {
    CloseConn(fd);
    return;
  }

  if ((events & EPOLLIN) != 0 && conn.tx.empty()) {
    char buf[1024];
    for (;;) {
      const ssize_t n = sys::Read(fd, buf, sizeof buf);
      if (n > 0) {
        conn.rx.append(buf, static_cast<std::size_t>(n));
        if (conn.rx.size() > kMaxRequestBytes) {
          CloseConn(fd);
          return;
        }
        continue;
      }
      if (n == 0) {  // peer closed before a full request
        CloseConn(fd);
        return;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      CloseConn(fd);
      return;
    }
    std::string target;
    if (ParseRequest(conn.rx, target)) {
      conn.tx = BuildResponse(target);
      loop_->Mod(fd, EPOLLOUT);
    }
  }

  if (!conn.tx.empty()) {
    while (conn.tx_off < conn.tx.size()) {
      const ssize_t n = sys::Write(fd, conn.tx.data() + conn.tx_off,
                                   conn.tx.size() - conn.tx_off);
      if (n > 0) {
        conn.tx_off += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
      CloseConn(fd);
      return;
    }
    CloseConn(fd);  // HTTP/1.0: response sent, done
  }
}

void MetricsHttpServer::CloseConn(int fd) {
  loop_->Del(fd);
  ::close(fd);
  conns_.erase(fd);
}

void MetricsHttpServer::DumpCsv() {
  const std::int64_t elapsed_ms =
      (clock_->NowNanos() - start_ns_) / 1'000'000;
  std::string rows;
  registry_->Snapshot().AppendCsv(rows, elapsed_ms);
  std::error_code ec;
  const auto parent = std::filesystem::path(config_.dump_path).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent, ec);
  const bool fresh = !std::filesystem::exists(config_.dump_path, ec);
  std::ofstream out(config_.dump_path, std::ios::app);
  if (out) {
    if (fresh) out << "elapsed_ms,metric,value\n";
    out << rows;
  }
  dumps_.fetch_add(1, std::memory_order_relaxed);
  loop_->RunAfter(std::chrono::milliseconds(config_.dump_ms),
                  [this] { DumpCsv(); });
}

}  // namespace pamakv::net
