#include "pamakv/net/connection.hpp"

#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <new>

#include "pamakv/net/cache_service.hpp"
#include "pamakv/net/syscall.hpp"

namespace pamakv::net {

namespace {
constexpr std::size_t kReadChunk = 16 * 1024;
/// Compact rx_ when the dead prefix crosses this threshold; below it the
/// memmove costs more than the space it reclaims.
constexpr std::size_t kCompactThreshold = 4 * 1024;
}  // namespace

Connection::Connection(CacheService& service, int fd)
    : service_(&service), fd_(fd) {}

Connection::~Connection() {
  if (fd_ >= 0) ::close(fd_);
}

void Connection::ConsumeOutput(std::size_t n) {
  tx_head_ += n;
  if (tx_head_ >= tx_.size()) {
    tx_.clear();
    tx_head_ = 0;
  }
}

void Connection::ReleaseConsumed() {
  if (rx_head_ == rx_.size()) {
    rx_.clear();
    rx_head_ = 0;
    rx_scan_ = 0;
  } else if (rx_head_ >= kCompactThreshold) {
    std::memmove(rx_.data(), rx_.data() + rx_head_, rx_.size() - rx_head_);
    rx_.resize(rx_.size() - rx_head_);
    rx_scan_ -= rx_head_;
    rx_head_ = 0;
  }
}

void Connection::FatalClientError(std::string_view message) {
  AppendLiteral(tx_, "CLIENT_ERROR ");
  AppendLiteral(tx_, message);
  AppendLiteral(tx_, "\r\n");
  closing_ = true;
}

bool Connection::Ingest(const char* data, std::size_t n) {
  if (closing_) return false;
  // Oversized-set payloads are swallowed straight from the input so a
  // hostile "set k 0 0 999999999" cannot balloon the receive buffer.
  if (discard_remaining_ > 0) {
    const std::size_t eat = static_cast<std::size_t>(
        discard_remaining_ < n ? discard_remaining_ : n);
    discard_remaining_ -= eat;
    data += eat;
    n -= eat;
    if (n == 0) return true;
  }
  rx_.insert(rx_.end(), data, data + n);
  ProcessBuffer();
  ReleaseConsumed();
  return !closing_;
}

void Connection::ProcessBuffer() {
  while (!closing_) {
    if (discard_remaining_ > 0) {
      // Oversized-set payload that was already buffered with its command
      // line: drop it in place.
      const std::size_t avail = rx_.size() - rx_head_;
      const std::size_t eat = static_cast<std::size_t>(
          discard_remaining_ < avail ? discard_remaining_ : avail);
      rx_head_ += eat;
      rx_scan_ = rx_head_;
      discard_remaining_ -= eat;
      if (discard_remaining_ > 0) return;  // need more input
      continue;
    }
    if (awaiting_data_) {
      // Need <bytes> of payload + CRLF.
      const std::size_t need = static_cast<std::size_t>(pending_bytes_) + 2;
      if (rx_.size() - rx_head_ < need) {
        rx_.reserve(rx_head_ + need);  // one growth, then wait for bytes
        return;
      }
      const char* payload = rx_.data() + rx_head_;
      if (payload[need - 2] != '\r' || payload[need - 1] != '\n') {
        FatalClientError("bad data chunk");
        return;
      }
      FinishSet(std::string_view(payload, static_cast<std::size_t>(pending_bytes_)));
      rx_head_ += need;
      rx_scan_ = rx_head_;
      awaiting_data_ = false;
      continue;
    }

    // Scan for the end of the next command line from where we left off.
    if (rx_scan_ >= rx_.size()) {
      if (rx_.size() - rx_head_ > kMaxLineBytes) {
        FatalClientError("line too long");
      }
      return;
    }
    const char* base = rx_.data();
    const char* nl = static_cast<const char*>(
        std::memchr(base + rx_scan_, '\n', rx_.size() - rx_scan_));
    if (nl == nullptr) {
      rx_scan_ = rx_.size();
      if (rx_.size() - rx_head_ > kMaxLineBytes) {
        FatalClientError("line too long");
      }
      return;
    }
    std::size_t line_end = static_cast<std::size_t>(nl - base);
    const std::size_t next = line_end + 1;
    // Tolerate bare \n (printf | nc without \r); strip the \r when present.
    if (line_end > rx_head_ && base[line_end - 1] == '\r') --line_end;
    const std::string_view line(base + rx_head_, line_end - rx_head_);
    if (line.size() > kMaxLineBytes) {
      FatalClientError("line too long");
      return;
    }

    Command cmd;
    const ParseResult parsed = ParseCommandLine(line, cmd);
    // The line (and any key views into it) stays valid through ExecuteLine;
    // rx_ is not mutated until the command is fully handled.
    switch (parsed.status) {
      case ParseStatus::kOk:
        ExecuteLine(cmd);
        break;
      case ParseStatus::kError:
        AppendLiteral(tx_, "ERROR\r\n");
        break;
      case ParseStatus::kClientError:
        AppendLiteral(tx_, "CLIENT_ERROR ");
        AppendLiteral(tx_, parsed.error);
        AppendLiteral(tx_, "\r\n");
        break;
    }
    rx_head_ = next;
    rx_scan_ = next;
  }
}

void Connection::ObserveVerb(Verb verb, std::int64_t start_ns) noexcept {
  util::Histogram* h =
      metrics_->service_us[static_cast<std::size_t>(verb)];
  if (h == nullptr) return;
  const std::int64_t elapsed = metrics_->clock->NowNanos() - start_ns;
  h->Observe(static_cast<double>(elapsed) / 1000.0);
}

void Connection::ExecuteLine(const Command& cmd) {
  // `set` is only staged here — its real work (payload + store) is timed
  // in FinishSet, so the verb histograms measure service, not waiting.
  const std::int64_t start_ns =
      metrics_ != nullptr && cmd.verb != Verb::kSet
          ? metrics_->clock->NowNanos()
          : -1;
  switch (cmd.verb) {
    case Verb::kGet:
    case Verb::kGets:
      ExecuteRetrieval(cmd);
      break;
    case Verb::kSet: {
      if (cmd.value_bytes > kMaxValueBytes) {
        // Swallow the announced payload (+CRLF) without buffering it,
        // then keep the connection usable — memcached's behavior.
        // ProcessBuffer drains any payload bytes already in rx_; Ingest
        // eats the rest straight from the input.
        discard_remaining_ = cmd.value_bytes + 2;
        if (!cmd.noreply) {
          AppendLiteral(tx_, "SERVER_ERROR object too large for cache\r\n");
        }
        break;
      }
      awaiting_data_ = true;
      pending_key_len_ = cmd.keys[0].size();
      std::memcpy(pending_key_, cmd.keys[0].data(), pending_key_len_);
      pending_flags_ = cmd.flags;
      pending_bytes_ = cmd.value_bytes;
      pending_noreply_ = cmd.noreply;
      break;
    }
    case Verb::kDelete: {
      const bool deleted = service_->Del(cmd.keys[0]);
      if (!cmd.noreply) {
        AppendLiteral(tx_, deleted ? "DELETED\r\n" : "NOT_FOUND\r\n");
      }
      break;
    }
    case Verb::kStats:
      service_->AppendStats(tx_, cmd.stats_detail);
      break;
    case Verb::kFlushAll:
      service_->FlushAll();
      if (!cmd.noreply) AppendLiteral(tx_, "OK\r\n");
      break;
    case Verb::kVersion:
      AppendLiteral(tx_, "VERSION pamakv-0.2\r\n");
      break;
    case Verb::kQuit:
      closing_ = true;
      break;
  }
  if (start_ns >= 0) ObserveVerb(cmd.verb, start_ns);
}

void Connection::ExecuteRetrieval(const Command& cmd) {
  const bool with_cas = cmd.verb == Verb::kGets;
  for (std::size_t i = 0; i < cmd.num_keys; ++i) {
    service_->Get(cmd.keys[i], tx_, with_cas);
  }
  AppendLiteral(tx_, "END\r\n");
}

void Connection::FinishSet(std::string_view data) {
  const std::int64_t start_ns =
      metrics_ != nullptr ? metrics_->clock->NowNanos() : -1;
  const std::string_view key(pending_key_, pending_key_len_);
  bool stored = false;
  try {
    stored = service_->Set(key, pending_flags_, data);
  } catch (const std::bad_alloc&) {
    // The service staged its allocations before mutating, so the cache is
    // exactly as it was. Fail this request, keep the connection — one
    // starved store must not take down the event loop (memcached answers
    // the same way when an item allocation fails).
    if (!pending_noreply_) {
      AppendLiteral(tx_, "SERVER_ERROR out of memory storing object\r\n");
    }
    if (start_ns >= 0) ObserveVerb(Verb::kSet, start_ns);
    return;
  }
  if (!pending_noreply_) {
    AppendLiteral(tx_, stored ? "STORED\r\n" : "NOT_STORED\r\n");
  }
  if (start_ns >= 0) ObserveVerb(Verb::kSet, start_ns);
}

IoStatus Connection::OnReadable() {
  while (true) {
    if (pause_threshold_ != 0 && tx_backlog() >= pause_threshold_) {
      // Slow reader: leave the rest in the kernel buffer; the loop will
      // pause EPOLLIN and resume once the backlog drains.
      return IoStatus::kOk;
    }
    char chunk[kReadChunk];
    const ssize_t n = sys::Read(fd_, chunk, sizeof chunk);
    if (n > 0) {
      if (!Ingest(chunk, static_cast<std::size_t>(n))) return IoStatus::kClosed;
      if (static_cast<std::size_t>(n) < sizeof chunk) return IoStatus::kOk;
      continue;
    }
    if (n == 0) return IoStatus::kClosed;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return IoStatus::kOk;
    if (errno == EINTR) continue;
    return IoStatus::kClosed;
  }
}

IoStatus Connection::FlushOutput() {
  while (wants_write()) {
    // sys::Write sends with MSG_NOSIGNAL: a peer that reset mid-response
    // yields EPIPE (-> kClosed below) instead of a process-wide SIGPIPE.
    const ssize_t n =
        sys::Write(fd_, tx_.data() + tx_head_, tx_.size() - tx_head_);
    if (n > 0) {
      ConsumeOutput(static_cast<std::size_t>(n));
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return IoStatus::kWouldBlock;
    if (errno == EINTR) continue;
    return IoStatus::kClosed;
  }
  return IoStatus::kOk;
}

}  // namespace pamakv::net
