#include "pamakv/cache/hash_index.hpp"

#include <cassert>

namespace pamakv {

std::size_t HashIndex::RoundUpPow2(std::size_t n) noexcept {
  std::size_t p = 16;
  while (p < n) p <<= 1;
  return p;
}

HashIndex::HashIndex(std::size_t initial_capacity) {
  const std::size_t cap = RoundUpPow2(initial_capacity);
  slots_.assign(cap, Slot{});
  mask_ = cap - 1;
}

void HashIndex::Grow() { Rehash(slots_.size() * 2); }

void HashIndex::Rehash(std::size_t new_capacity) {
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(new_capacity, Slot{});
  mask_ = slots_.size() - 1;
  size_ = 0;
  for (const Slot& s : old) {
    if (s.handle != kInvalidHandle) Upsert(s.key, s.handle);
  }
}

void HashIndex::Reserve(std::size_t expected_keys) {
  // Same threshold as the insert path: keep load below 0.7.
  const std::size_t needed = RoundUpPow2(expected_keys * 10 / 7 + 1);
  if (needed > slots_.size()) Rehash(needed);
}

void HashIndex::Upsert(KeyId key, ItemHandle handle) {
  assert(handle != kInvalidHandle);
  if ((size_ + 1) * 10 > slots_.size() * 7) Grow();
  std::size_t pos = IdealSlot(key);
  for (;;) {
    Slot& s = slots_[pos];
    if (s.handle == kInvalidHandle) {
      s = Slot{key, handle};
      ++size_;
      return;
    }
    if (s.key == key) {
      s.handle = handle;
      return;
    }
    pos = (pos + 1) & mask_;
  }
}

ItemHandle HashIndex::Find(KeyId key) const noexcept {
  std::size_t pos = IdealSlot(key);
  PrefetchSlot(pos);
  // Speculatively pull the following line too: clusters longer than one
  // cache line are rare below the 0.7 load ceiling, so this hides the
  // second miss on the occasional long probe without polluting much.
  PrefetchSlot((pos + kSlotsPerCacheLine) & mask_);
  std::size_t distance = 0;
  for (;;) {
    const Slot& s = slots_[pos];
    if (s.handle == kInvalidHandle) return kInvalidHandle;
    if (s.key == key) return s.handle;
    // An occupant closer to its ideal slot than our probe distance proves
    // the key is absent (robin-hood style early exit for linear probing is
    // not sound in general, so we only stop at empty slots or full loop).
    pos = (pos + 1) & mask_;
    if (++distance > slots_.size()) return kInvalidHandle;  // defensive
  }
}

bool HashIndex::Erase(KeyId key) noexcept {
  std::size_t pos = IdealSlot(key);
  std::size_t distance = 0;
  while (slots_[pos].handle != kInvalidHandle && slots_[pos].key != key) {
    pos = (pos + 1) & mask_;
    if (++distance > slots_.size()) return false;
  }
  if (slots_[pos].handle == kInvalidHandle) return false;

  // Backward-shift deletion (classic linear-probing algorithm): walk the
  // cluster after the hole; any entry whose ideal slot does NOT lie in the
  // cyclic range (hole, entry] would become unreachable, so it fills the
  // hole, which then moves to the entry's old position. Entries that hash
  // between the hole and their position must stay put — simply stopping at
  // the first in-place entry would strand later displaced entries.
  slots_[pos] = Slot{};
  std::size_t hole = pos;
  std::size_t probe = pos;
  for (;;) {
    probe = (probe + 1) & mask_;
    if (slots_[probe].handle == kInvalidHandle) break;
    const std::size_t ideal = IdealSlot(slots_[probe].key);
    // Distance from ideal to current position vs from hole to position:
    // if the entry is displaced at least as far as the hole, relocate it.
    if (((probe - ideal) & mask_) >= ((probe - hole) & mask_)) {
      slots_[hole] = slots_[probe];
      slots_[probe] = Slot{};
      hole = probe;
    }
  }
  --size_;
  return true;
}

}  // namespace pamakv
