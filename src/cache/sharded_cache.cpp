#include "pamakv/cache/sharded_cache.hpp"

#include <stdexcept>

namespace pamakv {

ShardedCache::ShardedCache(std::size_t shards, Bytes capacity_bytes,
                           const EngineFactory& factory) {
  if (shards == 0) {
    throw std::invalid_argument("ShardedCache: need at least one shard");
  }
  const Bytes per_shard = capacity_bytes / shards;
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    auto engine = factory(per_shard);
    if (!engine) {
      throw std::invalid_argument("ShardedCache: factory returned null");
    }
    shards_.push_back(std::move(engine));
  }
}

CacheStats ShardedCache::TotalStats() const {
  CacheStats total;
  for (const auto& shard : shards_) total += shard->stats();
  return total;
}

}  // namespace pamakv
