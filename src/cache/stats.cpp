#include "pamakv/cache/stats.hpp"

namespace pamakv {

CacheStats CacheStats::Since(const CacheStats& earlier) const noexcept {
  CacheStats d;
  d.gets = gets - earlier.gets;
  d.get_hits = get_hits - earlier.get_hits;
  d.get_misses = get_misses - earlier.get_misses;
  d.sets = sets - earlier.sets;
  d.set_updates = set_updates - earlier.set_updates;
  d.set_failures = set_failures - earlier.set_failures;
  d.dels = dels - earlier.dels;
  d.evictions = evictions - earlier.evictions;
  d.slab_migrations = slab_migrations - earlier.slab_migrations;
  d.ghost_hits = ghost_hits - earlier.ghost_hits;
  d.miss_penalty_total_us = miss_penalty_total_us - earlier.miss_penalty_total_us;
  d.hit_penalty_saved_us = hit_penalty_saved_us - earlier.hit_penalty_saved_us;
  // Gauge: unsigned subtraction yields the (wrapping) net change, which
  // window consumers treat as a delta rather than a level.
  d.bytes_stored = bytes_stored - earlier.bytes_stored;
  return d;
}

CacheStats& CacheStats::operator+=(const CacheStats& other) noexcept {
  gets += other.gets;
  get_hits += other.get_hits;
  get_misses += other.get_misses;
  sets += other.sets;
  set_updates += other.set_updates;
  set_failures += other.set_failures;
  dels += other.dels;
  evictions += other.evictions;
  slab_migrations += other.slab_migrations;
  ghost_hits += other.ghost_hits;
  miss_penalty_total_us += other.miss_penalty_total_us;
  hit_penalty_saved_us += other.hit_penalty_saved_us;
  bytes_stored += other.bytes_stored;
  return *this;
}

StatsSnapshot CacheStats::Snapshot() const noexcept {
  return StatsSnapshot{{
      {"cmd_get", gets},
      {"cmd_set", sets},
      {"cmd_delete", dels},
      {"get_hits", get_hits},
      {"get_misses", get_misses},
      {"evictions", evictions},
      {"bytes", bytes_stored},
      {"set_updates", set_updates},
      {"set_failures", set_failures},
      {"ghost_hits", ghost_hits},
      {"slab_migrations", slab_migrations},
      {"miss_penalty_total_us", miss_penalty_total_us},
      {"hit_penalty_saved_us", hit_penalty_saved_us},
  }};
}

}  // namespace pamakv
