#include "pamakv/cache/string_keys.hpp"

#include "pamakv/util/rng.hpp"

namespace pamakv {

KeyId HashStringKey(std::string_view key) noexcept {
  // FNV-1a accumulates every byte; the splitmix finalizer fixes FNV's weak
  // high-bit avalanche.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : key) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return Mix64(h);
}

bool StringKeyCache::VerifiedHit(KeyId id, std::string_view key) const {
  const auto it = names_.find(id);
  return it != names_.end() && it->second == key;
}

GetResult StringKeyCache::Get(std::string_view key, Bytes size,
                              MicroSecs miss_penalty) {
  const KeyId id = HashStringKey(key);
  if (engine_->Contains(id)) {
    if (!VerifiedHit(id, key)) {
      // A different string occupies this id: collision. Drop the squatter
      // so both keys see consistent misses from here on.
      ++collisions_;
      engine_->Del(id);
      names_.erase(id);
    }
  } else {
    // The engine evicted this id at some point; prune the stale name so
    // the verification table tracks only live entries.
    names_.erase(id);
  }
  return engine_->Get(id, size, miss_penalty);
}

SetResult StringKeyCache::Set(std::string_view key, Bytes size,
                              MicroSecs penalty) {
  const KeyId id = HashStringKey(key);
  if (engine_->Contains(id) && !VerifiedHit(id, key)) {
    ++collisions_;
    engine_->Del(id);
    names_.erase(id);
  }
  const SetResult result = engine_->Set(id, size, penalty);
  if (result.stored) {
    names_[id] = std::string(key);
  }
  return result;
}

bool StringKeyCache::Del(std::string_view key) {
  const KeyId id = HashStringKey(key);
  if (!VerifiedHit(id, key)) {
    // Either absent or a collision squatter; a DEL of this name must not
    // remove someone else's entry.
    return false;
  }
  names_.erase(id);
  return engine_->Del(id);
}

bool StringKeyCache::Contains(std::string_view key) const {
  const KeyId id = HashStringKey(key);
  return engine_->Contains(id) && VerifiedHit(id, key);
}

}  // namespace pamakv
