#include "pamakv/cache/cache_engine.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

#include "pamakv/policy/policy.hpp"
#include "pamakv/util/failpoint.hpp"

namespace pamakv {

namespace {

std::vector<LruStack> MakeStacks(std::size_t count, std::uint64_t seed) {
  std::vector<LruStack> stacks;
  stacks.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    stacks.emplace_back(Mix64(seed + i));
  }
  return stacks;
}

std::vector<GhostList> MakeGhosts(const SizeClassTable& classes,
                                  std::uint32_t bands,
                                  std::uint32_t ghost_segments) {
  std::vector<GhostList> ghosts;
  ghosts.reserve(static_cast<std::size_t>(classes.num_classes()) * bands);
  for (ClassId c = 0; c < classes.num_classes(); ++c) {
    const std::size_t cap =
        static_cast<std::size_t>(ghost_segments) * classes.SlotsPerSlab(c);
    for (std::uint32_t s = 0; s < bands; ++s) {
      ghosts.emplace_back(cap);
    }
  }
  return ghosts;
}

}  // namespace

CacheEngine::CacheEngine(const EngineConfig& config,
                         std::unique_ptr<AllocationPolicy> policy)
    : classes_(config.size_classes),
      bands_(config.penalty_band_bounds),
      pool_(config.capacity_bytes, classes_, bands_.num_bands()),
      stacks_(MakeStacks(
          static_cast<std::size_t>(classes_.num_classes()) * bands_.num_bands(),
          config.seed)),
      ghosts_(MakeGhosts(classes_, bands_.num_bands(), config.ghost_segments)),
      ghost_hits_by_stack_(stacks_.size(), 0),
      policy_(std::move(policy)),
      hit_time_us_(config.hit_time_us) {
  assert(policy_ != nullptr);
  // Pre-size the index for the slot budget the pool could actually serve
  // (slabs spread evenly across classes) so warmup doesn't rehash-storm.
  // Capped: a cache whose slabs all end up in the smallest class can still
  // trigger a handful of late rehashes, which is the right trade against
  // reserving the worst case up front.
  std::size_t slot_estimate = 0;
  if (classes_.num_classes() > 0) {
    const std::size_t slabs_per_class =
        std::max<std::size_t>(1, pool_.total_slabs() / classes_.num_classes());
    for (ClassId c = 0; c < classes_.num_classes(); ++c) {
      slot_estimate += slabs_per_class * classes_.SlotsPerSlab(c);
    }
  }
  index_.Reserve(std::min<std::size_t>(slot_estimate, 1u << 22));
  policy_->Attach(*this);
}

CacheEngine::~CacheEngine() = default;

ItemHandle CacheEngine::AllocateItem() {
  // ReserveItemCapacity ran at the top of Set, so the free list is never
  // empty here and this cannot throw mid-mutation.
  assert(!free_items_.empty());
  const ItemHandle h = free_items_.back();
  free_items_.pop_back();
  return h;
}

void CacheEngine::ReserveItemCapacity() {
  if (!free_items_.empty()) return;
  PAMAKV_FAILPOINT_OOM("engine.item_alloc");
  if (free_items_.capacity() < items_.size() + 1) {
    // The free list is empty here, so growing it is a copy-free realloc.
    // Keep its capacity >= the item count (geometrically) so ReleaseItem's
    // push_back — noexcept, called mid-eviction — can never reallocate.
    free_items_.reserve(std::max(items_.size() + 1,
                                 free_items_.capacity() * 2));
  }
  items_.emplace_back();
  assert(items_.size() - 1 < std::numeric_limits<ItemHandle>::max());
  free_items_.push_back(static_cast<ItemHandle>(items_.size() - 1));
}

void CacheEngine::ReleaseItem(ItemHandle h) noexcept { free_items_.push_back(h); }

GetResult CacheEngine::Get(KeyId key, Bytes size, MicroSecs miss_penalty) {
  policy_->OnTick(clock_);
  ++clock_;
  ++stats_.gets;

  const ItemHandle h = index_.Find(key);
  if (h != kInvalidHandle) {
    Item& item = items_[h];
    ++stats_.get_hits;
    // The hit avoided this item's recorded miss penalty — the live
    // numerator of the paper's service-time savings.
    stats_.hit_penalty_saved_us += static_cast<std::uint64_t>(item.penalty);
    // Policy sees the pre-promotion stack position (rank bookkeeping).
    policy_->OnHit(item);
    StackOf(item.cls, item.sub).MoveToTop(item.node);
    item.last_access = clock_;
    return GetResult{true, hit_time_us_};
  }

  ++stats_.get_misses;
  stats_.miss_penalty_total_us += static_cast<std::uint64_t>(miss_penalty);
  // Route the miss to the class/subclass the item would occupy so the
  // policy can consult the right ghost list.
  const auto cls_opt = classes_.ClassForSize(size);
  if (cls_opt) {
    const SubclassId sub = bands_.BandFor(miss_penalty);
    if (GhostOf(*cls_opt, sub).Contains(key)) {
      ++stats_.ghost_hits;
      ++ghost_hits_by_stack_[StackIndex(*cls_opt, sub)];
    }
    policy_->OnMiss(key, size, miss_penalty, *cls_opt, sub);
  }
  return GetResult{false, miss_penalty};
}

SetResult CacheEngine::Set(KeyId key, Bytes size, MicroSecs penalty) {
  // All item-table growth happens before any state mutates: a bad_alloc
  // from here (real heap exhaustion, or injected via engine.item_alloc)
  // leaves the engine bit-identical to before the call. The remaining
  // allocation seams deeper in the insert path (LRU node pool, index
  // rehash) are guarded with explicit rollback below.
  ReserveItemCapacity();
  policy_->OnTick(clock_);
  ++clock_;
  ++stats_.sets;

  const auto cls_opt = classes_.ClassForSize(size);
  if (!cls_opt) {
    ++stats_.set_failures;  // larger than the largest slot: refused
    return SetResult{};
  }
  const ClassId cls = *cls_opt;
  const SubclassId sub = bands_.BandFor(penalty);

  // Overwrite path.
  const ItemHandle existing = index_.Find(key);
  if (existing != kInvalidHandle) {
    Item& item = items_[existing];
    if (item.cls == cls && item.sub == sub) {
      stats_.bytes_stored += size;
      stats_.bytes_stored -= item.size;
      item.size = size;
      item.penalty = penalty;
      item.last_access = clock_;
      StackOf(cls, sub).MoveToTop(item.node);
      ++stats_.set_updates;
      return SetResult{true, true};
    }
    // Class or subclass changed: drop the old copy, insert fresh below.
    RemoveItem(existing, /*to_ghost=*/false);
  }

  if (!ObtainSlot(cls, sub)) {
    ++stats_.set_failures;
    // Remember the refused key exactly like an eviction: a refused store is
    // an instant eviction. Re-misses then feed the subclass's incoming
    // value, letting value-gated policies (PAMA) grant it space once the
    // demand proves itself.
    GhostOf(cls, sub).Push(key, penalty);
    return SetResult{};
  }

  const ItemHandle h = AllocateItem();
  Item& item = items_[h];
  item = Item{};
  item.key = key;
  item.size = size;
  item.penalty = penalty;
  item.cls = cls;
  item.sub = sub;
  item.last_access = clock_;
  try {
    item.node = StackOf(cls, sub).PushTop(h);
  } catch (...) {
    // Treap node-pool growth failed: hand back the slot and the item so
    // slab accounting stays exact, then surface the failure.
    ReleaseItem(h);
    pool_.ReleaseSlot(cls, sub);
    throw;
  }
  try {
    index_.Upsert(key, h);
  } catch (...) {
    // Index rehash failed mid-insert: unwind the stack push too.
    StackOf(cls, sub).Erase(item.node);
    item.node = nullptr;
    ReleaseItem(h);
    pool_.ReleaseSlot(cls, sub);
    throw;
  }
  stats_.bytes_stored += size;
  // The key is cached again: its ghost entry (if any) is obsolete.
  GhostOf(cls, sub).Remove(key);
  policy_->OnInsert(item);
  return SetResult{true, existing != kInvalidHandle};
}

bool CacheEngine::Del(KeyId key) {
  policy_->OnTick(clock_);
  ++clock_;
  ++stats_.dels;
  const ItemHandle h = index_.Find(key);
  if (h == kInvalidHandle) return false;
  RemoveItem(h, /*to_ghost=*/false);
  return true;
}

bool CacheEngine::ObtainSlot(ClassId cls, SubclassId sub) {
  if (pool_.AcquireSlot(cls, sub)) return true;
  if (pool_.GrantFreeSlab(cls, sub)) {
    const bool ok = pool_.AcquireSlot(cls, sub);
    assert(ok);
    return ok;
  }
  // The policy must free a slot in (cls, sub) — possibly via slab
  // migration. A bounded number of retries guards against a policy that
  // frees space elsewhere: each MakeRoom call must make progress or give up.
  for (int attempt = 0; attempt < 4; ++attempt) {
    if (!policy_->MakeRoom(cls, sub)) return false;
    if (pool_.AcquireSlot(cls, sub)) return true;
    if (pool_.GrantFreeSlab(cls, sub) && pool_.AcquireSlot(cls, sub)) return true;
  }
  return false;
}

void CacheEngine::RemoveItem(ItemHandle h, bool to_ghost) {
  Item& item = items_[h];
  stats_.bytes_stored -= item.size;
  if (to_ghost) {
    ++stats_.evictions;
    GhostOf(item.cls, item.sub).Push(item.key, item.penalty);
  }
  policy_->OnEvict(item);
  StackOf(item.cls, item.sub).Erase(item.node);
  item.node = nullptr;
  index_.Erase(item.key);
  pool_.ReleaseSlot(item.cls, item.sub);
  ReleaseItem(h);
}

bool CacheEngine::EvictBottom(ClassId c, SubclassId s) {
  LruStack& stack = StackOf(c, s);
  LruStack::Node* bottom = stack.Bottom();
  if (bottom == nullptr) return false;
  RemoveItem(bottom->value, /*to_ghost=*/true);
  return true;
}

bool CacheEngine::EvictClassLru(ClassId c) {
  // The class-wide LRU item is the oldest of the subclass bottoms.
  LruStack::Node* victim = nullptr;
  SubclassId victim_sub = 0;
  AccessClock oldest = std::numeric_limits<AccessClock>::max();
  for (SubclassId s = 0; s < bands_.num_bands(); ++s) {
    LruStack::Node* bottom = StackOf(c, s).Bottom();
    if (bottom == nullptr) continue;
    const AccessClock age = items_[bottom->value].last_access;
    if (age < oldest) {
      oldest = age;
      victim = bottom;
      victim_sub = s;
    }
  }
  if (victim == nullptr) return false;
  (void)victim_sub;
  RemoveItem(victim->value, /*to_ghost=*/true);
  return true;
}

std::optional<std::size_t> CacheEngine::EvictionsToFreeSlab(ClassId c,
                                                            SubclassId s) const {
  if (pool_.SlabCount(c, s) == 0) return std::nullopt;
  const std::size_t needed = pool_.EvictionsNeededToFreeSlab(c, s);
  if (StackOf(c, s).size() < needed) return std::nullopt;
  return needed;
}

bool CacheEngine::MigrateSlab(ClassId from_c, SubclassId from_s, ClassId to_c,
                              SubclassId to_s) {
  const auto needed = EvictionsToFreeSlab(from_c, from_s);
  if (!needed) return false;
  for (std::size_t i = 0; i < *needed; ++i) {
    const bool evicted = EvictBottom(from_c, from_s);
    assert(evicted);
    (void)evicted;
  }
  assert(pool_.CanReleaseSlab(from_c, from_s));
  pool_.TransferSlab(from_c, from_s, to_c, to_s);
  ++stats_.slab_migrations;
  return true;
}

bool CacheEngine::MigrateSlabClassLru(ClassId from_c, ClassId to_c,
                                      SubclassId to_s) {
  if (pool_.ClassSlabCount(from_c) == 0) return false;
  // Evict class-wide LRU items until some subclass of from_c can release a
  // whole slab. Bounded by the class's item population.
  std::size_t budget = pool_.ClassSlotsInUse(from_c);
  for (;;) {
    for (SubclassId s = 0; s < bands_.num_bands(); ++s) {
      if (pool_.CanReleaseSlab(from_c, s)) {
        pool_.TransferSlab(from_c, s, to_c, to_s);
        ++stats_.slab_migrations;
        return true;
      }
    }
    if (budget == 0) return false;
    --budget;
    if (!EvictClassLru(from_c)) return false;
  }
}

std::optional<AccessClock> CacheEngine::OldestAccess(ClassId c) const {
  std::optional<AccessClock> oldest;
  for (SubclassId s = 0; s < bands_.num_bands(); ++s) {
    const LruStack::Node* bottom = StackOf(c, s).Bottom();
    if (bottom == nullptr) continue;
    const AccessClock age = items_[bottom->value].last_access;
    if (!oldest || age < *oldest) oldest = age;
  }
  return oldest;
}

}  // namespace pamakv
