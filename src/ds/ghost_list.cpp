#include "pamakv/ds/ghost_list.hpp"

#include <cassert>
#include <stdexcept>

namespace pamakv {

namespace {

std::size_t RoundUpPow2(std::size_t n) noexcept {
  std::size_t p = 8;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

GhostList::GhostList(std::size_t capacity)
    : entries_(capacity ? capacity : 1), live_counts_(capacity ? capacity : 1) {
  if (capacity == 0) {
    throw std::invalid_argument("GhostList: capacity must be > 0");
  }
  // At most `capacity` keys are ever live, so 2x slots keeps the load factor
  // at or below 0.5 forever — the table is allocated once and never grows.
  map_slots_.assign(RoundUpPow2(capacity * 2), MapSlot{});
  map_mask_ = map_slots_.size() - 1;
}

const GhostList::MapSlot* GhostList::MapFind(KeyId key) const noexcept {
  std::size_t pos = MapIdeal(key);
  for (;;) {
    const MapSlot& s = map_slots_[pos];
    if (s.seq == kNoSeq) return nullptr;
    if (s.key == key) return &s;
    pos = (pos + 1) & map_mask_;
  }
}

void GhostList::MapUpsert(KeyId key, std::uint64_t seq) noexcept {
  assert(map_size_ < map_slots_.size());
  std::size_t pos = MapIdeal(key);
  for (;;) {
    MapSlot& s = map_slots_[pos];
    if (s.seq == kNoSeq) {
      s = MapSlot{key, seq};
      ++map_size_;
      return;
    }
    if (s.key == key) {
      s.seq = seq;
      return;
    }
    pos = (pos + 1) & map_mask_;
  }
}

void GhostList::MapEraseSlot(MapSlot* slot) noexcept {
  // Backward-shift deletion (same algorithm as HashIndex::Erase): any
  // cluster entry whose ideal slot does not lie in the cyclic range
  // (hole, entry] would become unreachable through the hole, so it moves in.
  std::size_t hole = static_cast<std::size_t>(slot - map_slots_.data());
  map_slots_[hole] = MapSlot{};
  std::size_t probe = hole;
  for (;;) {
    probe = (probe + 1) & map_mask_;
    MapSlot& s = map_slots_[probe];
    if (s.seq == kNoSeq) break;
    const std::size_t ideal = MapIdeal(s.key);
    if (((probe - ideal) & map_mask_) >= ((probe - hole) & map_mask_)) {
      map_slots_[hole] = s;
      s = MapSlot{};
      hole = probe;
    }
  }
  --map_size_;
}

void GhostList::Expire(std::size_t slot) {
  Entry& e = entries_[slot];
  if (!e.live) return;
  e.live = false;
  live_counts_.Add(slot, -1);
  MapSlot* found = MapFind(e.key);
  // Only erase if the map still points at this entry (it may have been
  // superseded by a newer ghost entry for the same key).
  if (found != nullptr && found->seq == e.seq) MapEraseSlot(found);
}

void GhostList::Push(KeyId key, MicroSecs penalty) {
  // Drop a stale entry for the same key so ranks reflect the newest
  // eviction only.
  Remove(key);
  const std::uint64_t seq = next_seq_++;
  const std::size_t slot = SlotOf(seq);
  Expire(slot);
  entries_[slot] = Entry{key, penalty, seq, true};
  live_counts_.Add(slot, +1);
  MapUpsert(key, seq);
}

std::size_t GhostList::LiveNewerThan(std::uint64_t seq) const {
  // Live entries with sequence in (seq, next_seq_). Because at most
  // `capacity` consecutive sequences can be live, the slot range
  // [(seq+1) % C, (next_seq_-1) % C] never self-overlaps.
  if (next_seq_ == 0 || seq + 1 >= next_seq_) return 0;
  const std::size_t cap = entries_.size();
  const std::size_t lo = SlotOf(seq + 1);
  const std::size_t hi = SlotOf(next_seq_ - 1);  // inclusive
  std::int64_t count = 0;
  if (lo <= hi) {
    count = live_counts_.RangeSum(lo, hi + 1);
  } else {
    count = live_counts_.RangeSum(lo, cap) + live_counts_.RangeSum(0, hi + 1);
  }
  assert(count >= 0);
  return static_cast<std::size_t>(count);
}

std::optional<GhostList::Hit> GhostList::Lookup(KeyId key) const {
  const MapSlot* found = MapFind(key);
  if (found == nullptr) return std::nullopt;
  const Entry& e = entries_[SlotOf(found->seq)];
  assert(e.live && e.key == key);
  return Hit{e.penalty, LiveNewerThan(e.seq)};
}

bool GhostList::Remove(KeyId key) {
  MapSlot* found = MapFind(key);
  if (found == nullptr) return false;
  const std::size_t slot = SlotOf(found->seq);
  Entry& e = entries_[slot];
  assert(e.live && e.key == key);
  e.live = false;
  live_counts_.Add(slot, -1);
  MapEraseSlot(found);
  return true;
}

}  // namespace pamakv
