#include "pamakv/ds/ghost_list.hpp"

#include <cassert>
#include <stdexcept>

namespace pamakv {

GhostList::GhostList(std::size_t capacity)
    : entries_(capacity ? capacity : 1), live_counts_(capacity ? capacity : 1) {
  if (capacity == 0) {
    throw std::invalid_argument("GhostList: capacity must be > 0");
  }
}

void GhostList::Expire(std::size_t slot) {
  Entry& e = entries_[slot];
  if (!e.live) return;
  e.live = false;
  live_counts_.Add(slot, -1);
  const auto it = map_.find(e.key);
  // Only erase if the map still points at this entry (it may have been
  // superseded by a newer ghost entry for the same key).
  if (it != map_.end() && it->second == e.seq) map_.erase(it);
}

void GhostList::Push(KeyId key, MicroSecs penalty) {
  // Drop a stale entry for the same key so ranks reflect the newest
  // eviction only.
  Remove(key);
  const std::uint64_t seq = next_seq_++;
  const std::size_t slot = SlotOf(seq);
  Expire(slot);
  entries_[slot] = Entry{key, penalty, seq, true};
  live_counts_.Add(slot, +1);
  map_[key] = seq;
}

std::size_t GhostList::LiveNewerThan(std::uint64_t seq) const {
  // Live entries with sequence in (seq, next_seq_). Because at most
  // `capacity` consecutive sequences can be live, the slot range
  // [(seq+1) % C, (next_seq_-1) % C] never self-overlaps.
  if (next_seq_ == 0 || seq + 1 >= next_seq_) return 0;
  const std::size_t cap = entries_.size();
  const std::size_t lo = SlotOf(seq + 1);
  const std::size_t hi = SlotOf(next_seq_ - 1);  // inclusive
  std::int64_t count = 0;
  if (lo <= hi) {
    count = live_counts_.RangeSum(lo, hi + 1);
  } else {
    count = live_counts_.RangeSum(lo, cap) + live_counts_.RangeSum(0, hi + 1);
  }
  assert(count >= 0);
  return static_cast<std::size_t>(count);
}

std::optional<GhostList::Hit> GhostList::Lookup(KeyId key) const {
  const auto it = map_.find(key);
  if (it == map_.end()) return std::nullopt;
  const Entry& e = entries_[SlotOf(it->second)];
  assert(e.live && e.key == key);
  return Hit{e.penalty, LiveNewerThan(e.seq)};
}

bool GhostList::Remove(KeyId key) {
  const auto it = map_.find(key);
  if (it == map_.end()) return false;
  const std::size_t slot = SlotOf(it->second);
  Entry& e = entries_[slot];
  assert(e.live && e.key == key);
  e.live = false;
  live_counts_.Add(slot, -1);
  map_.erase(it);
  return true;
}

}  // namespace pamakv
