#include "pamakv/ds/lru_stack.hpp"

#include <cassert>

namespace pamakv {

LruStack::Node* LruStack::AllocateNode(ItemHandle value) {
  Node* node = nullptr;
  if (!free_nodes_.empty()) {
    node = free_nodes_.back();
    free_nodes_.pop_back();
  } else {
    pool_.emplace_back();
    node = &pool_.back();
  }
  *node = Node{};
  node->value = value;
  node->priority = rng_.NextU64();
  return node;
}

void LruStack::RecycleNode(Node* node) noexcept { free_nodes_.push_back(node); }

void LruStack::RotateUp(Node* n) noexcept {
  Node* p = n->parent;
  assert(p != nullptr);
  Node* g = p->parent;
  if (p->left == n) {
    // Right rotation: n rises, p becomes n's right child.
    p->left = n->right;
    if (n->right) n->right->parent = p;
    n->right = p;
  } else {
    // Left rotation.
    p->right = n->left;
    if (n->left) n->left->parent = p;
    n->left = p;
  }
  p->parent = n;
  n->parent = g;
  if (g) {
    (g->left == p ? g->left : g->right) = n;
  } else {
    root_ = n;
  }
  Update(p);
  Update(n);
}

void LruStack::LinkTop(Node* node) noexcept {
  node->left = node->right = node->parent = nullptr;
  node->subtree_size = 1;
  if (root_ == nullptr) {
    root_ = node;
    ++size_;
    return;
  }
  // Attach at the leftmost position (in-order front == MRU top).
  Node* cur = root_;
  while (cur->left) cur = cur->left;
  cur->left = node;
  node->parent = cur;
  // Path sizes grew by one.
  for (Node* p = cur; p; p = p->parent) ++p->subtree_size;
  // Restore the max-heap property on priorities.
  while (node->parent && node->priority > node->parent->priority) {
    RotateUp(node);
  }
  ++size_;
}

LruStack::Node* LruStack::PushTop(ItemHandle value) {
  Node* node = AllocateNode(value);
  LinkTop(node);
  return node;
}

void LruStack::Unlink(Node* node) noexcept {
  // Sink the node to a leaf by rotating up its higher-priority child.
  while (node->left || node->right) {
    Node* child = nullptr;
    if (!node->left) {
      child = node->right;
    } else if (!node->right) {
      child = node->left;
    } else {
      child = node->left->priority > node->right->priority ? node->left
                                                           : node->right;
    }
    RotateUp(child);
  }
  Node* p = node->parent;
  if (p) {
    (p->left == node ? p->left : p->right) = nullptr;
    for (Node* q = p; q; q = q->parent) --q->subtree_size;
  } else {
    root_ = nullptr;
  }
  node->parent = nullptr;
  --size_;
}

void LruStack::Erase(Node* node) noexcept {
  Unlink(node);
  RecycleNode(node);
}

void LruStack::MoveToTop(Node* node) noexcept {
  Unlink(node);
  node->priority = rng_.NextU64();
  LinkTop(node);
}

std::size_t LruStack::RankFromTop(const Node* node) const noexcept {
  std::size_t rank = SizeOf(node->left);
  for (const Node* cur = node; cur->parent; cur = cur->parent) {
    if (cur->parent->right == cur) {
      rank += SizeOf(cur->parent->left) + 1;
    }
  }
  return rank;
}

LruStack::Node* LruStack::KthFromBottom(std::size_t k) const noexcept {
  if (k >= size_) return nullptr;
  // k-th from bottom == (size-1-k)-th from top; select by in-order index.
  std::size_t idx = size_ - 1 - k;
  Node* cur = root_;
  for (;;) {
    const std::size_t left = SizeOf(cur->left);
    if (idx < left) {
      cur = cur->left;
    } else if (idx == left) {
      return cur;
    } else {
      idx -= left + 1;
      cur = cur->right;
    }
  }
}

LruStack::Node* LruStack::TowardTop(Node* node) noexcept {
  // In-order predecessor (position - 1).
  if (node->left) {
    Node* cur = node->left;
    while (cur->right) cur = cur->right;
    return cur;
  }
  Node* cur = node;
  while (cur->parent && cur->parent->left == cur) cur = cur->parent;
  return cur->parent;
}

bool LruStack::CheckSubtree(const Node* n, const Node* parent) const noexcept {
  if (n == nullptr) return true;
  if (n->parent != parent) return false;
  if (parent && n->priority > parent->priority) return false;
  if (n->subtree_size != 1 + SizeOf(n->left) + SizeOf(n->right)) return false;
  return CheckSubtree(n->left, n) && CheckSubtree(n->right, n);
}

bool LruStack::CheckInvariants() const noexcept {
  if (SizeOf(root_) != size_) return false;
  return CheckSubtree(root_, nullptr);
}

}  // namespace pamakv
