#include "pamakv/util/clock.hpp"

#include <utility>
#include <vector>

namespace pamakv::util {

SteadyClock& SteadyClock::Instance() {
  static SteadyClock instance;
  return instance;
}

std::int64_t SteadyClock::NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void FakeClock::Advance(std::chrono::nanoseconds d) {
  now_ns_.fetch_add(d.count(), std::memory_order_acq_rel);
  // Snapshot the hooks so one may unregister (or register) from inside
  // its own callback without deadlocking on mu_.
  std::vector<std::function<void()>> hooks;
  {
    std::lock_guard<std::mutex> lock(mu_);
    hooks.reserve(hooks_.size());
    for (auto& [token, hook] : hooks_) hooks.push_back(hook);
  }
  for (auto& hook : hooks) hook();
}

void FakeClock::RegisterWake(void* token, std::function<void()> hook) {
  std::lock_guard<std::mutex> lock(mu_);
  hooks_[token] = std::move(hook);
}

void FakeClock::UnregisterWake(void* token) {
  std::lock_guard<std::mutex> lock(mu_);
  hooks_.erase(token);
}

}  // namespace pamakv::util
