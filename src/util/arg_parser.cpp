#include "pamakv/util/arg_parser.hpp"

#include <cstdlib>
#include <stdexcept>

namespace pamakv {

ArgParser::ArgParser(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      flags_[arg.substr(0, eq)] = arg.substr(eq + 1);
      continue;
    }
    // --name value form when the next token is not itself a flag;
    // otherwise a boolean switch.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[arg] = argv[++i];
    } else {
      flags_[arg] = "true";
    }
  }
}

std::optional<std::string> ArgParser::Find(const std::string& name) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return std::nullopt;
  return it->second;
}

bool ArgParser::Has(const std::string& name) const {
  return flags_.count(name) > 0;
}

std::string ArgParser::GetString(const std::string& name,
                                 const std::string& fallback) const {
  return Find(name).value_or(fallback);
}

std::int64_t ArgParser::GetInt(const std::string& name,
                               std::int64_t fallback) const {
  const auto v = Find(name);
  if (!v) return fallback;
  return std::stoll(*v);
}

double ArgParser::GetDouble(const std::string& name, double fallback) const {
  const auto v = Find(name);
  if (!v) return fallback;
  return std::stod(*v);
}

bool ArgParser::GetBool(const std::string& name, bool fallback) const {
  const auto v = Find(name);
  if (!v) return fallback;
  return *v == "true" || *v == "1" || *v == "yes" || *v == "on";
}

double BenchScaleFromEnv(double fallback) {
  const char* env = std::getenv("PAMA_BENCH_SCALE");
  if (env == nullptr) return fallback;
  char* end = nullptr;
  const double v = std::strtod(env, &end);
  if (end == env || v < 0.05) return fallback;
  return v;
}

}  // namespace pamakv
