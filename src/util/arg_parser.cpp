#include "pamakv/util/arg_parser.hpp"

#include <algorithm>
#include <charconv>
#include <cstdlib>
#include <ostream>
#include <stdexcept>

namespace pamakv {

namespace {

[[noreturn]] void BadValue(const std::string& name, const std::string& value,
                           const char* expected) {
  throw std::runtime_error("--" + name + "=" + value + ": expected " +
                           expected);
}

}  // namespace

ArgParser::ArgParser(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      flags_[arg.substr(0, eq)] = arg.substr(eq + 1);
      continue;
    }
    // --name value form when the next token is not itself a flag;
    // otherwise a boolean switch.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[arg] = argv[++i];
    } else {
      flags_[arg] = "true";
    }
  }
}

std::optional<std::string> ArgParser::Find(const std::string& name) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return std::nullopt;
  return it->second;
}

bool ArgParser::Has(const std::string& name) const {
  return flags_.count(name) > 0;
}

std::string ArgParser::GetString(const std::string& name,
                                 const std::string& fallback) const {
  return Find(name).value_or(fallback);
}

std::int64_t ArgParser::GetInt(const std::string& name,
                               std::int64_t fallback) const {
  const auto v = Find(name);
  if (!v) return fallback;
  std::int64_t out = 0;
  const char* first = v->data();
  const char* last = first + v->size();
  if (first != last && *first == '+') ++first;  // from_chars rejects '+'
  const auto [ptr, ec] = std::from_chars(first, last, out);
  // Partial consumption means trailing junk (the old std::stoll silently
  // truncated "80x0" to 80); an empty/invalid value must not silently
  // become the fallback either.
  if (ec != std::errc{} || ptr != last || first == last) {
    BadValue(name, *v, "an integer");
  }
  return out;
}

double ArgParser::GetDouble(const std::string& name, double fallback) const {
  const auto v = Find(name);
  if (!v) return fallback;
  const char* begin = v->c_str();
  char* end = nullptr;
  const double out = std::strtod(begin, &end);
  if (v->empty() || end != begin + v->size()) {
    BadValue(name, *v, "a number");
  }
  return out;
}

bool ArgParser::GetBool(const std::string& name, bool fallback) const {
  const auto v = Find(name);
  if (!v) return fallback;
  return *v == "true" || *v == "1" || *v == "yes" || *v == "on";
}

ArgParser& ArgParser::Describe(std::string flag, std::string help) {
  help_.emplace_back(std::move(flag), std::move(help));
  return *this;
}

void ArgParser::PrintHelp(std::ostream& out, const std::string& program,
                          const std::string& summary) const {
  out << program << " — " << summary << "\n\nusage: " << program
      << " [--flag=value ...]\n\nflags:\n";
  std::size_t width = 4;  // room for "help"
  for (const auto& [flag, _] : help_) width = std::max(width, flag.size());
  for (const auto& [flag, text] : help_) {
    out << "  --" << flag << std::string(width - flag.size() + 2, ' ') << text
        << "\n";
  }
  out << "  --help" << std::string(width - 4 + 2, ' ')
      << "print this message and exit\n";
}

double BenchScaleFromEnv(double fallback) {
  const char* env = std::getenv("PAMA_BENCH_SCALE");
  if (env == nullptr) return fallback;
  char* end = nullptr;
  const double v = std::strtod(env, &end);
  if (end == env || v < 0.05) return fallback;
  return v;
}

}  // namespace pamakv
