#include "pamakv/util/histogram.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace pamakv {

void RunningStats::Add(double x) noexcept {
  ++count_;
  sum_ += x;
  if (count_ == 1) {
    mean_ = x;
    min_ = x;
    max_ = x;
    m2_ = 0.0;
    return;
  }
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStats::variance() const noexcept {
  return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

LogHistogram::LogHistogram(double min_value, double max_value,
                           std::size_t buckets) {
  if (min_value <= 0.0 || max_value <= min_value || buckets == 0) {
    throw std::invalid_argument("LogHistogram: need 0 < min < max, buckets > 0");
  }
  log_min_ = std::log(min_value);
  log_max_ = std::log(max_value);
  counts_.assign(buckets, 0);
}

std::size_t LogHistogram::BucketIndex(double value) const noexcept {
  if (value <= 0.0) return 0;
  const double frac = (std::log(value) - log_min_) / (log_max_ - log_min_);
  const auto idx = static_cast<std::int64_t>(frac * static_cast<double>(counts_.size()));
  return static_cast<std::size_t>(
      std::clamp<std::int64_t>(idx, 0, static_cast<std::int64_t>(counts_.size()) - 1));
}

void LogHistogram::Add(double value, std::uint64_t weight) noexcept {
  counts_[BucketIndex(value)] += weight;
  total_ += weight;
}

double LogHistogram::BucketLow(std::size_t i) const {
  const double step = (log_max_ - log_min_) / static_cast<double>(counts_.size());
  return std::exp(log_min_ + step * static_cast<double>(i));
}

double LogHistogram::BucketHigh(std::size_t i) const {
  const double step = (log_max_ - log_min_) / static_cast<double>(counts_.size());
  return std::exp(log_min_ + step * static_cast<double>(i + 1));
}

double LogHistogram::BucketMid(std::size_t i) const {
  return std::sqrt(BucketLow(i) * BucketHigh(i));
}

double LogHistogram::Quantile(double q) const {
  if (total_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank is 1-based like an index into the sorted sample vector: with
  // `target = q * total` truncated, q up to 1/total gave target 0 and the
  // scan stopped on bucket 0 even when it was empty — every low quantile
  // of a high-valued distribution misreported the histogram minimum.
  const auto target = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(total_))));
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cum += counts_[i];
    if (cum >= target) return BucketMid(i);
  }
  return BucketMid(counts_.size() - 1);
}

void LogHistogram::Merge(const LogHistogram& other) {
  if (other.total_ == 0) return;
  if (other.log_min_ == log_min_ && other.log_max_ == log_max_ &&
      other.counts_.size() == counts_.size()) {
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      counts_[i] += other.counts_[i];
    }
    total_ += other.total_;
    return;
  }
  // Different layout: a positional bucket copy would shift every count to
  // the wrong value range (a 32-bucket p999 read against 64-bucket edges
  // lands decades off). Re-bin by each source bucket's representative
  // value instead; Add() clamps into our edge buckets as usual.
  for (std::size_t i = 0; i < other.counts_.size(); ++i) {
    if (other.counts_[i] != 0) Add(other.BucketMid(i), other.counts_[i]);
  }
}

void LogHistogram::Reset() noexcept {
  std::fill(counts_.begin(), counts_.end(), 0);
  total_ = 0;
}

double ExactQuantile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto idx = static_cast<std::size_t>(q * static_cast<double>(values.size() - 1));
  std::nth_element(values.begin(), values.begin() + static_cast<std::ptrdiff_t>(idx),
                   values.end());
  return values[idx];
}

}  // namespace pamakv
