#include "pamakv/util/csv.hpp"

#include <cmath>
#include <cstdio>

namespace pamakv {

std::string CsvWriter::ToField(double v) {
  if (std::isnan(v)) return "nan";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string CsvWriter::Escape(const std::string& field, char sep) {
  const bool needs_quotes =
      field.find(sep) != std::string::npos ||
      field.find('"') != std::string::npos ||
      field.find('\n') != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::WriteRowStrings(const std::vector<std::string>& row) {
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (i) *out_ << sep_;
    *out_ << Escape(row[i], sep_);
  }
  *out_ << '\n';
}

}  // namespace pamakv
