#include "pamakv/util/failpoint.hpp"

#if PAMAKV_FAILPOINTS

#include <cerrno>
#include <cstdlib>
#include <algorithm>
#include <map>
#include <memory>

namespace pamakv::util {

namespace {

struct NamedErrno {
  std::string_view name;
  int value;
};

/// The errnos the net/ and cache paths can plausibly meet. Extend as new
/// wrappers grow failpoints; Parse rejects anything not listed so a typo
/// in a test spec fails loudly instead of injecting errno 0.
constexpr NamedErrno kErrnos[] = {
    {"EAGAIN", EAGAIN},     {"ECONNABORTED", ECONNABORTED},
    {"ECONNRESET", ECONNRESET}, {"EINTR", EINTR},
    {"EIO", EIO},           {"EMFILE", EMFILE},
    {"ENFILE", ENFILE},     {"ENOBUFS", ENOBUFS},
    {"ENOMEM", ENOMEM},     {"EPIPE", EPIPE},
};

int LookupErrno(std::string_view name) {
  for (const NamedErrno& e : kErrnos) {
    if (e.name == name) return e.value;
  }
  return 0;
}

bool ParseU64(std::string_view text, std::uint64_t* out) {
  if (text.empty()) return false;
  std::uint64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  *out = value;
  return true;
}

bool ParseProbability(std::string_view text, double* out) {
  // Accepts 0, 1, 0.25, .5 — enough for spec strings, no locale traps.
  if (text.empty()) return false;
  double value = 0.0;
  std::size_t i = 0;
  for (; i < text.size() && text[i] != '.'; ++i) {
    if (text[i] < '0' || text[i] > '9') return false;
    value = value * 10.0 + (text[i] - '0');
  }
  if (i < text.size()) {
    double scale = 0.1;
    for (++i; i < text.size(); ++i) {
      if (text[i] < '0' || text[i] > '9') return false;
      value += (text[i] - '0') * scale;
      scale *= 0.1;
    }
  }
  if (value < 0.0 || value > 1.0) return false;
  *out = value;
  return true;
}

/// Parses the optional `when` clause into spec's trigger fields.
bool ParseWhen(std::string_view when, FailPointSpec* spec) {
  if (when == "once") {
    spec->trigger = FailPointSpec::Trigger::kTimes;
    spec->times = 1;
    return true;
  }
  if (!when.empty() && when[0] == 'x') {
    if (!ParseU64(when.substr(1), &spec->times) || spec->times == 0) {
      return false;
    }
    spec->trigger = FailPointSpec::Trigger::kTimes;
    return true;
  }
  if (when.rfind("nth:", 0) == 0) {
    if (!ParseU64(when.substr(4), &spec->period) || spec->period == 0) {
      return false;
    }
    spec->trigger = FailPointSpec::Trigger::kEveryNth;
    return true;
  }
  if (when.rfind("p:", 0) == 0) {
    std::string_view rest = when.substr(2);
    const std::size_t colon = rest.find(':');
    if (colon != std::string_view::npos) {
      if (!ParseU64(rest.substr(colon + 1), &spec->seed)) return false;
      rest = rest.substr(0, colon);
    }
    if (!ParseProbability(rest, &spec->probability)) return false;
    spec->trigger = FailPointSpec::Trigger::kProbability;
    return true;
  }
  return false;
}

}  // namespace

std::optional<FailPointSpec> FailPointSpec::Parse(std::string_view text) {
  FailPointSpec spec;
  std::string_view what = text;
  const std::size_t at = text.find('@');
  if (at != std::string_view::npos) {
    what = text.substr(0, at);
    if (!ParseWhen(text.substr(at + 1), &spec)) return std::nullopt;
  }
  if (what == "oom") {
    spec.action = Action::kBadAlloc;
    return spec;
  }
  if (what.rfind("short:", 0) == 0) {
    if (!ParseU64(what.substr(6), &spec.cap) || spec.cap == 0) {
      return std::nullopt;
    }
    spec.action = Action::kShortIo;
    return spec;
  }
  spec.err = LookupErrno(what);
  if (spec.err == 0) return std::nullopt;
  spec.action = Action::kErrno;
  return spec;
}

std::optional<FailPointHit> FailPoint::Evaluate() {
  if (!armed_.load(std::memory_order_acquire)) return std::nullopt;
  std::lock_guard<std::mutex> lock(mu_);
  if (!armed_.load(std::memory_order_relaxed)) return std::nullopt;
  ++calls_;
  bool fire = false;
  bool exhausted = false;
  switch (spec_.trigger) {
    case FailPointSpec::Trigger::kAlways:
      fire = true;
      break;
    case FailPointSpec::Trigger::kTimes:
      fire = fired_ < spec_.times;
      exhausted = fired_ + 1 >= spec_.times;
      break;
    case FailPointSpec::Trigger::kEveryNth:
      fire = calls_ % spec_.period == 0;
      break;
    case FailPointSpec::Trigger::kProbability:
      fire = rng_.NextDouble() < spec_.probability;
      break;
  }
  if (!fire) return std::nullopt;
  ++fired_;
  trips_.fetch_add(1, std::memory_order_relaxed);
  if (exhausted) armed_.store(false, std::memory_order_release);
  return FailPointHit{spec_.action, spec_.err, spec_.cap};
}

void FailPoint::Arm(const FailPointSpec& spec) {
  std::lock_guard<std::mutex> lock(mu_);
  spec_ = spec;
  rng_ = Rng(spec.seed);
  fired_ = 0;
  calls_ = 0;
  armed_.store(true, std::memory_order_release);
}

void FailPoint::Disarm() {
  std::lock_guard<std::mutex> lock(mu_);
  armed_.store(false, std::memory_order_release);
}

namespace {

struct Registry {
  std::mutex mu;
  // std::map: stable addresses are provided by unique_ptr; ordered
  // iteration gives TripCounts deterministic output for free.
  std::map<std::string, std::unique_ptr<FailPoint>, std::less<>> points;

  static Registry& Instance() {
    static Registry* instance = new Registry;  // never destroyed: sites
    return *instance;                          // hold references forever
  }
};

}  // namespace

FailPoint& FailPoints::Get(std::string_view name) {
  Registry& reg = Registry::Instance();
  std::lock_guard<std::mutex> lock(reg.mu);
  const auto it = reg.points.find(name);
  if (it != reg.points.end()) return *it->second;
  auto point = std::make_unique<FailPoint>(std::string(name));
  FailPoint& ref = *point;
  reg.points.emplace(std::string(name), std::move(point));
  return ref;
}

bool FailPoints::Arm(std::string_view name, std::string_view spec_text) {
  const auto spec = FailPointSpec::Parse(spec_text);
  if (!spec) return false;
  Get(name).Arm(*spec);
  return true;
}

void FailPoints::Arm(std::string_view name, const FailPointSpec& spec) {
  Get(name).Arm(spec);
}

void FailPoints::DisableAll() {
  Registry& reg = Registry::Instance();
  std::lock_guard<std::mutex> lock(reg.mu);
  for (auto& [name, point] : reg.points) point->Disarm();
}

std::size_t FailPoints::ConfigureFromEnv(const char* var) {
  const char* raw = std::getenv(var);
  if (raw == nullptr) return 0;
  std::size_t armed = 0;
  std::string_view text(raw);
  while (!text.empty()) {
    const std::size_t semi = text.find(';');
    const std::string_view pair =
        semi == std::string_view::npos ? text : text.substr(0, semi);
    text = semi == std::string_view::npos ? std::string_view{}
                                          : text.substr(semi + 1);
    const std::size_t eq = pair.find('=');
    if (eq == std::string_view::npos || eq == 0) continue;
    if (Arm(pair.substr(0, eq), pair.substr(eq + 1))) ++armed;
  }
  return armed;
}

std::vector<std::pair<std::string, std::uint64_t>> FailPoints::TripCounts() {
  Registry& reg = Registry::Instance();
  std::lock_guard<std::mutex> lock(reg.mu);
  std::vector<std::pair<std::string, std::uint64_t>> counts;
  for (const auto& [name, point] : reg.points) {
    const std::uint64_t trips = point->trips();
    if (trips > 0) counts.emplace_back(name, trips);
  }
  return counts;
}

std::uint64_t FailPoints::Trips(std::string_view name) {
  Registry& reg = Registry::Instance();
  std::lock_guard<std::mutex> lock(reg.mu);
  const auto it = reg.points.find(name);
  return it != reg.points.end() ? it->second->trips() : 0;
}

}  // namespace pamakv::util

#endif  // PAMAKV_FAILPOINTS
