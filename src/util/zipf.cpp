#include "pamakv/util/zipf.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace pamakv {

namespace {

// Hörmann & Derflinger helper: integral of x^-alpha, generalized so that
// alpha == 1 degenerates to log.
double HIntegral(double x, double alpha) {
  const double log_x = std::log(x);
  if (std::abs(alpha - 1.0) < 1e-12) return log_x;
  return std::expm1((1.0 - alpha) * log_x) / (1.0 - alpha);
}

double HIntegralInverse(double x, double alpha) {
  if (std::abs(alpha - 1.0) < 1e-12) return std::exp(x);
  double t = x * (1.0 - alpha);
  // Guard against rounding pushing t below -1 (which would leave the domain).
  t = std::max(t, -1.0 + 1e-15);
  return std::exp(std::log1p(t) / (1.0 - alpha));
}

}  // namespace

ZipfSampler::ZipfSampler(std::uint64_t n, double alpha) : n_(n), alpha_(alpha) {
  if (n == 0) throw std::invalid_argument("ZipfSampler: n must be > 0");
  if (alpha <= 0.0) throw std::invalid_argument("ZipfSampler: alpha must be > 0");
  h_x1_ = HIntegral(1.5, alpha) - 1.0;
  h_n_ = HIntegral(static_cast<double>(n) + 0.5, alpha);
  s_ = 2.0 - HIntegralInverse(HIntegral(2.5, alpha) - std::pow(2.0, -alpha), alpha);
}

double ZipfSampler::H(double x) const { return HIntegral(x, alpha_); }
double ZipfSampler::HInverse(double x) const { return HIntegralInverse(x, alpha_); }

std::uint64_t ZipfSampler::Sample(Rng& rng) const {
  // Rejection-inversion over the continuous majorizing density.
  for (;;) {
    const double u = h_n_ + rng.NextDouble() * (h_x1_ - h_n_);
    const double x = HInverse(u);
    std::uint64_t k = static_cast<std::uint64_t>(x + 0.5);
    k = std::clamp<std::uint64_t>(k, 1, n_);
    const double kd = static_cast<double>(k);
    if (kd - x <= s_ || u >= H(kd + 0.5) - std::pow(kd, -alpha_)) {
      return k - 1;  // 0-based rank
    }
  }
}

double LognormalSampler::Sample(Rng& rng) const {
  const double draw = std::exp(mu_ + sigma_ * rng.NextGaussian());
  return std::clamp(draw, min_, max_);
}

DiscreteSampler::DiscreteSampler(std::vector<double> weights) {
  if (weights.empty()) {
    throw std::invalid_argument("DiscreteSampler: empty weight vector");
  }
  cumulative_.resize(weights.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    if (weights[i] < 0.0) {
      throw std::invalid_argument("DiscreteSampler: negative weight");
    }
    sum += weights[i];
    cumulative_[i] = sum;
  }
  if (sum <= 0.0) {
    throw std::invalid_argument("DiscreteSampler: weights sum to zero");
  }
  for (auto& c : cumulative_) c /= sum;
  cumulative_.back() = 1.0;  // close any rounding gap
}

std::size_t DiscreteSampler::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  const auto it = std::lower_bound(cumulative_.begin(), cumulative_.end(), u);
  return static_cast<std::size_t>(it - cumulative_.begin());
}

}  // namespace pamakv
