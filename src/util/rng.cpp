#include "pamakv/util/rng.hpp"

#include <cmath>

namespace pamakv {

std::uint64_t Rng::NextBounded(std::uint64_t bound) noexcept {
  // Lemire's nearly-divisionless bounded sampling.
  std::uint64_t x = NextU64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = NextU64();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::NextGaussian() noexcept {
  if (has_spare_) {
    has_spare_ = false;
    return spare_gaussian_;
  }
  double u = 0.0;
  double v = 0.0;
  double s = 0.0;
  do {
    u = 2.0 * NextDouble() - 1.0;
    v = 2.0 * NextDouble() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_gaussian_ = v * factor;
  has_spare_ = true;
  return u * factor;
}

}  // namespace pamakv
