#include "pamakv/util/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <string_view>
#include <thread>
#include <utility>

namespace pamakv::util {

namespace {

/// Formats a double the way Prometheus expects: plain decimal, enough
/// precision to round-trip counters exactly (they are integral doubles),
/// no trailing-zero noise for latencies.
void AppendNumber(std::string& out, double v) {
  if (v == static_cast<double>(static_cast<std::int64_t>(v)) &&
      std::abs(v) < 9.0e15) {
    char buf[24];
    std::snprintf(buf, sizeof buf, "%lld",
                  static_cast<long long>(static_cast<std::int64_t>(v)));
    out += buf;
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  out += buf;
}

void AppendU64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  out += buf;
}

const char* KindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "untyped";
}

}  // namespace

std::size_t Counter::StripeIndex() noexcept {
  // One stable stripe per thread; hashing the thread id spreads loop
  // threads across stripes without any registration handshake.
  static thread_local const std::size_t stripe =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) %
      kCounterStripes;
  return stripe;
}

Histogram::Histogram(double min_value, double max_value, std::size_t buckets) {
  if (min_value <= 0.0 || max_value <= min_value || buckets == 0) {
    throw std::invalid_argument(
        "metrics::Histogram: need 0 < min < max, buckets > 0");
  }
  log_min_ = std::log(min_value);
  log_max_ = std::log(max_value);
  counts_storage_ = std::make_unique<std::atomic<std::uint64_t>[]>(buckets);
  counts_.data_ = counts_storage_.get();
  counts_.size_ = buckets;
  for (std::size_t i = 0; i < buckets; ++i) counts_[i].store(0);
}

std::size_t Histogram::BucketIndex(double value) const noexcept {
  // Same clamp-into-edge-buckets convention as LogHistogram::BucketIndex.
  if (value <= 0.0) return 0;
  const double frac = (std::log(value) - log_min_) / (log_max_ - log_min_);
  const auto idx =
      static_cast<std::int64_t>(frac * static_cast<double>(counts_.size()));
  return static_cast<std::size_t>(std::clamp<std::int64_t>(
      idx, 0, static_cast<std::int64_t>(counts_.size()) - 1));
}

double Histogram::BucketHigh(std::size_t i) const {
  const double step = (log_max_ - log_min_) / static_cast<double>(counts_.size());
  return std::exp(log_min_ + step * static_cast<double>(i + 1));
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.bounds.reserve(counts_.size());
  snap.counts.reserve(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    snap.bounds.push_back(BucketHigh(i));
    snap.counts.push_back(counts_[i].load(std::memory_order_relaxed));
  }
  // Count/sum race benignly against concurrent Observe()s; recompute the
  // total from the bucket loads so count == Σ buckets always holds inside
  // one snapshot (exposition consumers check exactly that).
  snap.total = 0;
  for (const auto c : snap.counts) snap.total += c;
  snap.sum = static_cast<double>(sum_fp_.load(std::memory_order_relaxed)) / 1e6;
  return snap;
}

double HistogramSnapshot::Quantile(double q) const {
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(q * static_cast<double>(total))));
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    cum += counts[i];
    if (cum >= target) {
      // Geometric midpoint of bucket i (bounds[i-1], bounds[i]].
      const double low = i == 0 ? bounds[0] / (bounds.size() > 1
                                                   ? bounds[1] / bounds[0]
                                                   : 2.0)
                                : bounds[i - 1];
      return std::sqrt(low * bounds[i]);
    }
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

void HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  if (other.total == 0 && other.sum == 0.0) return;
  if (bounds.empty()) {
    *this = other;
    return;
  }
  if (bounds == other.bounds) {
    for (std::size_t i = 0; i < counts.size(); ++i) counts[i] += other.counts[i];
  } else {
    // Mismatched layouts: re-bin each foreign bucket at its midpoint.
    for (std::size_t i = 0; i < other.counts.size(); ++i) {
      if (other.counts[i] == 0) continue;
      const double low = i == 0 ? other.bounds[0] / 2.0 : other.bounds[i - 1];
      const double mid = std::sqrt(low * other.bounds[i]);
      const auto it = std::lower_bound(bounds.begin(), bounds.end(), mid);
      const std::size_t idx =
          it == bounds.end() ? bounds.size() - 1
                             : static_cast<std::size_t>(it - bounds.begin());
      counts[idx] += other.counts[i];
    }
  }
  total += other.total;
  sum += other.sum;
}

MetricsRegistry::Entry* MetricsRegistry::Find(const std::string& name,
                                              const std::string& labels,
                                              MetricKind kind) {
  for (auto& e : entries_) {
    if (e->name == name && e->labels == labels) {
      if (e->kind != kind) {
        throw std::logic_error("metric '" + name +
                               "' re-registered with a different kind");
      }
      return e.get();
    }
  }
  return nullptr;
}

Counter& MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& labels,
                                     const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Entry* e = Find(name, labels, MetricKind::kCounter)) return *e->counter;
  auto e = std::make_unique<Entry>();
  e->name = name;
  e->labels = labels;
  e->help = help;
  e->kind = MetricKind::kCounter;
  e->counter = std::make_unique<Counter>();
  Counter& ref = *e->counter;
  entries_.push_back(std::move(e));
  return ref;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& labels,
                                 const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Entry* e = Find(name, labels, MetricKind::kGauge)) return *e->gauge;
  auto e = std::make_unique<Entry>();
  e->name = name;
  e->labels = labels;
  e->help = help;
  e->kind = MetricKind::kGauge;
  e->gauge = std::make_unique<Gauge>();
  Gauge& ref = *e->gauge;
  entries_.push_back(std::move(e));
  return ref;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         double min_value, double max_value,
                                         std::size_t buckets,
                                         const std::string& labels,
                                         const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Entry* e = Find(name, labels, MetricKind::kHistogram)) {
    return *e->histogram;
  }
  auto e = std::make_unique<Entry>();
  e->name = name;
  e->labels = labels;
  e->help = help;
  e->kind = MetricKind::kHistogram;
  e->histogram = std::make_unique<Histogram>(min_value, max_value, buckets);
  Histogram& ref = *e->histogram;
  entries_.push_back(std::move(e));
  return ref;
}

void MetricsRegistry::RegisterCallbackGauge(const std::string& name,
                                            const std::string& labels,
                                            std::function<double()> fn,
                                            const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Entry* e = Find(name, labels, MetricKind::kGauge)) {
    e->callback = std::move(fn);  // re-wiring after a server restart
    return;
  }
  auto e = std::make_unique<Entry>();
  e->name = name;
  e->labels = labels;
  e->help = help;
  e->kind = MetricKind::kGauge;
  e->callback = std::move(fn);
  entries_.push_back(std::move(e));
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  snap.samples.reserve(entries_.size());
  for (const auto& e : entries_) {
    MetricSample s;
    s.name = e->name;
    s.labels = e->labels;
    s.kind = e->kind;
    switch (e->kind) {
      case MetricKind::kCounter:
        s.value = static_cast<double>(e->counter->Value());
        break;
      case MetricKind::kGauge:
        s.value = e->callback ? e->callback()
                              : static_cast<double>(e->gauge->Value());
        break;
      case MetricKind::kHistogram:
        s.histogram = e->histogram->Snapshot();
        break;
    }
    snap.samples.push_back(std::move(s));
  }
  return snap;
}

std::string MetricsSnapshot::RenderPrometheus() const {
  std::string out;
  out.reserve(4096);
  // The exposition format allows one # TYPE line per family, with all of
  // the family's series grouped under it — but registration order
  // interleaves families (e.g. the three per-(class, band) gauges cycle).
  // Render family-by-family in first-appearance order, series within a
  // family in registration order. Families number in the dozens, so the
  // linear name scan is cheaper than sorting the sample list.
  std::vector<std::pair<std::string_view, std::vector<std::size_t>>> families;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const std::string& name = samples[i].name;
    auto it = std::find_if(
        families.begin(), families.end(),
        [&name](const auto& f) { return f.first == name; });
    if (it == families.end()) {
      families.emplace_back(name, std::vector<std::size_t>{});
      it = std::prev(families.end());
    }
    it->second.push_back(i);
  }
  std::vector<std::size_t> order;
  order.reserve(samples.size());
  for (const auto& fam : families) {
    order.insert(order.end(), fam.second.begin(), fam.second.end());
  }
  std::string last_family;
  for (const std::size_t idx : order) {
    const MetricSample& s = samples[idx];
    if (s.name != last_family) {
      out += "# TYPE ";
      out += s.name;
      out += ' ';
      out += KindName(s.kind);
      out += '\n';
      last_family = s.name;
    }
    if (s.kind == MetricKind::kHistogram) {
      // Classic Prometheus histogram: cumulative buckets + the +Inf
      // catch-all, then _sum and _count.
      std::uint64_t cum = 0;
      for (std::size_t i = 0; i < s.histogram.counts.size(); ++i) {
        cum += s.histogram.counts[i];
        out += s.name;
        out += "_bucket{";
        if (!s.labels.empty()) {
          // s.labels is "{a=\"b\"}"; splice its interior before le=.
          out.append(s.labels, 1, s.labels.size() - 2);
          out += ',';
        }
        out += "le=\"";
        AppendNumber(out, s.histogram.bounds[i]);
        out += "\"} ";
        AppendU64(out, cum);
        out += '\n';
      }
      out += s.name;
      out += "_bucket{";
      if (!s.labels.empty()) {
        out.append(s.labels, 1, s.labels.size() - 2);
        out += ',';
      }
      out += "le=\"+Inf\"} ";
      AppendU64(out, s.histogram.total);
      out += '\n';
      out += s.name;
      out += "_sum";
      out += s.labels;
      out += ' ';
      AppendNumber(out, s.histogram.sum);
      out += '\n';
      out += s.name;
      out += "_count";
      out += s.labels;
      out += ' ';
      AppendU64(out, s.histogram.total);
      out += '\n';
    } else {
      out += s.name;
      out += s.labels;
      out += ' ';
      AppendNumber(out, s.value);
      out += '\n';
    }
  }
  return out;
}

void MetricsSnapshot::AppendCsv(std::string& out, std::int64_t elapsed_ms) const {
  const auto row = [&](const std::string& name, const std::string& labels,
                       double v) {
    char head[32];
    std::snprintf(head, sizeof head, "%lld,",
                  static_cast<long long>(elapsed_ms));
    out += head;
    out += name;
    out += labels;
    out += ',';
    AppendNumber(out, v);
    out += '\n';
  };
  for (const MetricSample& s : samples) {
    if (s.kind == MetricKind::kHistogram) {
      row(s.name + "_count", s.labels, static_cast<double>(s.histogram.total));
      row(s.name + "_sum", s.labels, s.histogram.sum);
      row(s.name + "_p50", s.labels, s.histogram.Quantile(0.50));
      row(s.name + "_p99", s.labels, s.histogram.Quantile(0.99));
      row(s.name + "_p999", s.labels, s.histogram.Quantile(0.999));
    } else {
      row(s.name, s.labels, s.value);
    }
  }
}

void MetricsSnapshot::AppendStatLines(std::vector<char>& out) const {
  std::string line;
  const auto row = [&](const std::string& name, const std::string& labels,
                       double v) {
    line.assign("STAT ");
    line += name;
    line += labels;
    line += ' ';
    AppendNumber(line, v);
    line += "\r\n";
    out.insert(out.end(), line.begin(), line.end());
  };
  for (const MetricSample& s : samples) {
    if (s.kind == MetricKind::kHistogram) {
      row(s.name + "_count", s.labels, static_cast<double>(s.histogram.total));
      row(s.name + "_sum", s.labels, s.histogram.sum);
      row(s.name + "_p50", s.labels, s.histogram.Quantile(0.50));
      row(s.name + "_p99", s.labels, s.histogram.Quantile(0.99));
      row(s.name + "_p999", s.labels, s.histogram.Quantile(0.999));
    } else {
      row(s.name, s.labels, s.value);
    }
  }
}

}  // namespace pamakv::util
