#include "pamakv/util/thread_pool.hpp"

#include <algorithm>

namespace pamakv {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Shutdown() {
  {
    const std::lock_guard lock(mutex_);
    if (stop_) return;
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
  workers_.clear();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ParallelFor(ThreadPool& pool, std::size_t n,
                 const std::function<void(std::size_t)>& fn) {
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    futures.push_back(pool.Submit([&fn, i] { fn(i); }));
  }
  // Wait for every task before letting any exception unwind: tasks capture
  // `fn` by reference, so re-throwing while later tasks still run would
  // leave them touching a dead function object.
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace pamakv
