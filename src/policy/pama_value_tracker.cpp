#include "pamakv/policy/pama_value_tracker.hpp"

#include <algorithm>
#include <cassert>

namespace pamakv {

PamaValueTracker::PamaValueTracker(const PamaConfig& config,
                                   const CacheEngine& engine)
    : config_(config),
      segments_(config.reference_segments + 1),
      num_subclasses_(engine.num_subclasses()) {
  const std::uint32_t num_classes = engine.classes().num_classes();
  state_.resize(static_cast<std::size_t>(num_classes) * num_subclasses_);
  for (ClassId c = 0; c < num_classes; ++c) {
    const std::size_t spp = engine.classes().SlotsPerSlab(c);
    for (SubclassId s = 0; s < num_subclasses_; ++s) {
      SubclassState& st = state_[Index(c, s)];
      st.seg_values.assign(segments_, 0.0);
      st.ghost_values.assign(segments_, 0.0);
      if (config_.use_bloom) {
        st.filters = std::make_unique<SegmentFilterSet>(segments_, spp,
                                                        config_.bloom_fpr);
      }
    }
  }
}

void PamaValueTracker::OnHit(const CacheEngine& engine, const Item& item) {
  SubclassState& st = state_[Index(item.cls, item.sub)];
  if (config_.use_bloom) {
    const auto seg = st.filters->FindSegment(item.key);
    if (seg) {
      st.seg_values[*seg] += ValueOf(item.penalty);
      // The hit promotes the item out of the snapshot region.
      st.filters->MarkRemoved(item.key);
    }
    return;
  }
  const std::size_t spp = engine.classes().SlotsPerSlab(item.cls);
  const std::size_t rank =
      engine.StackOf(item.cls, item.sub).RankFromBottom(item.node);
  if (rank < segments_ * spp) {
    st.seg_values[rank / spp] += ValueOf(item.penalty);
  }
}

void PamaValueTracker::OnEvict(const Item& item) {
  if (!config_.use_bloom) return;
  // The key sinks out of the cache; it must stop answering as a segment
  // member (it may reappear via the ghost path instead).
  state_[Index(item.cls, item.sub)].filters->MarkRemoved(item.key);
}

void PamaValueTracker::OnGhostHit(ClassId c, SubclassId s,
                                  std::size_t ghost_segment,
                                  MicroSecs penalty) {
  if (ghost_segment >= segments_) return;  // beyond the tracked range
  state_[Index(c, s)].ghost_values[ghost_segment] += ValueOf(penalty);
}

void PamaValueTracker::RotateWindow(CacheEngine& engine) {
  const double decay = std::clamp(config_.value_decay, 0.0, 1.0);
  const std::uint32_t num_classes = engine.classes().num_classes();
  for (ClassId c = 0; c < num_classes; ++c) {
    const std::size_t spp = engine.classes().SlotsPerSlab(c);
    for (SubclassId s = 0; s < num_subclasses_; ++s) {
      SubclassState& st = state_[Index(c, s)];
      for (auto& v : st.seg_values) v *= decay;
      for (auto& v : st.ghost_values) v *= decay;
      if (!config_.use_bloom) continue;
      // Rebuild the segment filters from the stack's current bottom region.
      st.filters->BeginRebuild();
      const LruStack& stack = engine.StackOf(c, s);
      LruStack::Node* node = stack.Bottom();
      const std::size_t region = segments_ * spp;
      for (std::size_t k = 0; k < region && node != nullptr; ++k) {
        st.filters->AddToSegment(k / spp, engine.ItemAt(node->value).key);
        node = LruStack::TowardTop(node);
      }
    }
  }
}

double PamaValueTracker::Weighted(const std::vector<double>& values) const noexcept {
  // Eq. 2: V = sum_i values[i] / 2^(i+1); segment 0 (candidate/receiving)
  // carries the highest weight.
  double v = 0.0;
  double weight = 0.5;
  for (const double x : values) {
    v += x * weight;
    weight *= 0.5;
  }
  return v;
}

double PamaValueTracker::OutgoingValue(ClassId c, SubclassId s) const {
  return Weighted(state_[Index(c, s)].seg_values);
}

double PamaValueTracker::IncomingValue(ClassId c, SubclassId s) const {
  return Weighted(state_[Index(c, s)].ghost_values);
}

double PamaValueTracker::SegmentValue(ClassId c, SubclassId s,
                                      std::size_t i) const {
  return state_[Index(c, s)].seg_values.at(i);
}

double PamaValueTracker::GhostSegmentValue(ClassId c, SubclassId s,
                                           std::size_t i) const {
  return state_[Index(c, s)].ghost_values.at(i);
}

std::size_t PamaValueTracker::FilterFootprintBytes() const noexcept {
  std::size_t total = 0;
  for (const auto& st : state_) {
    if (st.filters) total += st.filters->footprint_bytes();
  }
  return total;
}

}  // namespace pamakv
