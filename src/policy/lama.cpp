#include "pamakv/policy/lama.hpp"

#include <algorithm>
#include <cassert>

namespace pamakv {

void LamaPolicy::Attach(CacheEngine& engine) {
  AllocationPolicy::Attach(engine);
  const std::size_t classes = engine.classes().num_classes();
  const std::size_t depth = engine.pool().total_slabs() + 1;
  hist_.assign(classes, std::vector<double>(depth, 0.0));
  target_.assign(classes, 0);
}

void LamaPolicy::OnHit(const Item& item) {
  // Mattson depth of the hit, in slabs of the item's class. With a single
  // penalty band (LAMA's intended configuration) the subclass stack is the
  // class stack, so this is the exact class-level reuse depth.
  const std::size_t spp = engine().classes().SlotsPerSlab(item.cls);
  const std::size_t depth =
      engine().StackOf(item.cls, item.sub).RankFromTop(item.node) / spp;
  auto& hist = hist_[item.cls];
  const std::size_t bucket = std::min(depth, hist.size() - 1);
  hist[bucket] += config_.penalty_weighted
                      ? static_cast<double>(item.penalty)
                      : 1.0;
}

void LamaPolicy::OnTick(AccessClock now) {
  if (now - window_start_ < config_.window_accesses) return;
  window_start_ = now;
  Repartition();
}

void LamaPolicy::Repartition() {
  const std::size_t num_classes = hist_.size();
  const std::size_t total = engine().pool().total_slabs();
  const std::size_t g = std::max<std::size_t>(1, config_.granularity_slabs);
  const std::size_t granules = total / g;
  if (granules == 0) return;

  // gain[c][j] = value mass class c catches with j*g slabs (prefix of its
  // depth histogram).
  std::vector<std::vector<double>> gain(num_classes,
                                        std::vector<double>(granules + 1, 0.0));
  for (std::size_t c = 0; c < num_classes; ++c) {
    double cum = 0.0;
    std::size_t d = 0;
    for (std::size_t j = 1; j <= granules; ++j) {
      const std::size_t upto = j * g;
      for (; d < upto && d < hist_[c].size(); ++d) cum += hist_[c][d];
      gain[c][j] = cum;
    }
  }

  // DP over classes: best[j] = max value using j granules across the
  // classes seen so far; choice[c][j] = granules given to class c.
  std::vector<double> best(granules + 1, 0.0);
  std::vector<std::vector<std::size_t>> choice(
      num_classes, std::vector<std::size_t>(granules + 1, 0));
  for (std::size_t c = 0; c < num_classes; ++c) {
    std::vector<double> next(granules + 1, -1.0);
    for (std::size_t j = 0; j <= granules; ++j) {
      for (std::size_t k = 0; k <= j; ++k) {
        const double v = best[j - k] + gain[c][k];
        if (v > next[j]) {
          next[j] = v;
          choice[c][j] = k;
        }
      }
    }
    best = std::move(next);
  }

  // Backtrack the optimal split.
  std::size_t remaining = granules;
  std::vector<std::size_t> alloc(num_classes, 0);
  for (std::size_t c = num_classes; c-- > 0;) {
    alloc[c] = choice[c][remaining];
    remaining -= alloc[c];
  }
  // Granules the DP was indifferent about (no marginal gain anywhere) go to
  // the most active class so the whole cache stays assigned.
  if (remaining > 0) {
    std::size_t busiest = 0;
    double most_mass = -1.0;
    for (std::size_t c = 0; c < num_classes; ++c) {
      if (gain[c][granules] > most_mass) {
        most_mass = gain[c][granules];
        busiest = c;
      }
    }
    alloc[busiest] += remaining;
  }
  for (std::size_t c = 0; c < num_classes; ++c) target_[c] = alloc[c] * g;
  // Slabs lost to granularity rounding (total % g) stay with whoever holds
  // them; the targets govern only slab *movement* pressure.

  // Age the histograms so the next window blends history with fresh data.
  const double keep = std::clamp(1.0 - config_.history_alpha, 0.0, 1.0);
  for (auto& h : hist_) {
    for (auto& v : h) v *= keep;
  }
}

bool LamaPolicy::MakeRoom(ClassId cls, SubclassId sub) {
  (void)sub;
  const auto& pool = engine().pool();
  // If the requester is under its target, pull a slab from the most
  // over-allocated donor.
  if (pool.ClassSlabCount(cls) < target_[cls]) {
    std::optional<ClassId> donor;
    std::size_t worst_excess = 0;
    for (ClassId c = 0; c < engine().classes().num_classes(); ++c) {
      if (c == cls || pool.ClassSlabCount(c) == 0) continue;
      const std::size_t have = pool.ClassSlabCount(c);
      const std::size_t excess = have > target_[c] ? have - target_[c] : 0;
      if (excess > worst_excess) {
        worst_excess = excess;
        donor = c;
      }
    }
    if (donor && engine().MigrateSlabClassLru(*donor, cls)) return true;
  }
  if (engine().EvictClassLru(cls)) return true;
  // Starved class with no target yet: take from the largest holder.
  std::optional<ClassId> donor;
  std::size_t most = 0;
  for (ClassId c = 0; c < engine().classes().num_classes(); ++c) {
    if (c == cls) continue;
    if (pool.ClassSlabCount(c) > most) {
      most = pool.ClassSlabCount(c);
      donor = c;
    }
  }
  if (donor) return engine().MigrateSlabClassLru(*donor, cls);
  return false;
}

}  // namespace pamakv
