#include "pamakv/policy/twemcache.hpp"

#include <vector>

namespace pamakv {

bool TwemcachePolicy::MakeRoom(ClassId cls, SubclassId sub) {
  (void)sub;
  // Candidate donors: any class currently owning a slab (the requester
  // included — Twemcache may evict one of its own slabs).
  std::vector<ClassId> donors;
  const auto& pool = engine().pool();
  for (ClassId c = 0; c < engine().classes().num_classes(); ++c) {
    if (pool.ClassSlabCount(c) > 0) donors.push_back(c);
  }
  if (donors.empty()) return false;

  const ClassId donor =
      donors[rng_.NextBounded(donors.size())];
  if (donor == cls) {
    // Reassigning a class's slab to itself: the slab's items are evicted
    // and the space is immediately reusable by the requester.
    return engine().EvictClassLru(cls);
  }
  if (engine().MigrateSlabClassLru(donor, cls)) return true;
  // Donor could not actually supply a slab (rare): fall back to in-class
  // LRU replacement so the store can proceed.
  return engine().EvictClassLru(cls);
}

}  // namespace pamakv
