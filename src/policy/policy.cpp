// Anchor translation unit for AllocationPolicy's vtable/key functions.
#include "pamakv/policy/policy.hpp"

namespace pamakv {

// Intentionally empty: AllocationPolicy is an interface; concrete policies
// live in their own translation units.

}  // namespace pamakv
