#include "pamakv/policy/pama.hpp"

#include <cassert>
#include <limits>

namespace pamakv {

void PamaPolicy::Attach(CacheEngine& engine) {
  AllocationPolicy::Attach(engine);
  tracker_ = std::make_unique<PamaValueTracker>(config_, engine);
  last_granted_.assign(static_cast<std::size_t>(engine.classes().num_classes()) *
                           engine.num_subclasses(),
                       0);
  num_bands_ = engine.num_subclasses();
  migration_flow_.assign(static_cast<std::size_t>(num_bands_) * num_bands_, 0);
}

void PamaPolicy::OnTick(AccessClock now) {
  now_ = now;
  if (now - window_start_ < config_.window_accesses) return;
  window_start_ = now;
  tracker_->RotateWindow(engine());
}

void PamaPolicy::OnHit(const Item& item) { tracker_->OnHit(engine(), item); }

void PamaPolicy::OnMiss(KeyId key, Bytes /*size*/, MicroSecs penalty,
                        ClassId cls, SubclassId sub) {
  // A would-have-been hit: if the key lives in the subclass's ghost region,
  // credit the ghost segment it occupies with the avoided penalty.
  const auto hit = engine().GhostOf(cls, sub).Lookup(key);
  if (!hit) return;
  const std::size_t spp = engine().classes().SlotsPerSlab(cls);
  // The ghost's recorded penalty may differ slightly from the trace's
  // current estimate; the recorded one is what this eviction cost us.
  tracker_->OnGhostHit(cls, sub, hit->rank / spp, hit->penalty);
  (void)penalty;
}

void PamaPolicy::OnEvict(const Item& item) { tracker_->OnEvict(item); }

std::optional<PamaPolicy::Candidate> PamaPolicy::CheapestDonor() const {
  std::optional<Candidate> best;
  const auto& eng = engine();
  for (ClassId c = 0; c < eng.classes().num_classes(); ++c) {
    for (SubclassId s = 0; s < eng.num_subclasses(); ++s) {
      // Grace period: a recent grantee's slab has not had a window to
      // accumulate value; exempt it from donation so it cannot ping-pong.
      const std::size_t idx =
          static_cast<std::size_t>(c) * eng.num_subclasses() + s;
      const AccessClock granted = last_granted_[idx];
      if (config_.donor_grace_accesses > 0 && granted > 0 &&
          now_ - granted < config_.donor_grace_accesses) {
        continue;
      }
      const auto needed = eng.EvictionsToFreeSlab(c, s);
      if (!needed) continue;  // (c,s) cannot supply a slab
      // A donor is always priced at its candidate slab's outgoing value —
      // even when free slots would let it release a slab without evicting.
      // Discounting such donors to zero makes every freshly granted slab
      // the global minimum and it ping-pongs away before it can fill
      // (the slab thrashing Sec. III warns about).
      const double value = tracker_->OutgoingValue(c, s);
      if (!best || value < best->value) {
        best = Candidate{c, s, value};
      }
    }
  }
  return best;
}

bool PamaPolicy::MakeRoom(ClassId cls, SubclassId sub) {
  const auto donor = CheapestDonor();

  if (donor && donor->cls == cls && donor->sub == sub) {
    // Scenario 2 (Sec. III): the cheapest candidate slab belongs to the
    // requester itself — no migration, replace a single item in place.
    ++decisions_.self_evictions;
    return engine().EvictBottom(cls, sub);
  }

  const double incoming = tracker_->IncomingValue(cls, sub);
  if (donor) {
    ++value_flow_.decisions;
    value_flow_.outgoing_sum += donor->value;
    value_flow_.incoming_sum += incoming;
    value_flow_.last_outgoing = donor->value;
    value_flow_.last_incoming = incoming;
  }

  if (donor && donor->value < incoming) {
    if (donor->cls == cls) ++decisions_.intra_class;
    else ++decisions_.migrations;
    if (engine().MigrateSlab(donor->cls, donor->sub, cls, sub)) {
      last_granted_[static_cast<std::size_t>(cls) * engine().num_subclasses() +
                    sub] = now_;
      value_flow_.migration_benefit_sum += incoming - donor->value;
      ++migration_flow_[static_cast<std::size_t>(donor->sub) * num_bands_ +
                        sub];
      return true;
    }
    return false;
  }

  // Scenario 1 (Sec. III): migration would not improve utilization.
  // Replace within the requester. Evicting from sibling subclasses would
  // be pointless — their slots belong to their slabs, not the requester's.
  if (engine().EvictBottom(cls, sub)) {
    ++decisions_.suppressed;
    return true;
  }
  // The requesting subclass holds nothing and, per the value comparison,
  // does not deserve a slab right now: refuse the store. The engine
  // records the refused key in the subclass's ghost list, so re-misses
  // accumulate incoming value and the subclass is granted a slab the
  // moment its penalty mass genuinely exceeds the cheapest candidate —
  // admission is value-gated instead of migrating on every mandatory
  // insert (which turns low-value subclasses into permanent slab churn).
  ++decisions_.refusals;
  return false;
}

}  // namespace pamakv
