#include "pamakv/policy/psa.hpp"

#include <algorithm>
#include <limits>

namespace pamakv {

void PsaPolicy::Attach(CacheEngine& engine) {
  AllocationPolicy::Attach(engine);
  requests_.assign(engine.classes().num_classes(), 0);
  misses_.assign(engine.classes().num_classes(), 0);
}

void PsaPolicy::OnTick(AccessClock now) {
  if (now - window_start_ >= config_.window_accesses) {
    std::fill(requests_.begin(), requests_.end(), 0);
    std::fill(misses_.begin(), misses_.end(), 0);
    window_start_ = now;
  }
}

void PsaPolicy::OnHit(const Item& item) { ++requests_[item.cls]; }

void PsaPolicy::OnMiss(KeyId /*key*/, Bytes /*size*/, MicroSecs /*penalty*/,
                       ClassId cls, SubclassId /*sub*/) {
  ++requests_[cls];
  ++misses_[cls];
  ++misses_since_relocation_;
  MaybeRelocate();
}

std::optional<ClassId> PsaPolicy::LowestDensityDonor() const {
  // Density = requests per slab in the current window; the donor is the
  // least-dense class that can actually give up a slab.
  std::optional<ClassId> donor;
  double lowest = std::numeric_limits<double>::max();
  const auto& pool = engine().pool();
  for (ClassId c = 0; c < engine().classes().num_classes(); ++c) {
    const std::size_t slabs = pool.ClassSlabCount(c);
    if (slabs == 0) continue;
    const double density =
        static_cast<double>(requests_[c]) / static_cast<double>(slabs);
    if (density < lowest) {
      lowest = density;
      donor = c;
    }
  }
  return donor;
}

void PsaPolicy::MaybeRelocate() {
  if (misses_since_relocation_ < config_.misses_per_relocation) return;
  // Free memory left: nothing to rebalance yet, stores are still absorbed
  // by the pool. Postpone the countdown until memory is committed.
  if (engine().pool().free_slabs() > 0) return;
  misses_since_relocation_ = 0;

  const auto receiver_it = std::max_element(misses_.begin(), misses_.end());
  const auto receiver = static_cast<ClassId>(receiver_it - misses_.begin());
  if (*receiver_it == 0) return;

  const auto donor = LowestDensityDonor();
  if (!donor || *donor == receiver) return;
  engine().MigrateSlabClassLru(*donor, receiver);
}

bool PsaPolicy::MakeRoom(ClassId cls, SubclassId sub) {
  (void)sub;
  // Between periodic relocations, PSA replaces within the class.
  if (engine().EvictClassLru(cls)) return true;
  // The class owns nothing (e.g. it appeared after memory filled up):
  // pull a slab from the lowest-density donor so it is not starved forever.
  const auto donor = LowestDensityDonor();
  if (donor && *donor != cls) {
    return engine().MigrateSlabClassLru(*donor, cls);
  }
  return false;
}

}  // namespace pamakv
