#include "pamakv/policy/no_realloc.hpp"

namespace pamakv {

bool NoReallocPolicy::MakeRoom(ClassId cls, SubclassId sub) {
  (void)sub;
  // No reallocation, ever: the only way to free a slot is to evict the
  // class's own LRU item. With zero slabs assigned, the store fails.
  if (engine().pool().ClassSlabCount(cls) == 0) return false;
  return engine().EvictClassLru(cls);
}

}  // namespace pamakv
