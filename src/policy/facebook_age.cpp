#include "pamakv/policy/facebook_age.hpp"

#include <vector>

namespace pamakv {

void FacebookAgePolicy::OnTick(AccessClock now) {
  if (now - last_check_ < config_.check_interval) return;
  last_check_ = now;
  if (engine().pool().free_slabs() > 0) return;  // nothing to balance yet
  BalanceOnce(now);
}

bool FacebookAgePolicy::BalanceOnce(AccessClock now) {
  // "Age" of a class = how long ago its LRU item was last accessed.
  // A small age means the class is churning (its LRU tail is young).
  struct ClassAge {
    ClassId cls;
    AccessClock age;
  };
  std::vector<ClassAge> ages;
  for (ClassId c = 0; c < engine().classes().num_classes(); ++c) {
    const auto oldest = engine().OldestAccess(c);
    if (!oldest) continue;
    ages.push_back({c, now - *oldest});
  }
  if (ages.size() < 2) return false;

  ClassAge youngest = ages.front();
  ClassAge oldest = ages.front();
  double age_sum = 0.0;
  for (const auto& a : ages) {
    if (a.age < youngest.age) youngest = a;
    if (a.age > oldest.age) oldest = a;
    age_sum += static_cast<double>(a.age);
  }
  // Average over the *other* classes, per the paper's description.
  const double avg_others = (age_sum - static_cast<double>(youngest.age)) /
                            static_cast<double>(ages.size() - 1);
  if (static_cast<double>(youngest.age) >=
      (1.0 - config_.youth_threshold) * avg_others) {
    return false;  // balanced enough
  }
  if (youngest.cls == oldest.cls) return false;
  return engine().MigrateSlabClassLru(oldest.cls, youngest.cls);
}

bool FacebookAgePolicy::MakeRoom(ClassId cls, SubclassId sub) {
  (void)sub;
  // The balancer runs in the background (OnTick); the immediate need is
  // served by in-class LRU replacement, like stock Memcached.
  if (engine().EvictClassLru(cls)) return true;
  // Starved class: take from the class with the oldest LRU tail.
  std::optional<ClassId> donor;
  std::optional<AccessClock> donor_age;
  for (ClassId c = 0; c < engine().classes().num_classes(); ++c) {
    if (c == cls || engine().pool().ClassSlabCount(c) == 0) continue;
    const auto oldest = engine().OldestAccess(c);
    if (!oldest) continue;
    if (!donor_age || *oldest < *donor_age) {
      donor_age = oldest;
      donor = c;
    }
  }
  if (donor) return engine().MigrateSlabClassLru(*donor, cls);
  return false;
}

}  // namespace pamakv
