#include "pamakv/bloom/segment_filters.hpp"

namespace pamakv {

SegmentFilterSet::SegmentFilterSet(std::size_t segments,
                                   std::size_t items_per_segment, double fpr)
    // The removal filter sees every promotion out of the region during a
    // window; size it for a few region-turnovers' worth of keys.
    : removal_filter_(4 * segments * items_per_segment, fpr) {
  filters_.reserve(segments);
  for (std::size_t i = 0; i < segments; ++i) {
    filters_.emplace_back(items_per_segment, fpr);
  }
}

void SegmentFilterSet::BeginRebuild() noexcept {
  for (auto& f : filters_) f.Clear();
  removal_filter_.Clear();
}

void SegmentFilterSet::AddToSegment(std::size_t seg, KeyId key) noexcept {
  if (seg < filters_.size()) filters_[seg].Add(key);
}

void SegmentFilterSet::MarkRemoved(KeyId key) noexcept {
  removal_filter_.Add(key);
}

std::optional<std::size_t> SegmentFilterSet::FindSegment(KeyId key) const noexcept {
  for (std::size_t i = 0; i < filters_.size(); ++i) {
    if (filters_[i].MayContain(key)) {
      if (removal_filter_.MayContain(key)) return std::nullopt;
      return i;
    }
  }
  return std::nullopt;
}

std::size_t SegmentFilterSet::footprint_bytes() const noexcept {
  std::size_t total = removal_filter_.footprint_bytes();
  for (const auto& f : filters_) total += f.footprint_bytes();
  return total;
}

}  // namespace pamakv
