#include "pamakv/bloom/bloom_filter.hpp"

#include <algorithm>
#include <cmath>

#include "pamakv/util/rng.hpp"

namespace pamakv {

BloomFilter::BloomFilter(std::size_t expected_items, double false_positive_rate) {
  expected_items = std::max<std::size_t>(expected_items, 8);
  false_positive_rate = std::clamp(false_positive_rate, 1e-6, 0.5);
  const double ln2 = std::log(2.0);
  const double bits = -static_cast<double>(expected_items) *
                      std::log(false_positive_rate) / (ln2 * ln2);
  // Round up to a power of two so probes reduce with a mask instead of a
  // 64-bit modulo (a ~20-cycle divide per probe on the hot path). The extra
  // bits only lower the false-positive rate; k is derived from the actual
  // bit count so it stays optimal for the rounded size.
  bit_count_ = 64;
  while (static_cast<double>(bit_count_) < bits) bit_count_ <<= 1;
  bit_mask_ = bit_count_ - 1;
  const double k = static_cast<double>(bit_count_) /
                   static_cast<double>(expected_items) * ln2;
  hash_count_ = std::clamp<std::size_t>(static_cast<std::size_t>(std::lround(k)), 1, 16);
  words_.assign(bit_count_ / 64, 0);
}

BloomFilter::HashPair BloomFilter::HashKey(KeyId key) noexcept {
  // Two independent mixes; the second seeds with a distinct constant so
  // h1 and h2 are uncorrelated.
  const std::uint64_t h1 = Mix64(key);
  const std::uint64_t h2 = Mix64(key ^ 0x9e3779b97f4a7c15ULL) | 1ULL;  // odd => full stride
  return {h1, h2};
}

void BloomFilter::Add(KeyId key) noexcept {
  const auto [h1, h2] = HashKey(key);
  std::uint64_t h = h1;
  for (std::size_t i = 0; i < hash_count_; ++i, h += h2) {
    const std::uint64_t bit = h & bit_mask_;
    words_[bit >> 6] |= 1ULL << (bit & 63);
  }
  ++added_;
}

bool BloomFilter::MayContain(KeyId key) const noexcept {
  const auto [h1, h2] = HashKey(key);
  std::uint64_t h = h1;
  for (std::size_t i = 0; i < hash_count_; ++i, h += h2) {
    const std::uint64_t bit = h & bit_mask_;
    if ((words_[bit >> 6] & (1ULL << (bit & 63))) == 0) return false;
  }
  return true;
}

void BloomFilter::Clear() noexcept {
  std::fill(words_.begin(), words_.end(), 0);
  added_ = 0;
}

}  // namespace pamakv
