// Anchor translation unit for TraceSource's vtable.
#include "pamakv/trace/request.hpp"

namespace pamakv {

// TraceSource is an interface; concrete sources live in generators.cpp,
// trace_io.cpp and injector.cpp.

}  // namespace pamakv
