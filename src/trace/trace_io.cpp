#include "pamakv/trace/trace_io.hpp"

#include <cinttypes>
#include <cstring>
#include <stdexcept>

namespace pamakv {

namespace {

constexpr char kMagic[4] = {'P', 'K', 'V', 'T'};
constexpr std::uint32_t kVersion = 1;

struct BinaryHeader {
  char magic[4];
  std::uint32_t version;
  std::uint64_t record_count;
};
static_assert(sizeof(BinaryHeader) == 16);

[[noreturn]] void ThrowIo(const std::string& what, const std::string& path) {
  throw std::runtime_error(what + ": " + path);
}

const char* OpName(Op op) {
  switch (op) {
    case Op::kGet: return "GET";
    case Op::kSet: return "SET";
    case Op::kDel: return "DEL";
  }
  return "GET";
}

}  // namespace

// ---------------- Binary writer ----------------

BinaryTraceWriter::BinaryTraceWriter(const std::string& path) {
  file_ = std::fopen(path.c_str(), "wb");
  if (!file_) ThrowIo("BinaryTraceWriter: cannot open", path);
  BinaryHeader header{};
  std::memcpy(header.magic, kMagic, sizeof(kMagic));
  header.version = kVersion;
  header.record_count = 0;  // back-patched in Close()
  if (std::fwrite(&header, sizeof(header), 1, file_) != 1) {
    ThrowIo("BinaryTraceWriter: header write failed", path);
  }
}

BinaryTraceWriter::~BinaryTraceWriter() { Close(); }

void BinaryTraceWriter::Write(const Request& request) {
  BinaryTraceRecord rec{};
  rec.key = request.key;
  rec.timestamp_us = static_cast<std::uint64_t>(request.timestamp_us);
  rec.size = static_cast<std::uint32_t>(request.size);
  rec.penalty_us = static_cast<std::uint32_t>(request.penalty_us);
  rec.op = static_cast<std::uint8_t>(request.op);
  if (std::fwrite(&rec, sizeof(rec), 1, file_) != 1) {
    throw std::runtime_error("BinaryTraceWriter: record write failed");
  }
  ++written_;
}

void BinaryTraceWriter::Close() {
  if (!file_) return;
  // Back-patch the record count.
  std::fseek(file_, offsetof(BinaryHeader, record_count), SEEK_SET);
  std::fwrite(&written_, sizeof(written_), 1, file_);
  std::fclose(file_);
  file_ = nullptr;
}

// ---------------- Binary reader ----------------

BinaryTraceReader::BinaryTraceReader(const std::string& path) {
  file_ = std::fopen(path.c_str(), "rb");
  if (!file_) ThrowIo("BinaryTraceReader: cannot open", path);
  BinaryHeader header{};
  if (std::fread(&header, sizeof(header), 1, file_) != 1 ||
      std::memcmp(header.magic, kMagic, sizeof(kMagic)) != 0) {
    std::fclose(file_);
    file_ = nullptr;
    ThrowIo("BinaryTraceReader: not a PKVT trace", path);
  }
  if (header.version != kVersion) {
    std::fclose(file_);
    file_ = nullptr;
    ThrowIo("BinaryTraceReader: unsupported version", path);
  }
  total_ = header.record_count;
}

BinaryTraceReader::~BinaryTraceReader() {
  if (file_) std::fclose(file_);
}

bool BinaryTraceReader::Next(Request& out) {
  if (read_ >= total_) return false;
  BinaryTraceRecord rec{};
  if (std::fread(&rec, sizeof(rec), 1, file_) != 1) return false;
  out.key = rec.key;
  out.timestamp_us = static_cast<MicroSecs>(rec.timestamp_us);
  out.size = rec.size;
  out.penalty_us = rec.penalty_us;
  out.op = static_cast<Op>(rec.op);
  ++read_;
  return true;
}

void BinaryTraceReader::Reset() {
  std::fseek(file_, sizeof(BinaryHeader), SEEK_SET);
  read_ = 0;
}

// ---------------- CSV writer ----------------

CsvTraceWriter::CsvTraceWriter(const std::string& path) {
  file_ = std::fopen(path.c_str(), "w");
  if (!file_) ThrowIo("CsvTraceWriter: cannot open", path);
  std::fputs("op,key,size,penalty_us,timestamp_us\n", file_);
}

CsvTraceWriter::~CsvTraceWriter() { Close(); }

void CsvTraceWriter::Write(const Request& request) {
  std::fprintf(file_, "%s,%" PRIu64 ",%" PRIu64 ",%" PRId64 ",%" PRId64 "\n",
               OpName(request.op), request.key,
               static_cast<std::uint64_t>(request.size),
               static_cast<std::int64_t>(request.penalty_us),
               static_cast<std::int64_t>(request.timestamp_us));
}

void CsvTraceWriter::Close() {
  if (!file_) return;
  std::fclose(file_);
  file_ = nullptr;
}

// ---------------- CSV reader ----------------

CsvTraceReader::CsvTraceReader(const std::string& path) {
  file_ = std::fopen(path.c_str(), "r");
  if (!file_) ThrowIo("CsvTraceReader: cannot open", path);
}

CsvTraceReader::~CsvTraceReader() {
  if (file_) std::fclose(file_);
}

bool CsvTraceReader::Next(Request& out) {
  char line[256];
  for (;;) {
    if (!std::fgets(line, sizeof(line), file_)) return false;
    if (!header_skipped_) {
      header_skipped_ = true;
      // Tolerate files with or without the header line.
      if (std::strncmp(line, "op,", 3) == 0) continue;
    }
    char op_buf[8] = {};
    std::uint64_t key = 0;
    std::uint64_t size = 0;
    std::int64_t penalty = 0;
    std::int64_t ts = 0;
    const int fields =
        std::sscanf(line, "%7[^,],%" SCNu64 ",%" SCNu64 ",%" SCNd64 ",%" SCNd64,
                    op_buf, &key, &size, &penalty, &ts);
    if (fields < 4) continue;  // skip malformed lines
    if (std::strcmp(op_buf, "GET") == 0) {
      out.op = Op::kGet;
    } else if (std::strcmp(op_buf, "SET") == 0) {
      out.op = Op::kSet;
    } else if (std::strcmp(op_buf, "DEL") == 0) {
      out.op = Op::kDel;
    } else {
      continue;
    }
    out.key = key;
    out.size = size;
    out.penalty_us = penalty;
    out.timestamp_us = fields >= 5 ? ts : 0;
    return true;
  }
}

void CsvTraceReader::Reset() {
  std::fseek(file_, 0, SEEK_SET);
  header_skipped_ = false;
}

// ---------------- Helpers ----------------

std::uint64_t DumpTrace(TraceSource& source, const std::string& path) {
  BinaryTraceWriter writer(path);
  Request request;
  while (source.Next(request)) writer.Write(request);
  writer.Close();
  return writer.written();
}

}  // namespace pamakv
