#include "pamakv/trace/penalty_model.hpp"

#include <algorithm>
#include <cmath>

namespace pamakv {

MicroSecs PenaltyModel::PenaltyFor(KeyId key, ClassId cls,
                                   double popularity_percentile) const {
  // A private RNG stream per key keeps the penalty a pure function of the
  // key while remaining statistically lognormal across keys.
  Rng rng(Mix64(key ^ config_.seed));
  if (rng.NextDouble() < config_.default_fraction) {
    return config_.default_us;
  }
  popularity_percentile = std::clamp(popularity_percentile, 1e-9, 1.0);
  const double mu = std::log(static_cast<double>(config_.median_us)) +
                    config_.per_class_log_shift * static_cast<double>(cls) -
                    config_.popularity_log_boost *
                        std::log10(popularity_percentile);
  const double draw = std::exp(mu + config_.sigma_log * rng.NextGaussian());
  const auto penalty = static_cast<MicroSecs>(std::llround(draw));
  return std::clamp(penalty, config_.min_us, config_.max_us);
}

}  // namespace pamakv
