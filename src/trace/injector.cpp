#include "pamakv/trace/injector.hpp"

#include <stdexcept>

namespace pamakv {

namespace {
constexpr KeyId kBurstKeyBase = 1ULL << 44;  // disjoint from all other keys
}

ColdBurstInjector::ColdBurstInjector(std::unique_ptr<TraceSource> inner,
                                     const ColdBurstConfig& config,
                                     const SizeClassConfig& geometry)
    : inner_(std::move(inner)),
      config_(config),
      classes_(geometry),
      rng_(config.seed) {
  if (config_.impacted_classes.empty()) {
    throw std::invalid_argument("ColdBurstInjector: no impacted classes");
  }
  for (const ClassId c : config_.impacted_classes) {
    if (c >= classes_.num_classes()) {
      throw std::invalid_argument("ColdBurstInjector: class out of range");
    }
  }
}

bool ColdBurstInjector::EmitBurstRequest(Request& out) {
  // Each injected item is a GET (cold miss) immediately followed by a SET
  // of the same key — the Memcached access-then-add pattern.
  if (pending_set_) {
    out = pending_request_;
    out.op = Op::kSet;
    pending_set_ = false;
    return true;
  }
  if (injected_bytes_ >= config_.total_bytes) {
    bursting_ = false;
    burst_done_ = true;
    return false;
  }
  const ClassId cls = config_.impacted_classes[rng_.NextBounded(
      config_.impacted_classes.size())];
  const Bytes hi = classes_.SlotBytes(cls);
  const Bytes lo = cls == 0 ? 1 : classes_.SlotBytes(cls - 1) + 1;
  out.op = Op::kGet;
  out.key = kBurstKeyBase + injected_count_;
  out.size = lo + rng_.NextBounded(hi - lo + 1);
  out.penalty_us = config_.penalty_us;
  out.timestamp_us = 0;
  injected_bytes_ += out.size;
  ++injected_count_;
  pending_request_ = out;
  pending_set_ = true;
  return true;
}

bool ColdBurstInjector::Next(Request& out) {
  if (bursting_ && EmitBurstRequest(out)) return true;
  if (!inner_->Next(out)) return false;
  if (out.op == Op::kGet) {
    ++gets_seen_;
    if (!burst_done_ && !bursting_ && gets_seen_ >= config_.after_gets) {
      bursting_ = true;  // burst begins with the next request
    }
  }
  return true;
}

void ColdBurstInjector::Reset() {
  inner_->Reset();
  rng_ = Rng(config_.seed);
  gets_seen_ = 0;
  injected_bytes_ = 0;
  injected_count_ = 0;
  bursting_ = false;
  burst_done_ = false;
  pending_set_ = false;
}

}  // namespace pamakv
