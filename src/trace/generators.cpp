#include "pamakv/trace/generators.hpp"

#include <cassert>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace pamakv {

namespace {

/// Cold (one-shot) keys live far above any recurring key id.
constexpr KeyId kColdKeyBase = 1ULL << 40;

}  // namespace

WorkloadConfig EtcWorkload(std::uint64_t num_requests, std::uint64_t seed) {
  WorkloadConfig w;
  w.name = "etc";
  w.seed = seed;
  w.num_requests = num_requests;
  // Sized so that multi-million-request runs are dominated by capacity
  // misses (as the paper's 8x10^8-request runs are), not compulsory ones:
  // ~130 MB of recurring data vs the 24-96 MB scaled cache points.
  w.key_space = 150'000;
  w.zipf_alpha = 1.0;
  // Class 0 dominates the request stream (the paper observes >70% of ETC
  // requests in the smallest class); class 8 gets a visible share so its
  // byte demand is high despite a modest request rate (Fig. 3a).
  w.class_weights = {0.72, 0.07, 0.045, 0.035, 0.025, 0.02,
                     0.015, 0.012, 0.03, 0.014, 0.01, 0.004};
  w.get_fraction = 0.96;
  w.set_fraction = 0.03;
  w.cold_fraction = 0.02;
  w.diurnal_amplitude = 0.15;
  w.diurnal_period_requests = 2'000'000;
  return w;
}

WorkloadConfig AppWorkload(std::uint64_t num_requests, std::uint64_t seed) {
  WorkloadConfig w;
  w.name = "app";
  w.seed = seed;
  w.num_requests = num_requests;
  // ~1.2 GB of recurring data vs the 128-512 MB scaled cache points.
  w.key_space = 250'000;
  w.zipf_alpha = 0.95;
  // Larger items: request mass peaks in the mid/high classes, making the
  // aggregate data set big relative to the cache (Sec. IV-B).
  w.class_weights = {0.02, 0.03, 0.05, 0.06, 0.08, 0.10,
                     0.12, 0.14, 0.16, 0.12, 0.08, 0.04};
  w.get_fraction = 0.97;
  w.set_fraction = 0.02;
  // One-shot keys that never repeat within a pass. The paper's APP has a
  // much larger cold share (~40% of misses) and neutralizes it by replaying
  // the trace in the second half; at simulator scale a heavy one-shot
  // stream mostly measures compulsory misses no scheme can avoid, so the
  // preset keeps the cold stream present but modest (see DESIGN.md).
  w.cold_fraction = 0.02;
  // A thinner, costlier expensive tail than ETC: the high-penalty working
  // set is cacheable, which is what makes penalty-aware allocation able to
  // protect it (DESIGN.md, substitutions).
  w.penalty.median_us = 12'000;
  w.penalty.sigma_log = 1.6;
  w.penalty.per_class_log_shift = 0.05;
  w.penalty.default_fraction = 0.10;
  w.diurnal_amplitude = 0.10;
  w.diurnal_period_requests = 4'000'000;
  return w;
}

WorkloadConfig UsrWorkload(std::uint64_t num_requests, std::uint64_t seed) {
  WorkloadConfig w;
  w.name = "usr";
  w.seed = seed;
  w.num_requests = num_requests;
  w.key_space = 2'000'000;
  w.zipf_alpha = 0.9;
  // Two key sizes, essentially one (tiny) value size.
  w.class_weights = {0.65, 0.35};
  w.class_weights.resize(12, 0.0);
  w.get_fraction = 0.99;
  w.set_fraction = 0.01;
  return w;
}

WorkloadConfig SysWorkload(std::uint64_t num_requests, std::uint64_t seed) {
  WorkloadConfig w;
  w.name = "sys";
  w.seed = seed;
  w.num_requests = num_requests;
  w.key_space = 20'000;  // tiny data set: ~100% hit ratio in a small cache
  w.zipf_alpha = 1.1;
  w.class_weights = {0.4, 0.2, 0.1, 0.08, 0.06, 0.05,
                     0.04, 0.03, 0.02, 0.005, 0.004, 0.001};
  w.get_fraction = 0.97;
  w.set_fraction = 0.03;
  return w;
}

WorkloadConfig VarWorkload(std::uint64_t num_requests, std::uint64_t seed) {
  WorkloadConfig w;
  w.name = "var";
  w.seed = seed;
  w.num_requests = num_requests;
  w.key_space = 300'000;
  w.zipf_alpha = 1.0;
  w.class_weights = {0.5, 0.2, 0.1, 0.06, 0.04, 0.03,
                     0.025, 0.02, 0.012, 0.008, 0.004, 0.001};
  // Dominated by updates (SET/REPLACE), the reason the paper excludes it.
  w.get_fraction = 0.18;
  w.set_fraction = 0.80;
  return w;
}

SyntheticTrace::SyntheticTrace(const WorkloadConfig& config)
    : config_(config),
      classes_(config.geometry),
      zipf_(config.key_space, config.zipf_alpha),
      class_sampler_(config.class_weights.empty()
                         ? std::vector<double>(config.geometry.num_classes, 1.0)
                         : config.class_weights),
      penalty_(config.penalty),
      rng_(config.seed) {
  if (config_.num_requests == 0) {
    throw std::invalid_argument("SyntheticTrace: num_requests must be > 0");
  }
  if (class_sampler_.size() > classes_.num_classes()) {
    throw std::invalid_argument(
        "SyntheticTrace: more class weights than size classes");
  }
}

ClassId SyntheticTrace::ClassOfKey(KeyId key) const {
  Rng krng(Mix64(key ^ config_.seed ^ 0xc1a550ffULL));
  return static_cast<ClassId>(class_sampler_.Sample(krng));
}

Bytes SyntheticTrace::SizeOfKey(KeyId key) const {
  const ClassId cls = ClassOfKey(key);
  // Uniform within the class's slot range (exclusive of the previous
  // class's slot, inclusive of this class's).
  const Bytes hi = classes_.SlotBytes(cls);
  const Bytes lo = cls == 0 ? 1 : classes_.SlotBytes(cls - 1) + 1;
  Rng krng(Mix64(key ^ config_.seed ^ 0x51e2bee5ULL));
  return lo + krng.NextBounded(hi - lo + 1);
}

MicroSecs SyntheticTrace::PenaltyOfKey(KeyId key) const {
  // Recurring key ids approximate Zipf ranks (diurnal drift only rotates
  // them), so (key+1)/key_space is the key's popularity percentile.
  // One-shot cold keys sit far outside the recurring range: percentile 1.
  const double percentile =
      key < config_.key_space
          ? static_cast<double>(key + 1) / static_cast<double>(config_.key_space)
          : 1.0;
  return penalty_.PenaltyFor(key, ClassOfKey(key), percentile);
}

KeyId SyntheticTrace::DrawRecurringKey() {
  const std::uint64_t rank = zipf_.Sample(rng_);
  if (config_.diurnal_amplitude <= 0.0) return rank;
  // The hot set slides sinusoidally across the key space — the diurnal
  // working-set drift the paper's Sec. I calls out.
  const double phase =
      2.0 * std::numbers::pi * static_cast<double>(emitted_) /
      static_cast<double>(config_.diurnal_period_requests);
  const double drift = config_.diurnal_amplitude *
                       static_cast<double>(config_.key_space) * 0.5 *
                       (1.0 - std::cos(phase));
  return (rank + static_cast<KeyId>(drift)) % config_.key_space;
}

bool SyntheticTrace::Next(Request& out) {
  if (emitted_ >= config_.num_requests) return false;

  now_us_ += 1 + static_cast<MicroSecs>(rng_.NextBounded(
                 static_cast<std::uint64_t>(2 * config_.interarrival_us)));
  out.timestamp_us = now_us_;

  const double op_draw = rng_.NextDouble();
  if (op_draw < config_.get_fraction) {
    out.op = Op::kGet;
    if (config_.cold_fraction > 0.0 &&
        rng_.NextDouble() < config_.cold_fraction) {
      out.key = kColdKeyBase + cold_counter_++;
    } else {
      out.key = DrawRecurringKey();
    }
  } else if (op_draw < config_.get_fraction + config_.set_fraction) {
    out.op = Op::kSet;
    out.key = DrawRecurringKey();
  } else {
    out.op = Op::kDel;
    out.key = DrawRecurringKey();
  }

  out.size = SizeOfKey(out.key);
  out.penalty_us = PenaltyOfKey(out.key);
  ++emitted_;
  return true;
}

void SyntheticTrace::Reset() {
  rng_ = Rng(config_.seed);
  emitted_ = 0;
  cold_counter_ = 0;
  now_us_ = 0;
}

RepeatedTrace::RepeatedTrace(std::unique_ptr<TraceSource> inner,
                             std::uint64_t passes)
    : inner_(std::move(inner)), passes_(passes ? passes : 1) {}

bool RepeatedTrace::Next(Request& out) {
  for (;;) {
    if (inner_->Next(out)) return true;
    if (done_passes_ + 1 >= passes_) return false;
    ++done_passes_;
    inner_->Reset();
  }
}

void RepeatedTrace::Reset() {
  inner_->Reset();
  done_passes_ = 0;
}

}  // namespace pamakv
