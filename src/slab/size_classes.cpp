#include "pamakv/slab/size_classes.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace pamakv {

SizeClassTable::SizeClassTable(const SizeClassConfig& config)
    : slab_bytes_(config.slab_bytes) {
  if (config.slab_bytes == 0 || config.min_slot_bytes == 0 ||
      config.num_classes == 0) {
    throw std::invalid_argument("SizeClassTable: zero-valued config field");
  }
  if (config.growth_factor <= 1.0) {
    throw std::invalid_argument("SizeClassTable: growth factor must exceed 1");
  }
  double slot = static_cast<double>(config.min_slot_bytes);
  slot_bytes_.reserve(config.num_classes);
  slots_per_slab_.reserve(config.num_classes);
  for (std::uint32_t c = 0; c < config.num_classes; ++c) {
    const auto bytes = static_cast<Bytes>(std::llround(slot));
    if (bytes > config.slab_bytes) {
      throw std::invalid_argument(
          "SizeClassTable: class slot exceeds slab size; reduce num_classes "
          "or grow slab_bytes");
    }
    slot_bytes_.push_back(bytes);
    slots_per_slab_.push_back(static_cast<std::size_t>(config.slab_bytes / bytes));
    slot *= config.growth_factor;
  }
}

std::optional<ClassId> SizeClassTable::ClassForSize(Bytes size) const noexcept {
  // Classes are sorted by slot size; binary search for the first that fits.
  const auto it = std::lower_bound(slot_bytes_.begin(), slot_bytes_.end(), size);
  if (it == slot_bytes_.end()) return std::nullopt;
  return static_cast<ClassId>(it - slot_bytes_.begin());
}

}  // namespace pamakv
