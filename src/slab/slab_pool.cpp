#include "pamakv/slab/slab_pool.hpp"

#include <cassert>
#include <stdexcept>

namespace pamakv {

SlabPool::SlabPool(Bytes capacity_bytes, const SizeClassTable& classes,
                   std::uint32_t num_subclasses)
    : classes_(&classes),
      num_subclasses_(num_subclasses ? num_subclasses : 1),
      total_slabs_(static_cast<std::size_t>(capacity_bytes / classes.slab_bytes())),
      free_slabs_(total_slabs_),
      slab_count_(static_cast<std::size_t>(classes.num_classes()) * num_subclasses_, 0),
      slots_in_use_(slab_count_.size(), 0) {
  if (total_slabs_ == 0) {
    throw std::invalid_argument("SlabPool: capacity smaller than one slab");
  }
}

bool SlabPool::GrantFreeSlab(ClassId c, SubclassId s) {
  if (free_slabs_ == 0) return false;
  --free_slabs_;
  ++slab_count_.at(Index(c, s));
  return true;
}

void SlabPool::TransferSlab(ClassId from_c, SubclassId from_s, ClassId to_c,
                            SubclassId to_s) {
  assert(CanReleaseSlab(from_c, from_s));
  --slab_count_.at(Index(from_c, from_s));
  ++slab_count_.at(Index(to_c, to_s));
}

bool SlabPool::AcquireSlot(ClassId c, SubclassId s) {
  if (FreeSlots(c, s) == 0) return false;
  ++slots_in_use_.at(Index(c, s));
  return true;
}

void SlabPool::ReleaseSlot(ClassId c, SubclassId s) {
  assert(slots_in_use_.at(Index(c, s)) > 0);
  --slots_in_use_.at(Index(c, s));
}

std::size_t SlabPool::EvictionsNeededToFreeSlab(ClassId c, SubclassId s) const {
  if (SlabCount(c, s) == 0) return 0;
  const std::size_t spp = classes_->SlotsPerSlab(c);
  const std::size_t free = FreeSlots(c, s);
  return free >= spp ? 0 : spp - free;
}

std::size_t SlabPool::ClassSlabCount(ClassId c) const {
  std::size_t total = 0;
  for (SubclassId s = 0; s < num_subclasses_; ++s) total += SlabCount(c, s);
  return total;
}

std::size_t SlabPool::ClassSlotsInUse(ClassId c) const {
  std::size_t total = 0;
  for (SubclassId s = 0; s < num_subclasses_; ++s) total += SlotsInUse(c, s);
  return total;
}

}  // namespace pamakv
