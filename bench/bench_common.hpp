// Shared plumbing for the per-figure bench binaries.
//
// Every bench reproduces one figure of the paper at simulator scale:
// the ETC cache points 24/48/96 MB stand in for the paper's 4/8/16 GB and
// the APP points 128/256/512 MB for 16/32/64 GB (same cache-to-working-set
// pressure; DESIGN.md, substitutions). PAMA_BENCH_SCALE multiplies request
// counts (default 0.25 for quick runs; 1.0 reproduces EXPERIMENTS.md).
#pragma once

#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "pamakv/sim/experiment.hpp"
#include "pamakv/trace/generators.hpp"
#include "pamakv/util/arg_parser.hpp"

namespace pamakv::bench {

inline constexpr Bytes kMB = 1024ULL * 1024;

/// ETC cache points (paper: 4/8/16 GB).
inline constexpr Bytes kEtcCaches[] = {24 * kMB, 48 * kMB, 96 * kMB};
/// APP cache points (paper: 16/32/64 GB). 1 GB at 64 KiB slabs equals the
/// paper's 16 GB at 1 MiB slabs in slab count (16384); the smaller points
/// scale the pressure. Below ~4096 slabs PAMA's 60 subclasses cannot be
/// provisioned at slab granularity, which the paper's sizes never hit.
inline constexpr Bytes kAppCaches[] = {256 * kMB, 512 * kMB, 1024 * kMB};

/// Baseline request counts at scale 1.0.
inline constexpr std::uint64_t kEtcRequests = 6'000'000;
inline constexpr std::uint64_t kAppRequestsPerPass = 3'000'000;

[[nodiscard]] inline std::uint64_t Scaled(std::uint64_t requests,
                                          double scale) {
  const auto scaled = static_cast<std::uint64_t>(
      static_cast<double>(requests) * scale);
  return std::max<std::uint64_t>(scaled, 200'000);
}

/// The four schemes the paper's figures compare.
[[nodiscard]] inline std::vector<std::string> PaperSchemes() {
  return {"memcached", "psa", "pre-pama", "pama"};
}

[[nodiscard]] inline SimConfig DefaultSimConfig() {
  SimConfig cfg;
  cfg.window_gets = 100'000;  // the paper plots per 10^6-GET windows
  cfg.capture_class_slabs = true;
  return cfg;
}

/// ETC trace factory at the given scale.
[[nodiscard]] inline ExperimentRunner::TraceFactory EtcTrace(double scale) {
  return [scale] {
    return std::make_unique<SyntheticTrace>(
        EtcWorkload(Scaled(kEtcRequests, scale)));
  };
}

/// APP trace factory: one pass replayed twice, as in Sec. IV-B.
[[nodiscard]] inline ExperimentRunner::TraceFactory AppTrace(double scale) {
  return [scale] {
    return std::make_unique<RepeatedTrace>(
        std::make_unique<SyntheticTrace>(
            AppWorkload(Scaled(kAppRequestsPerPass, scale))),
        2);
  };
}

/// Prints the standard window series for a batch of results.
inline void PrintWindowSeries(const std::vector<SimResult>& results) {
  bool header = true;
  for (const auto& r : results) {
    WriteWindowCsv(std::cout, r, header);
    header = false;
  }
}

/// Prints a one-line final summary per result.
inline void PrintSummaries(const std::vector<SimResult>& results) {
  for (const auto& r : results) {
    const double per_miss =
        r.final_stats.get_misses
            ? static_cast<double>(r.final_stats.miss_penalty_total_us) /
                  static_cast<double>(r.final_stats.get_misses) / 1000.0
            : 0.0;
    std::fprintf(
        stderr,
        "# %-12s %-4s cache=%4.0fMB hit=%.3f avg=%7.2fms per-miss=%6.1fms "
        "migrations=%lu wall=%.1fs\n",
        r.scheme.c_str(), r.workload.c_str(),
        static_cast<double>(r.cache_bytes) / static_cast<double>(kMB),
        r.overall_hit_ratio, r.overall_avg_service_time_us / 1000.0, per_miss,
        static_cast<unsigned long>(r.final_stats.slab_migrations),
        r.wall_seconds);
  }
}

}  // namespace pamakv::bench
