// Fig. 8 — APP average GET service time over time at the 16/32/64 GB-class
// cache points, trace replayed in the second half.
//
// Expected shape: PAMA clearly lowest; the paper reports PAMA at ~36%/67%
// of Memcached's/PSA's time on the full trace and ~11%/27% in the repeat
// half at 16 GB. The simulator reproduces the ordering and the
// direction of the repeat-half amplification; exact factors depend on the
// miss-penalty distribution of the (proprietary) original traces.
#include "bench_common.hpp"

using namespace pamakv;
using namespace pamakv::bench;

int main(int argc, char** argv) {
  const ArgParser args(argc, argv);
  const double scale = args.GetDouble("scale", BenchScaleFromEnv());

  ExperimentRunner runner(SizeClassConfig{}, SchemeOptions{},
                          DefaultSimConfig());
  std::vector<ExperimentCell> cells;
  for (const Bytes cache : kAppCaches) {
    for (const auto& scheme : PaperSchemes()) cells.push_back({scheme, cache});
  }
  const auto results = runner.RunGrid(cells, AppTrace(scale), "app", 2);
  PrintWindowSeries(results);
  PrintSummaries(results);

  // Ratios over the full run and over the repeat (second) half.
  auto half_avg = [](const SimResult& r) {
    const std::size_t n = r.windows.size();
    double sum = 0.0;
    std::size_t count = 0;
    for (std::size_t i = n / 2; i < n; ++i) {
      sum += r.windows[i].avg_service_time_us;
      ++count;
    }
    return count ? sum / static_cast<double>(count) : 0.0;
  };
  for (const Bytes cache : kAppCaches) {
    const SimResult* pama = nullptr;
    const SimResult* memcached = nullptr;
    const SimResult* psa = nullptr;
    for (const auto& r : results) {
      if (r.cache_bytes != cache) continue;
      if (r.scheme == "pama") pama = &r;
      if (r.scheme == "memcached") memcached = &r;
      if (r.scheme == "psa") psa = &r;
    }
    if (!pama || !memcached || !psa) continue;
    std::fprintf(stderr,
                 "# cache=%4.0fMB full-run: PAMA = %.0f%% of Memcached, "
                 "%.0f%% of PSA | repeat half: %.0f%% / %.0f%%\n",
                 static_cast<double>(cache) / static_cast<double>(kMB),
                 100.0 * pama->overall_avg_service_time_us /
                     memcached->overall_avg_service_time_us,
                 100.0 * pama->overall_avg_service_time_us /
                     psa->overall_avg_service_time_us,
                 100.0 * half_avg(*pama) / half_avg(*memcached),
                 100.0 * half_avg(*pama) / half_avg(*psa));
  }
  return 0;
}
