// Ablation — donor grace period (anti-thrash guard).
//
// DESIGN.md resolution: a subclass that just received a slab has had no
// window to accumulate segment value, so without protection it is always
// the globally cheapest donor and the slab bounces straight back out. The
// paper names slab thrashing as the failure mode its weighted reference
// segments guard against; at simulator scale an explicit grace period is
// also needed. This sweep shows the collapse at grace 0 on the APP
// workload (many active subclasses, deep tails) and the insensitivity to
// the exact grace length once nonzero.
#include "bench_common.hpp"

#include "pamakv/util/csv.hpp"

using namespace pamakv;
using namespace pamakv::bench;

int main(int argc, char** argv) {
  const ArgParser args(argc, argv);
  const double scale = args.GetDouble("scale", BenchScaleFromEnv());
  const Bytes cache = kAppCaches[1];

  CsvWriter csv(std::cout);
  csv.WriteHeader({"grace_accesses", "hit_ratio", "avg_service_ms",
                   "slab_migrations"});

  for (const AccessClock grace : {0, 25'000, 100'000, 400'000}) {
    SchemeOptions options;
    options.pama.donor_grace_accesses = grace;
    ExperimentRunner runner(SizeClassConfig{}, options, DefaultSimConfig());
    auto trace = AppTrace(scale)();
    const auto result = runner.RunOne("pama", cache, *trace, "app");
    csv.WriteRow(grace, result.overall_hit_ratio,
                 result.overall_avg_service_time_us / 1000.0,
                 result.final_stats.slab_migrations);
    std::fprintf(stderr, "# grace=%-7llu hit=%.3f avg=%.2fms migr=%llu\n",
                 static_cast<unsigned long long>(grace),
                 result.overall_hit_ratio,
                 result.overall_avg_service_time_us / 1000.0,
                 static_cast<unsigned long long>(
                     result.final_stats.slab_migrations));
  }
  return 0;
}
