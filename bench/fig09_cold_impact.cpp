// Fig. 9 — impact of a burst of unpopular (cold) items on a 4 GB-class
// cache serving ETC: PSA vs PAMA, each with and without the burst.
//
// Setup per the paper (Sec. IV-C): after ~4.4% of the run's GETs (their
// 0.35x10^8 of 8x10^8), SETs totalling 10% of the cache are injected into
// three adjacent classes and never referenced again.
//
// Expected shape: PSA's hit ratio dips on impact and recovers slowly
// (the impacted classes steal slabs they cannot use well); PAMA barely
// moves — cold items sink to stack bottoms, lowering the impacted
// subclasses' candidate values, so they cannot take others' slabs, and the
// space they did take is reclaimed quickly.
#include "bench_common.hpp"

#include "pamakv/trace/injector.hpp"

using namespace pamakv;
using namespace pamakv::bench;

int main(int argc, char** argv) {
  const ArgParser args(argc, argv);
  const double scale = args.GetDouble("scale", BenchScaleFromEnv());
  const Bytes cache = kEtcCaches[0];
  const std::uint64_t requests = Scaled(kEtcRequests, scale);

  ExperimentRunner runner(SizeClassConfig{}, SchemeOptions{},
                          DefaultSimConfig());

  std::vector<SimResult> results;
  for (const bool with_impact : {false, true}) {
    for (const std::string scheme : {"psa", "pama"}) {
      std::unique_ptr<TraceSource> trace =
          std::make_unique<SyntheticTrace>(EtcWorkload(requests));
      if (with_impact) {
        ColdBurstConfig burst;
        // The paper injects at 0.35x10^8 GETs of 8x10^8 total.
        burst.after_gets = static_cast<std::uint64_t>(
            0.044 * static_cast<double>(requests));
        burst.total_bytes = cache / 10;  // 10% of the cache
        burst.impacted_classes = {0, 1, 2};  // small items: paper-like burst miss intensity
        trace = std::make_unique<ColdBurstInjector>(std::move(trace), burst,
                                                    SizeClassConfig{});
      }
      auto result = runner.RunOne(scheme, cache, *trace, "etc");
      result.scheme = scheme + (with_impact ? "+impact" : "");
      results.push_back(std::move(result));
    }
  }
  PrintWindowSeries(results);
  PrintSummaries(results);

  // Quantify the dip. The burst windows themselves drop mechanically for
  // every scheme (the injected GETs are guaranteed misses); the paper's
  // distinguishing claim is about what happens AFTER: PSA's stolen slabs
  // hold dead items and drain back slowly, while PAMA recovers quickly.
  for (const std::string scheme : {"psa", "pama"}) {
    const SimResult* base = nullptr;
    const SimResult* impact = nullptr;
    for (const auto& r : results) {
      if (r.scheme == scheme) base = &r;
      if (r.scheme == scheme + "+impact") impact = &r;
    }
    double worst_drop = 0.0;
    double post_burst_drop = 0.0;
    double post_burst_slowdown_us = 0.0;
    // The burst starts at ~4.4% of GETs and spans about one further window.
    const std::size_t first_clean_window = 4;
    const std::size_t n = std::min(base->windows.size(), impact->windows.size());
    for (std::size_t i = 0; i < n; ++i) {
      const double drop =
          base->windows[i].hit_ratio - impact->windows[i].hit_ratio;
      worst_drop = std::max(worst_drop, drop);
      if (i >= first_clean_window) {
        post_burst_drop = std::max(post_burst_drop, drop);
        post_burst_slowdown_us =
            std::max(post_burst_slowdown_us,
                     impact->windows[i].avg_service_time_us -
                         base->windows[i].avg_service_time_us);
      }
    }
    std::fprintf(stderr,
                 "# %-5s worst drop %.3f (burst window incl.); post-burst "
                 "drop %.3f, post-burst slowdown %.2f ms\n",
                 scheme.c_str(), worst_drop, post_burst_drop,
                 post_burst_slowdown_us / 1000.0);
  }
  return 0;
}
