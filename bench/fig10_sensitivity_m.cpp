// Fig. 10 — sensitivity of PAMA's average service time to the number of
// reference segments m in {0, 2, 4, 8}, on (a) ETC at the 4 GB-class point
// and (b) APP at the 16 GB-class point.
//
// Expected shape: m = 0 -> 2 gives a visible improvement (the paper sees
// 12-28% on ETC); m = 4 and 8 add little. Large m mostly smooths the value
// estimate.
#include "bench_common.hpp"

#include "pamakv/util/csv.hpp"

using namespace pamakv;
using namespace pamakv::bench;

int main(int argc, char** argv) {
  const ArgParser args(argc, argv);
  const double scale = args.GetDouble("scale", BenchScaleFromEnv());

  CsvWriter csv(std::cout);
  csv.WriteHeader({"workload", "m", "window", "gets_total", "hit_ratio",
                   "avg_service_us"});

  for (const std::string workload : {"etc", "app"}) {
    const Bytes cache = workload == "etc" ? kEtcCaches[0] : kAppCaches[0];
    for (const std::size_t m : {0, 2, 4, 8}) {
      SchemeOptions options;
      options.pama.reference_segments = m;
      ExperimentRunner runner(SizeClassConfig{}, options, DefaultSimConfig());
      auto trace = workload == "etc" ? EtcTrace(scale)() : AppTrace(scale)();
      const auto result = runner.RunOne("pama", cache, *trace, workload);
      for (const auto& w : result.windows) {
        csv.WriteRow(workload, m, w.window_index, w.gets_total, w.hit_ratio,
                     w.avg_service_time_us);
      }
      std::fprintf(stderr, "# %s m=%zu: hit=%.3f avg=%.2fms\n",
                   workload.c_str(), m, result.overall_hit_ratio,
                   result.overall_avg_service_time_us / 1000.0);
    }
  }
  return 0;
}
