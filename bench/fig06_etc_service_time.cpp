// Fig. 6 — ETC average GET service time over time at the 4/8/16 GB-class
// cache points.
//
// Expected shape: PAMA lowest everywhere despite its lower hit ratio; the
// advantage is largest at the smallest cache, where misses are plentiful
// and PAMA steers them onto low-penalty items.
#include "bench_common.hpp"

using namespace pamakv;
using namespace pamakv::bench;

int main(int argc, char** argv) {
  const ArgParser args(argc, argv);
  const double scale = args.GetDouble("scale", BenchScaleFromEnv());

  ExperimentRunner runner(SizeClassConfig{}, SchemeOptions{},
                          DefaultSimConfig());
  std::vector<ExperimentCell> cells;
  for (const Bytes cache : kEtcCaches) {
    for (const auto& scheme : PaperSchemes()) cells.push_back({scheme, cache});
  }
  const auto results = runner.RunGrid(cells, EtcTrace(scale), "etc", 2);
  PrintWindowSeries(results);
  PrintSummaries(results);

  // The figure's headline: PAMA vs the others at each cache point.
  for (const Bytes cache : kEtcCaches) {
    double pama = 0.0;
    double memcached = 0.0;
    double psa = 0.0;
    for (const auto& r : results) {
      if (r.cache_bytes != cache) continue;
      if (r.scheme == "pama") pama = r.overall_avg_service_time_us;
      if (r.scheme == "memcached") memcached = r.overall_avg_service_time_us;
      if (r.scheme == "psa") psa = r.overall_avg_service_time_us;
    }
    std::fprintf(stderr,
                 "# cache=%3.0fMB: PAMA time = %.0f%% of Memcached's, %.0f%% "
                 "of PSA's\n",
                 static_cast<double>(cache) / static_cast<double>(kMB),
                 100.0 * pama / memcached, 100.0 * pama / psa);
  }
  return 0;
}
