// The paper evaluates on ETC and APP and *excludes* USR, SYS and VAR with
// one-line justifications (Sec. IV). This bench reproduces those
// justifications quantitatively:
//   * USR — "two key sizes and almost only one value size": allocation
//     schemes cannot differ when a single class holds all the traffic;
//   * SYS — "very small data set, a 1 GB memory produces almost a 100%
//     hit ratio": nothing to allocate;
//   * VAR — "dominated by update requests": GET service time barely
//     exercises the replacement policy.
#include "bench_common.hpp"

#include "pamakv/util/csv.hpp"

using namespace pamakv;
using namespace pamakv::bench;

int main(int argc, char** argv) {
  const ArgParser args(argc, argv);
  const double scale = args.GetDouble("scale", BenchScaleFromEnv());
  const std::uint64_t requests = Scaled(kEtcRequests / 2, scale);

  CsvWriter csv(std::cout);
  csv.WriteHeader({"workload", "scheme", "hit_ratio", "avg_service_ms",
                   "get_share"});

  ExperimentRunner runner(SizeClassConfig{}, SchemeOptions{},
                          DefaultSimConfig());

  struct Excluded {
    const char* name;
    WorkloadConfig cfg;
    Bytes cache;
  };
  const Excluded workloads[] = {
      {"usr", UsrWorkload(requests), 48 * kMB},
      {"sys", SysWorkload(requests), 16 * kMB},
      {"var", VarWorkload(requests), 48 * kMB},
  };

  for (const auto& w : workloads) {
    double spread_min = 1.0;
    double spread_max = 0.0;
    for (const std::string scheme : {"memcached", "psa", "pama"}) {
      SyntheticTrace trace(w.cfg);
      const auto result = runner.RunOne(scheme, w.cache, trace, w.name);
      const double get_share =
          static_cast<double>(result.final_stats.gets) /
          static_cast<double>(result.requests_replayed);
      csv.WriteRow(w.name, scheme, result.overall_hit_ratio,
                   result.overall_avg_service_time_us / 1000.0, get_share);
      spread_min = std::min(spread_min, result.overall_hit_ratio);
      spread_max = std::max(spread_max, result.overall_hit_ratio);
    }
    std::fprintf(stderr,
                 "# %s: hit-ratio spread across schemes = %.3f — %s\n",
                 w.name, spread_max - spread_min,
                 spread_max - spread_min < 0.05
                     ? "schemes are indistinguishable; exclusion justified"
                     : "schemes differ here");
  }
  return 0;
}
