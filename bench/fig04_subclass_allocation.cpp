// Fig. 4 — PAMA's space allocation across penalty-band subclasses within
// example classes (the paper shows class 0 and class 8) on ETC.
//
// Expected shape: small-item classes lose space from their low-penalty
// subclasses while larger classes' high-penalty subclasses gain, which is
// why PAMA's class-level allocation (Fig. 3d) looks so even.
#include "bench_common.hpp"

#include "pamakv/util/csv.hpp"

using namespace pamakv;
using namespace pamakv::bench;

int main(int argc, char** argv) {
  const ArgParser args(argc, argv);
  const double scale = args.GetDouble("scale", BenchScaleFromEnv());
  const Bytes cache = kEtcCaches[0];

  SimConfig sim_cfg = DefaultSimConfig();
  sim_cfg.capture_subclass_items = true;
  ExperimentRunner runner(SizeClassConfig{}, SchemeOptions{}, sim_cfg);

  auto trace = EtcTrace(scale)();
  auto result = runner.RunOne("pama", cache, *trace, "etc");

  CsvWriter csv(std::cout);
  csv.WriteHeader({"scheme", "window", "class", "subclass", "slabs", "items"});
  const std::uint32_t subs = 5;  // the paper's five penalty bands
  for (const auto& w : result.windows) {
    for (const ClassId cls : {ClassId{0}, ClassId{8}}) {
      const std::size_t base = static_cast<std::size_t>(cls) * subs;
      if (base + subs > w.subclass_slabs.size()) continue;
      for (std::uint32_t s = 0; s < subs; ++s) {
        csv.WriteRow(result.scheme, w.window_index, cls, s,
                     w.subclass_slabs[base + s], w.subclass_items[base + s]);
      }
    }
  }
  PrintSummaries({result});
  return 0;
}
