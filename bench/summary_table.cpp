// Summary table — the paper's in-text quantitative claims in one place:
// final hit ratio, average service time and per-miss penalty for every
// scheme (including the ones the paper discusses but does not plot) on the
// headline ETC and APP points, plus the PAMA-vs-baseline time ratios.
#include "bench_common.hpp"

#include "pamakv/util/csv.hpp"

using namespace pamakv;
using namespace pamakv::bench;

int main(int argc, char** argv) {
  const ArgParser args(argc, argv);
  const double scale = args.GetDouble("scale", BenchScaleFromEnv());
  const bool with_extensions = args.GetBool("extensions", true);

  std::vector<std::string> schemes = {"memcached", "psa",      "twemcache",
                                      "facebook-age", "pre-pama", "pama"};
  if (with_extensions) {
    schemes.push_back("pama-exact");
    schemes.push_back("lama-hr");
    schemes.push_back("lama-st");
  }

  CsvWriter csv(std::cout);
  csv.WriteHeader({"workload", "scheme", "cache_mb", "hit_ratio",
                   "avg_service_ms", "per_miss_ms", "evictions",
                   "slab_migrations"});

  ExperimentRunner runner(SizeClassConfig{}, SchemeOptions{},
                          DefaultSimConfig());

  for (const std::string workload : {"etc", "app"}) {
    const Bytes cache = workload == "etc" ? kEtcCaches[1] : kAppCaches[1];
    std::vector<ExperimentCell> cells;
    for (const auto& scheme : schemes) cells.push_back({scheme, cache});
    const auto results = runner.RunGrid(
        cells, workload == "etc" ? EtcTrace(scale) : AppTrace(scale),
        workload, 2);

    double memcached_time = 0.0;
    double psa_time = 0.0;
    double pama_time = 0.0;
    for (const auto& r : results) {
      const double per_miss =
          r.final_stats.get_misses
              ? static_cast<double>(r.final_stats.miss_penalty_total_us) /
                    static_cast<double>(r.final_stats.get_misses) / 1000.0
              : 0.0;
      csv.WriteRow(workload, r.scheme,
                   static_cast<double>(cache) / static_cast<double>(kMB),
                   r.overall_hit_ratio,
                   r.overall_avg_service_time_us / 1000.0, per_miss,
                   r.final_stats.evictions, r.final_stats.slab_migrations);
      if (r.scheme == "memcached") memcached_time = r.overall_avg_service_time_us;
      if (r.scheme == "psa") psa_time = r.overall_avg_service_time_us;
      if (r.scheme == "pama") pama_time = r.overall_avg_service_time_us;
    }
    std::fprintf(stderr,
                 "# %s: PAMA service time = %.0f%% of Memcached's, %.0f%% of "
                 "PSA's (paper reports 36%%/67%% for APP@16GB full run)\n",
                 workload.c_str(), 100.0 * pama_time / memcached_time,
                 100.0 * pama_time / psa_time);
  }
  return 0;
}
