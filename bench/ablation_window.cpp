// Ablation — value-window length and cross-window decay.
//
// The paper keeps per-window (tumbling) segment values and warns that
// fast-changing values cause slab thrashing. At simulator scale (64 KiB
// slabs) a pure reset leaves most candidate values at zero, which makes
// the min-outgoing donor effectively random; carrying a decayed fraction
// across windows densifies the signal (DESIGN.md, resolution 4). This
// sweep shows both effects: decay 0 (the literal paper rule) vs
// exponential carry-over, across window lengths.
#include "bench_common.hpp"

#include "pamakv/util/csv.hpp"

using namespace pamakv;
using namespace pamakv::bench;

int main(int argc, char** argv) {
  const ArgParser args(argc, argv);
  const double scale = args.GetDouble("scale", BenchScaleFromEnv());
  const Bytes cache = kEtcCaches[0];

  CsvWriter csv(std::cout);
  csv.WriteHeader({"window_accesses", "value_decay", "hit_ratio",
                   "avg_service_ms", "slab_migrations"});

  for (const AccessClock window : {25'000, 100'000, 400'000}) {
    for (const double decay : {0.0, 0.5, 0.9}) {
      SchemeOptions options;
      options.pama.window_accesses = window;
      options.pama.value_decay = decay;
      ExperimentRunner runner(SizeClassConfig{}, options, DefaultSimConfig());
      auto trace = EtcTrace(scale)();
      const auto result = runner.RunOne("pama", cache, *trace, "etc");
      csv.WriteRow(window, decay, result.overall_hit_ratio,
                   result.overall_avg_service_time_us / 1000.0,
                   result.final_stats.slab_migrations);
      std::fprintf(stderr,
                   "# window=%-7llu decay=%.1f hit=%.3f avg=%.2fms migr=%llu\n",
                   static_cast<unsigned long long>(window), decay,
                   result.overall_hit_ratio,
                   result.overall_avg_service_time_us / 1000.0,
                   static_cast<unsigned long long>(
                       result.final_stats.slab_migrations));
    }
  }
  return 0;
}
