// Ablation — exact-rank vs Bloom-filter segment attribution.
//
// The paper's third design challenge is making segment-membership tests
// O(1); its answer is per-segment Bloom filters plus a removal filter.
// This ablation quantifies what the approximation costs: end metrics of
// "pama" (Bloom) vs "pama-exact" (order-statistic ranks) across Bloom
// false-positive-rate targets, plus the filters' memory footprint.
#include "bench_common.hpp"

#include "pamakv/util/csv.hpp"

#include "pamakv/policy/pama.hpp"

using namespace pamakv;
using namespace pamakv::bench;

int main(int argc, char** argv) {
  const ArgParser args(argc, argv);
  const double scale = args.GetDouble("scale", BenchScaleFromEnv());
  const Bytes cache = kEtcCaches[1];

  CsvWriter csv(std::cout);
  csv.WriteHeader({"mode", "bloom_fpr", "hit_ratio", "avg_service_ms",
                   "slab_migrations", "filter_bytes"});

  auto run = [&](const std::string& scheme, double fpr) {
    SchemeOptions options;
    options.pama.bloom_fpr = fpr;
    auto engine = MakeEngine(scheme, cache, SizeClassConfig{}, options);
    auto trace = EtcTrace(scale)();
    Simulator sim(DefaultSimConfig());
    const auto result = sim.Run(*engine, *trace);
    const auto* pama = dynamic_cast<const PamaPolicy*>(&engine->policy());
    csv.WriteRow(scheme, fpr, result.overall_hit_ratio,
                 result.overall_avg_service_time_us / 1000.0,
                 result.final_stats.slab_migrations,
                 pama->tracker().FilterFootprintBytes());
    std::fprintf(stderr, "# %-10s fpr=%.3f hit=%.3f avg=%.2fms filters=%zuKB\n",
                 scheme.c_str(), fpr, result.overall_hit_ratio,
                 result.overall_avg_service_time_us / 1000.0,
                 pama->tracker().FilterFootprintBytes() / 1024);
  };

  run("pama-exact", 0.0);
  for (const double fpr : {0.001, 0.01, 0.05, 0.2}) run("pama", fpr);
  return 0;
}
