// Ablation — number of penalty-band subclasses.
//
// The paper fixes five bands ((0,1ms] .. (1s,5s]). This sweep varies the
// band count: 1 band makes PAMA penalty-aware only through ghost values;
// more bands separate items of different miss cost into their own LRU
// stacks at the price of more stacks and more slab fragmentation.
#include "bench_common.hpp"

#include "pamakv/util/csv.hpp"

using namespace pamakv;
using namespace pamakv::bench;

int main(int argc, char** argv) {
  const ArgParser args(argc, argv);
  const double scale = args.GetDouble("scale", BenchScaleFromEnv());
  const Bytes cache = kEtcCaches[1];

  struct BandSet {
    const char* name;
    std::vector<MicroSecs> bounds;
  };
  const BandSet sets[] = {
      {"1-band", {5'000'000}},
      {"2-bands", {100'000, 5'000'000}},
      {"3-bands", {10'000, 1'000'000, 5'000'000}},
      {"5-bands(paper)", {1'000, 10'000, 100'000, 1'000'000, 5'000'000}},
      {"8-bands",
       {500, 2'000, 10'000, 50'000, 200'000, 1'000'000, 2'500'000, 5'000'000}},
  };

  CsvWriter csv(std::cout);
  csv.WriteHeader({"bands", "hit_ratio", "avg_service_ms", "per_miss_ms",
                   "slab_migrations"});

  for (const auto& set : sets) {
    SchemeOptions options;
    options.pama_bands = set.bounds;
    ExperimentRunner runner(SizeClassConfig{}, options, DefaultSimConfig());
    auto trace = EtcTrace(scale)();
    const auto result = runner.RunOne("pama", cache, *trace, "etc");
    const double per_miss =
        static_cast<double>(result.final_stats.miss_penalty_total_us) /
        static_cast<double>(result.final_stats.get_misses) / 1000.0;
    csv.WriteRow(set.name, result.overall_hit_ratio,
                 result.overall_avg_service_time_us / 1000.0, per_miss,
                 result.final_stats.slab_migrations);
    std::fprintf(stderr, "# %-15s hit=%.3f avg=%.2fms per-miss=%.1fms\n",
                 set.name, result.overall_hit_ratio,
                 result.overall_avg_service_time_us / 1000.0, per_miss);
  }
  return 0;
}
