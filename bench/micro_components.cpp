// Microbenchmarks (google-benchmark) for the per-request building blocks:
// order-statistic LRU stack, ghost list, Bloom filters, hash index, Zipf
// sampling, and the full engine GET/SET path. These bound the simulator's
// cost per operation and document the O(log n) / O(1) claims.
#include <benchmark/benchmark.h>

#include "pamakv/bloom/bloom_filter.hpp"
#include "pamakv/cache/hash_index.hpp"
#include "pamakv/ds/ghost_list.hpp"
#include "pamakv/ds/lru_stack.hpp"
#include "pamakv/sim/experiment.hpp"
#include "pamakv/trace/generators.hpp"
#include "pamakv/util/rng.hpp"
#include "pamakv/util/zipf.hpp"

namespace pamakv {
namespace {

void BM_LruStackPushErase(benchmark::State& state) {
  LruStack stack;
  std::vector<LruStack::Node*> nodes;
  const auto n = static_cast<std::size_t>(state.range(0));
  for (ItemHandle i = 0; i < n; ++i) nodes.push_back(stack.PushTop(i));
  Rng rng(1);
  for (auto _ : state) {
    const std::size_t i = rng.NextBounded(nodes.size());
    stack.MoveToTop(nodes[i]);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LruStackPushErase)->Arg(1'000)->Arg(100'000)->Arg(1'000'000);

void BM_LruStackRank(benchmark::State& state) {
  LruStack stack;
  std::vector<LruStack::Node*> nodes;
  const auto n = static_cast<std::size_t>(state.range(0));
  for (ItemHandle i = 0; i < n; ++i) nodes.push_back(stack.PushTop(i));
  Rng rng(2);
  std::size_t sum = 0;
  for (auto _ : state) {
    sum += stack.RankFromBottom(nodes[rng.NextBounded(nodes.size())]);
  }
  benchmark::DoNotOptimize(sum);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LruStackRank)->Arg(1'000)->Arg(100'000)->Arg(1'000'000);

void BM_GhostListPushLookup(benchmark::State& state) {
  GhostList ghost(static_cast<std::size_t>(state.range(0)));
  Rng rng(3);
  for (auto _ : state) {
    const KeyId key = rng.NextBounded(1 << 20);
    ghost.Push(key, 1000);
    benchmark::DoNotOptimize(ghost.Lookup(rng.NextBounded(1 << 20)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GhostListPushLookup)->Arg(1'024)->Arg(16'384);

void BM_BloomAddQuery(benchmark::State& state) {
  BloomFilter filter(static_cast<std::size_t>(state.range(0)), 0.01);
  Rng rng(4);
  bool hit = false;
  for (auto _ : state) {
    const KeyId key = rng.NextBounded(1 << 22);
    filter.Add(key);
    hit ^= filter.MayContain(key + 1);
  }
  benchmark::DoNotOptimize(hit);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BloomAddQuery)->Arg(4'096)->Arg(65'536);

void BM_HashIndexChurn(benchmark::State& state) {
  HashIndex index;
  Rng rng(5);
  for (auto _ : state) {
    const KeyId key = rng.NextBounded(1 << 20);
    index.Upsert(key, 1);
    benchmark::DoNotOptimize(index.Find(key ^ 1));
    if ((key & 7) == 0) index.Erase(key);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HashIndexChurn);

void BM_ZipfSample(benchmark::State& state) {
  ZipfSampler zipf(1'000'000, 1.0);
  Rng rng(6);
  std::uint64_t sum = 0;
  for (auto _ : state) sum += zipf.Sample(rng);
  benchmark::DoNotOptimize(sum);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ZipfSample);

void BM_EngineGetSet(benchmark::State& state) {
  const std::string scheme = state.range(0) == 0 ? "memcached" : "pama";
  auto engine = MakeEngine(scheme, 64ULL * 1024 * 1024, SizeClassConfig{});
  auto cfg = EtcWorkload(1'000'000);
  SyntheticTrace trace(cfg);
  Request request;
  for (auto _ : state) {
    if (!trace.Next(request)) {
      trace.Reset();
      trace.Next(request);
    }
    if (request.op == Op::kGet) {
      const auto r = engine->Get(request.key, request.size, request.penalty_us);
      if (!r.hit) engine->Set(request.key, request.size, request.penalty_us);
    } else if (request.op == Op::kSet) {
      engine->Set(request.key, request.size, request.penalty_us);
    } else {
      engine->Del(request.key);
    }
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(scheme);
}
BENCHMARK(BM_EngineGetSet)->Arg(0)->Arg(1);

}  // namespace
}  // namespace pamakv

BENCHMARK_MAIN();
