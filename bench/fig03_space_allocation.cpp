// Fig. 3 — per-class slab allocation over time in a 4 GB-class cache under
// (a) original Memcached, (b) PSA, (c) pre-PAMA and (d) PAMA, on ETC.
//
// Expected shapes: Memcached freezes its warm-up allocation; PSA lets
// class 0 grab the bulk of the cache; pre-PAMA does the same more
// gradually; PAMA spreads space far more evenly because high-penalty
// subclasses of larger classes retain slabs.
#include "bench_common.hpp"

using namespace pamakv;
using namespace pamakv::bench;

int main(int argc, char** argv) {
  const ArgParser args(argc, argv);
  const double scale = args.GetDouble("scale", BenchScaleFromEnv());
  const Bytes cache = kEtcCaches[0];  // the paper's 4 GB point

  ExperimentRunner runner(SizeClassConfig{}, SchemeOptions{},
                          DefaultSimConfig());
  std::vector<ExperimentCell> cells;
  for (const auto& scheme : PaperSchemes()) cells.push_back({scheme, cache});

  const auto results = runner.RunGrid(cells, EtcTrace(scale), "etc", 2);

  bool header = true;
  for (const auto& r : results) {
    WriteClassSlabCsv(std::cout, r, header);
    header = false;
  }
  PrintSummaries(results);
  return 0;
}
