// Replay throughput: serial Simulator vs. ParallelSimulator at 1/2/4/8
// shards on the same Zipf-like ETC trace, reporting aggregate Mops/s.
//
// Unlike the figure benches this one tracks the simulator itself, not the
// paper: it writes BENCH_throughput.json at the repo root (machine-readable
// perf trajectory for subsequent PRs) and results/bench_throughput.csv.
// The trace is materialized up front (VectorTrace) so the producer thread
// measures routing + replay, not synthetic-trace generation.
//
// Scaling expectation: per-shard results are byte-identical to serial
// replay of that shard's sub-trace, so speedup is pure wall-clock and is
// bounded by the hardware thread count (reported in the JSON).

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "pamakv/sim/parallel_simulator.hpp"
#include "pamakv/sim/simulator.hpp"

namespace pamakv::bench {
namespace {

struct Row {
  std::string mode;  // "serial" or "parallel"
  std::size_t shards = 1;
  std::uint64_t requests = 0;
  double wall_seconds = 0.0;
  double mops = 0.0;
  double speedup_vs_serial = 0.0;
  double hit_ratio = 0.0;
  double avg_service_time_us = 0.0;
};

constexpr std::uint64_t kAggregateWindowGets = 200'000;

SimConfig ThroughputSimConfig(std::size_t shards) {
  SimConfig cfg;
  // Per-shard windows mirroring one aggregate window of GETs.
  cfg.window_gets = std::max<std::uint64_t>(kAggregateWindowGets / shards, 1);
  cfg.capture_class_slabs = false;
  return cfg;
}

Row Measure(const std::string& mode, std::size_t shards, int reps,
            const ParallelSimulator::EngineFactory& factory, Bytes capacity,
            const VectorTrace& trace) {
  Row row;
  row.mode = mode;
  row.shards = shards;
  for (int rep = 0; rep < reps; ++rep) {
    VectorTrace replay = trace;  // fresh single-pass source per rep
    SimResult result;
    if (mode == "serial") {
      auto engine = factory(capacity);
      result = Simulator(ThroughputSimConfig(1)).Run(*engine, replay);
      result.workload = "etc";
    } else {
      ParallelSimConfig cfg;
      cfg.sim = ThroughputSimConfig(shards);
      cfg.shards = shards;
      result = ParallelSimulator(cfg).Run(factory, capacity, replay, "etc")
                   .aggregate;
    }
    const double mops = static_cast<double>(result.requests_replayed) /
                        result.wall_seconds / 1e6;
    if (mops > row.mops) {  // best-of-reps damps scheduler noise
      row.mops = mops;
      row.wall_seconds = result.wall_seconds;
    }
    row.requests = result.requests_replayed;
    row.hit_ratio = result.overall_hit_ratio;
    row.avg_service_time_us = result.overall_avg_service_time_us;
  }
  return row;
}

void WriteCsv(std::ostream& out, const std::vector<Row>& rows) {
  out << "mode,shards,requests,wall_seconds,mops,speedup_vs_serial,"
         "hit_ratio,avg_service_time_us\n";
  for (const auto& r : rows) {
    char line[256];
    std::snprintf(line, sizeof line, "%s,%zu,%llu,%.4f,%.4f,%.3f,%.4f,%.2f\n",
                  r.mode.c_str(), r.shards,
                  static_cast<unsigned long long>(r.requests), r.wall_seconds,
                  r.mops, r.speedup_vs_serial, r.hit_ratio,
                  r.avg_service_time_us);
    out << line;
  }
}

void WriteJson(std::ostream& out, const std::string& scheme,
               std::uint64_t requests, double scale,
               const std::vector<Row>& rows) {
  char buf[512];
  out << "{\n";
  std::snprintf(buf, sizeof buf,
                "  \"bench\": \"bench_throughput\",\n"
                "  \"scheme\": \"%s\",\n"
                "  \"workload\": \"etc\",\n"
                "  \"requests\": %llu,\n"
                "  \"scale\": %.3f,\n"
                "  \"hardware_threads\": %u,\n"
                "  \"runs\": [\n",
                scheme.c_str(), static_cast<unsigned long long>(requests),
                scale, std::thread::hardware_concurrency());
  out << buf;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::snprintf(buf, sizeof buf,
                  "    {\"mode\": \"%s\", \"shards\": %zu, "
                  "\"wall_seconds\": %.4f, \"mops\": %.4f, "
                  "\"speedup_vs_serial\": %.3f, \"hit_ratio\": %.4f, "
                  "\"avg_service_time_us\": %.2f}%s\n",
                  r.mode.c_str(), r.shards, r.wall_seconds, r.mops,
                  r.speedup_vs_serial, r.hit_ratio, r.avg_service_time_us,
                  i + 1 < rows.size() ? "," : "");
    out << buf;
  }
  out << "  ]\n}\n";
}

int Main(int argc, char** argv) {
  const ArgParser args(argc, argv);
  const double scale = BenchScaleFromEnv(0.5);
  const auto requests = Scaled(4'000'000, scale);
  const auto capacity = static_cast<Bytes>(64 * kMB);
  const auto reps = static_cast<int>(args.GetInt("reps", 2));
  const std::string scheme = args.GetString("scheme", "pama");
  const std::string root = args.GetString("out-root", PAMAKV_REPO_ROOT);

  const ParallelSimulator::EngineFactory factory = [&](Bytes bytes) {
    return MakeEngine(scheme, bytes, SizeClassConfig{});
  };

  std::fprintf(stderr, "# materializing %llu-request ETC (Zipf) trace...\n",
               static_cast<unsigned long long>(requests));
  SyntheticTrace source(EtcWorkload(requests));
  const VectorTrace trace = VectorTrace::Materialize(source);

  std::vector<Row> rows;
  rows.push_back(Measure("serial", 1, reps, factory, capacity, trace));
  const double serial_mops = rows.front().mops;
  for (const std::size_t shards : {1u, 2u, 4u, 8u}) {
    rows.push_back(Measure("parallel", shards, reps, factory, capacity, trace));
    rows.back().speedup_vs_serial = rows.back().mops / serial_mops;
  }
  rows.front().speedup_vs_serial = 1.0;

  for (const auto& r : rows) {
    std::fprintf(stderr,
                 "# %-8s shards=%zu wall=%6.2fs %7.3f Mops/s "
                 "speedup=%.2fx hit=%.3f avg=%.1fus\n",
                 r.mode.c_str(), r.shards, r.wall_seconds, r.mops,
                 r.speedup_vs_serial, r.hit_ratio, r.avg_service_time_us);
  }

  const auto json_path = std::filesystem::path(root) / "BENCH_throughput.json";
  const auto csv_path =
      std::filesystem::path(root) / "results" / "bench_throughput.csv";
  std::filesystem::create_directories(csv_path.parent_path());
  std::ofstream json(json_path);
  WriteJson(json, scheme, requests, scale, rows);
  std::ofstream csv(csv_path);
  WriteCsv(csv, rows);
  WriteCsv(std::cout, rows);  // stdout mirrors the CSV like the other benches
  std::fprintf(stderr, "# wrote %s and %s\n", json_path.string().c_str(),
               csv_path.string().c_str());
  return 0;
}

}  // namespace
}  // namespace pamakv::bench

int main(int argc, char** argv) {
  try {
    return pamakv::bench::Main(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_throughput: %s\n", e.what());
    return 1;
  }
}
