// Fig. 5 — ETC hit ratio over time at the 4/8/16 GB-class cache points for
// Memcached, PSA, pre-PAMA and PAMA.
//
// Expected shape: pre-PAMA highest, PSA close behind, PAMA below both
// (it deliberately trades hit ratio), original Memcached lowest; the
// ordering tightens as the cache grows.
#include "bench_common.hpp"

using namespace pamakv;
using namespace pamakv::bench;

int main(int argc, char** argv) {
  const ArgParser args(argc, argv);
  const double scale = args.GetDouble("scale", BenchScaleFromEnv());

  ExperimentRunner runner(SizeClassConfig{}, SchemeOptions{},
                          DefaultSimConfig());
  std::vector<ExperimentCell> cells;
  for (const Bytes cache : kEtcCaches) {
    for (const auto& scheme : PaperSchemes()) cells.push_back({scheme, cache});
  }
  const auto results = runner.RunGrid(cells, EtcTrace(scale), "etc", 2);
  PrintWindowSeries(results);
  PrintSummaries(results);
  return 0;
}
