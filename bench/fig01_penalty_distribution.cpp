// Fig. 1 — miss penalties of GET requests for KV items of different sizes.
//
// The paper plots one point per (item size, miss penalty) pair observed in
// the APP trace: penalties spread from milliseconds to seconds at every
// size, with a 5-second cap and a visible 100 ms default line. This bench
// samples the synthetic APP key population, prints a point cloud
// (subsampled) and per-size-decade penalty percentiles so the shape can be
// compared directly.
#include <cmath>

#include "bench_common.hpp"
#include "pamakv/util/csv.hpp"
#include "pamakv/util/histogram.hpp"

using namespace pamakv;

int main(int argc, char** argv) {
  const ArgParser args(argc, argv);
  const auto keys =
      static_cast<std::uint64_t>(args.GetInt("keys", 200'000));

  auto cfg = AppWorkload(1'000'000);
  const SyntheticTrace trace(cfg);

  CsvWriter csv(std::cout);
  csv.WriteHeader({"size_bytes", "penalty_us"});
  // Point cloud: every 37th key keeps output manageable while covering the
  // whole population deterministically.
  for (KeyId k = 0; k < keys; k += 37) {
    csv.WriteRow(trace.SizeOfKey(k), trace.PenaltyOfKey(k));
  }

  // Per-size-decade percentile summary (the figure's visual envelope).
  struct Decade {
    double lo, hi;
    std::vector<double> penalties;
  };
  std::vector<Decade> decades;
  for (double lo = 1.0; lo < 65536.0; lo *= 8.0) {
    decades.push_back({lo, lo * 8.0, {}});
  }
  std::uint64_t capped = 0;
  std::uint64_t defaulted = 0;
  for (KeyId k = 0; k < keys; ++k) {
    const auto size = static_cast<double>(trace.SizeOfKey(k));
    const auto penalty = static_cast<double>(trace.PenaltyOfKey(k));
    if (penalty >= 5'000'000.0) ++capped;
    if (penalty == 100'000.0) ++defaulted;
    for (auto& d : decades) {
      if (size >= d.lo && size < d.hi) {
        d.penalties.push_back(penalty);
        break;
      }
    }
  }
  std::fprintf(stderr,
               "# Fig.1 summary: %llu keys, %.2f%% at the 5 s cap, %.2f%% at "
               "the 100 ms default\n",
               static_cast<unsigned long long>(keys),
               100.0 * static_cast<double>(capped) / static_cast<double>(keys),
               100.0 * static_cast<double>(defaulted) / static_cast<double>(keys));
  std::fprintf(stderr, "# %-18s %10s %10s %10s %10s\n", "size-range", "p10(ms)",
               "p50(ms)", "p90(ms)", "p99(ms)");
  for (auto& d : decades) {
    if (d.penalties.empty()) continue;
    std::fprintf(stderr, "# %8.0f-%-9.0f %10.2f %10.2f %10.2f %10.2f\n", d.lo,
                 d.hi, ExactQuantile(d.penalties, 0.10) / 1000.0,
                 ExactQuantile(d.penalties, 0.50) / 1000.0,
                 ExactQuantile(d.penalties, 0.90) / 1000.0,
                 ExactQuantile(d.penalties, 0.99) / 1000.0);
  }
  return 0;
}
