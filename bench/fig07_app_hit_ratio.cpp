// Fig. 7 — APP hit ratio over time at the 16/32/64 GB-class cache points,
// with the trace replayed in the second half (Sec. IV-B: the repeat
// removes cold misses and highlights the schemes' differences).
//
// Expected shape: pre-PAMA/PSA best and improving in the repeat half;
// PAMA below them; Memcached flat and lowest of the reallocators' group.
#include "bench_common.hpp"

using namespace pamakv;
using namespace pamakv::bench;

int main(int argc, char** argv) {
  const ArgParser args(argc, argv);
  const double scale = args.GetDouble("scale", BenchScaleFromEnv());

  ExperimentRunner runner(SizeClassConfig{}, SchemeOptions{},
                          DefaultSimConfig());
  std::vector<ExperimentCell> cells;
  for (const Bytes cache : kAppCaches) {
    for (const auto& scheme : PaperSchemes()) cells.push_back({scheme, cache});
  }
  const auto results = runner.RunGrid(cells, AppTrace(scale), "app", 2);
  PrintWindowSeries(results);
  PrintSummaries(results);
  return 0;
}
