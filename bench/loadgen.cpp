// loadgen: closed-loop memcached-protocol load generator for pamakv-server.
//
// N worker threads, one blocking connection each, drive a Zipf key stream:
// every op is a GET; a miss is followed by a SET of the same key
// (write-allocate, matching the simulator's discipline), and --set-ratio
// adds blind writes. Sizes and penalties are pure functions of the key
// (the penalty rides the flags field), so PAMA's bands see a stable
// penalty distribution. Per-op latency is sampled with the steady clock;
// results go to BENCH_server.json + results/bench_server.csv at the repo
// root, in the BENCH_throughput.json style (machine-readable trajectory
// for subsequent PRs).
//
// The server is external by design (measure real sockets, not an
// in-process shortcut):
//   build/server/pamakv-server --policy=pama --port=11311 &
//   build/bench/loadgen --port=11311 --connections=1,4 --ops=200000

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <limits>
#include <map>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "pamakv/net/client.hpp"
#include "pamakv/util/types.hpp"
#include "pamakv/util/arg_parser.hpp"
#include "pamakv/util/histogram.hpp"
#include "pamakv/util/metrics.hpp"
#include "pamakv/util/rng.hpp"
#include "pamakv/util/zipf.hpp"

namespace pamakv::bench {
namespace {

struct RunResult {
  std::size_t connections = 0;
  std::uint64_t ops = 0;
  std::uint64_t gets = 0;
  std::uint64_t get_hits = 0;
  std::uint64_t sets = 0;
  double wall_seconds = 0.0;
  double kops = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double max_us = 0.0;
  double hit_ratio = 0.0;
  std::uint64_t errors = 0;  ///< connection-level ClientErrors survived
  // Server-side service-time quantiles for this phase, from diffing the
  // Prometheus endpoint's cumulative pamakv_service_time_us buckets
  // before/after the run. 0 when --metrics-port was not given.
  bool have_server_latency = false;
  double server_p50_us = 0.0;
  double server_p99_us = 0.0;
  double server_p999_us = 0.0;
};

struct WorkerConfig {
  std::string host;
  std::uint16_t port = 0;
  std::uint64_t warmup_ops = 0;
  std::uint64_t measured_ops = 0;
  std::uint64_t key_space = 0;
  double set_ratio = 0.0;
};

/// Size (bytes) and penalty (µs, carried via flags) as pure functions of
/// the key, spanning several size classes and all five penalty bands.
Bytes SizeOf(std::uint64_t key) { return 64 + (Mix64(key) & 2047); }
std::uint32_t PenaltyOf(std::uint64_t key) {
  // Log-uniform-ish over [500µs, ~4.6s]: covers every paper band.
  const std::uint64_t h = Mix64(key ^ 0x9e3779b97f4a7c15ULL);
  const double unit = static_cast<double>(h >> 11) / 9007199254740992.0;
  return static_cast<std::uint32_t>(500.0 * std::pow(9210.0, unit));
}

void MakeValue(std::string& value, std::uint64_t key) {
  value.assign(SizeOf(key), static_cast<char>('a' + (key % 26)));
}

/// Reconnects with exponential backoff + jitter. A server shedding load
/// (fd exhaustion, max-conns, drain) recovers fastest when clients ease
/// off instead of hammering the listen queue in lockstep.
void ReconnectWithBackoff(net::BlockingClient& client,
                          const WorkerConfig& cfg, Rng& rng) {
  constexpr int kMaxAttempts = 10;
  for (int attempt = 0;; ++attempt) {
    try {
      client.Connect(cfg.host, cfg.port);
      return;
    } catch (const std::exception&) {
      if (attempt + 1 >= kMaxAttempts) throw;
      const double jitter = 0.5 + rng.NextDouble();  // 0.5x .. 1.5x
      const double delay_ms =
          static_cast<double>(1U << (attempt < 7 ? attempt : 7)) * jitter;
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(delay_ms));
    }
  }
}

void Worker(const WorkerConfig& cfg, const ZipfSampler& zipf,
            std::uint64_t seed, std::vector<double>& latencies_us,
            RunResult& out) {
  net::BlockingClient client;
  client.Connect(cfg.host, cfg.port);
  Rng rng(seed);
  std::string key, value, fetched;
  latencies_us.reserve(cfg.measured_ops);

  const auto run_ops = [&](std::uint64_t n, bool measure) {
    for (std::uint64_t i = 0; i < n; ++i) {
      const std::uint64_t k = zipf.Sample(rng);
      key.assign("key:");
      key.append(std::to_string(k));
      const bool blind_set = rng.NextDouble() < cfg.set_ratio;
      const auto start = std::chrono::steady_clock::now();
      try {
        if (blind_set) {
          MakeValue(value, k);
          client.Set(key, PenaltyOf(k), value);
          if (measure) ++out.sets;
        } else {
          if (measure) ++out.gets;
          const bool hit = client.Get(key, fetched);
          if (hit) {
            if (measure) ++out.get_hits;
          } else {
            // Write-allocate: a miss is immediately followed by a SET of
            // the same key, as the paper assumes.
            MakeValue(value, k);
            client.Set(key, PenaltyOf(k), value);
            if (measure) ++out.sets;
          }
        }
      } catch (const net::ClientError& e) {
        // Connection-level errors (idle reap, max-conns shed, drain,
        // reset) are a survivable part of measuring a server with
        // lifecycle limits on: reconnect and keep driving. A protocol
        // error means one end has a bug — that must surface.
        if (e.kind() == net::ClientError::Kind::kProtocol) throw;
        if (measure) ++out.errors;
        client.Close();
        ReconnectWithBackoff(client, cfg, rng);
        continue;
      }
      if (measure) {
        const auto end = std::chrono::steady_clock::now();
        latencies_us.push_back(
            std::chrono::duration<double, std::micro>(end - start).count());
        ++out.ops;
      }
    }
  };
  run_ops(cfg.warmup_ops, false);
  run_ops(cfg.measured_ops, true);
}

RunResult Measure(const WorkerConfig& base, std::size_t connections,
                  const ZipfSampler& zipf, std::uint64_t total_ops) {
  WorkerConfig cfg = base;
  cfg.measured_ops = total_ops / connections;
  cfg.warmup_ops = base.warmup_ops / connections;

  std::vector<std::vector<double>> latencies(connections);
  std::vector<RunResult> partial(connections);
  std::vector<std::thread> threads;
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t c = 0; c < connections; ++c) {
    threads.emplace_back(Worker, cfg, std::cref(zipf), 1000 + 7 * c,
                         std::ref(latencies[c]), std::ref(partial[c]));
  }
  for (auto& t : threads) t.join();
  const auto end = std::chrono::steady_clock::now();

  RunResult result;
  result.connections = connections;
  std::vector<double> all;
  for (std::size_t c = 0; c < connections; ++c) {
    result.ops += partial[c].ops;
    result.gets += partial[c].gets;
    result.get_hits += partial[c].get_hits;
    result.sets += partial[c].sets;
    result.errors += partial[c].errors;
    all.insert(all.end(), latencies[c].begin(), latencies[c].end());
  }
  result.wall_seconds = std::chrono::duration<double>(end - start).count();
  result.kops = static_cast<double>(result.ops) / result.wall_seconds / 1e3;
  result.hit_ratio = result.gets > 0
                         ? static_cast<double>(result.get_hits) /
                               static_cast<double>(result.gets)
                         : 0.0;
  if (!all.empty()) {
    result.max_us = *std::max_element(all.begin(), all.end());
    result.p50_us = ExactQuantile(all, 0.5);
    result.p99_us = ExactQuantile(std::move(all), 0.99);
  }
  return result;
}

// ---- Prometheus endpoint scraping (server-side latency) ----

/// One HTTP/1.0 GET; returns the response body ("" on any failure — the
/// bench then simply reports no server-side quantiles for the phase).
std::string HttpGetBody(const std::string& host, std::uint16_t port,
                        const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return "";
  }
  const std::string req = "GET " + path + " HTTP/1.0\r\n\r\n";
  std::size_t sent = 0;
  while (sent < req.size()) {
    const ssize_t n = ::send(fd, req.data() + sent, req.size() - sent, 0);
    if (n <= 0) {
      ::close(fd);
      return "";
    }
    sent += static_cast<std::size_t>(n);
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  const auto split = response.find("\r\n\r\n");
  if (split == std::string::npos || response.compare(0, 9, "HTTP/1.0 ") != 0 ||
      response.compare(9, 3, "200") != 0) {
    return "";
  }
  return response.substr(split + 4);
}

/// Cumulative service-time buckets per verb: verb -> le -> cumulative
/// count (le = +inf included, as infinity()).
using VerbBuckets = std::map<std::string, std::map<double, std::uint64_t>>;

VerbBuckets ScrapeServiceBuckets(const std::string& host,
                                 std::uint16_t port) {
  VerbBuckets out;
  const std::string body = HttpGetBody(host, port, "/metrics");
  constexpr std::string_view kPrefix = "pamakv_service_time_us_bucket{";
  std::size_t pos = 0;
  while (pos < body.size()) {
    std::size_t eol = body.find('\n', pos);
    if (eol == std::string::npos) eol = body.size();
    const std::string_view line(body.data() + pos, eol - pos);
    pos = eol + 1;
    if (line.substr(0, kPrefix.size()) != kPrefix) continue;
    const auto GrabLabel = [&](std::string_view name) -> std::string_view {
      const std::string pat = std::string(name) + "=\"";
      const auto at = line.find(pat);
      if (at == std::string_view::npos) return {};
      const auto begin = at + pat.size();
      const auto end = line.find('"', begin);
      return line.substr(begin, end - begin);
    };
    const std::string_view verb = GrabLabel("verb");
    const std::string_view le = GrabLabel("le");
    const auto sp = line.rfind(' ');
    if (verb.empty() || le.empty() || sp == std::string_view::npos) continue;
    const double bound =
        le == "+Inf" ? std::numeric_limits<double>::infinity()
                     : std::strtod(std::string(le).c_str(), nullptr);
    const std::uint64_t cum =
        std::strtoull(std::string(line.substr(sp + 1)).c_str(), nullptr, 10);
    out[std::string(verb)][bound] = cum;
  }
  return out;
}

/// Diffs two scrapes and folds every verb into one merged snapshot, so the
/// reported quantiles cover the phase's full request mix.
util::HistogramSnapshot DiffServiceBuckets(const VerbBuckets& before,
                                           const VerbBuckets& after) {
  util::HistogramSnapshot merged;
  for (const auto& [verb, cum_after] : after) {
    util::HistogramSnapshot one;
    const auto it = before.find(verb);
    std::uint64_t prev_cum = 0;
    std::uint64_t prev_before = 0;
    for (const auto& [bound, cum] : cum_after) {
      std::uint64_t before_cum = 0;
      if (it != before.end()) {
        const auto bit = it->second.find(bound);
        if (bit != it->second.end()) before_cum = bit->second;
      }
      const std::uint64_t delta = (cum - prev_cum) - (before_cum - prev_before);
      prev_cum = cum;
      prev_before = before_cum;
      if (std::isinf(bound)) {
        one.total += delta;  // +Inf overflow bucket: counts, no bound
        continue;
      }
      one.bounds.push_back(bound);
      one.counts.push_back(delta);
      one.total += delta;
    }
    merged.Merge(one);
  }
  return merged;
}

void WriteCsv(std::ostream& out, const std::vector<RunResult>& rows) {
  out << "connections,ops,wall_seconds,kops,p50_us,p99_us,max_us,"
         "hit_ratio,sets,errors,server_p50_us,server_p99_us,server_p999_us\n";
  for (const auto& r : rows) {
    char line[320];
    std::snprintf(line, sizeof line,
                  "%zu,%llu,%.4f,%.2f,%.1f,%.1f,%.1f,%.4f,%llu,%llu,"
                  "%.2f,%.2f,%.2f\n",
                  r.connections, static_cast<unsigned long long>(r.ops),
                  r.wall_seconds, r.kops, r.p50_us, r.p99_us, r.max_us,
                  r.hit_ratio, static_cast<unsigned long long>(r.sets),
                  static_cast<unsigned long long>(r.errors), r.server_p50_us,
                  r.server_p99_us, r.server_p999_us);
    out << line;
  }
}

void WriteJson(std::ostream& out, const std::string& host, std::uint16_t port,
               std::uint64_t keys, double alpha,
               const std::vector<RunResult>& rows) {
  char buf[512];
  std::snprintf(buf, sizeof buf,
                "{\n"
                "  \"bench\": \"loadgen\",\n"
                "  \"target\": \"%s:%u\",\n"
                "  \"key_space\": %llu,\n"
                "  \"zipf_alpha\": %.3f,\n"
                "  \"hardware_threads\": %u,\n"
                "  \"runs\": [\n",
                host.c_str(), port, static_cast<unsigned long long>(keys),
                alpha, std::thread::hardware_concurrency());
  out << buf;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const RunResult& r = rows[i];
    std::snprintf(buf, sizeof buf,
                  "    {\"connections\": %zu, \"ops\": %llu, "
                  "\"wall_seconds\": %.4f, \"kops\": %.2f, "
                  "\"p50_us\": %.1f, \"p99_us\": %.1f, \"max_us\": %.1f, "
                  "\"hit_ratio\": %.4f, \"errors\": %llu, "
                  "\"server_p50_us\": %.2f, \"server_p99_us\": %.2f, "
                  "\"server_p999_us\": %.2f}%s\n",
                  r.connections, static_cast<unsigned long long>(r.ops),
                  r.wall_seconds, r.kops, r.p50_us, r.p99_us, r.max_us,
                  r.hit_ratio, static_cast<unsigned long long>(r.errors),
                  r.server_p50_us, r.server_p99_us, r.server_p999_us,
                  i + 1 < rows.size() ? "," : "");
    out << buf;
  }
  out << "  ]\n}\n";
}

std::vector<std::size_t> ParseConnectionsList(const std::string& spec) {
  std::vector<std::size_t> out;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string tok =
        spec.substr(pos, comma == std::string::npos ? comma : comma - pos);
    const long v = std::stol(tok);
    if (v <= 0) throw std::runtime_error("--connections: must be positive");
    out.push_back(static_cast<std::size_t>(v));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  if (out.empty()) throw std::runtime_error("--connections: empty list");
  return out;
}

int Main(int argc, char** argv) {
  ArgParser args(argc, argv);
  args.Describe("host", "server address (default 127.0.0.1)")
      .Describe("port", "server port (default 11211)")
      .Describe("connections", "comma list of connection counts, e.g. 1,4")
      .Describe("ops", "measured ops per run, split across connections")
      .Describe("warmup-ops", "unmeasured warmup ops per run")
      .Describe("keys", "distinct keys (default 100000)")
      .Describe("alpha", "Zipf skew (default 1.0)")
      .Describe("set-ratio", "fraction of blind SETs (default 0.1)")
      .Describe("out-root", "directory for BENCH_server.json + results/")
      .Describe("metrics-port",
                "server's --metrics-port; scraped between phases so each "
                "run reports server-side p50/p99/p999 (off unless given)");
  if (args.HelpRequested()) {
    args.PrintHelp(std::cout, "loadgen",
                   "closed-loop memcached-protocol load generator");
    return 0;
  }

  const double scale = BenchScaleFromEnv(0.5);
  const std::string host = args.GetString("host", "127.0.0.1");
  const auto port = static_cast<std::uint16_t>(args.GetInt("port", 11211));
  const auto conn_list =
      ParseConnectionsList(args.GetString("connections", "1,4"));
  const auto ops = static_cast<std::uint64_t>(static_cast<double>(args.GetInt(
                       "ops", 200'000)) * scale);
  const auto warmup =
      static_cast<std::uint64_t>(args.GetInt("warmup-ops", 50'000));
  const auto keys = static_cast<std::uint64_t>(args.GetInt("keys", 100'000));
  const double alpha = args.GetDouble("alpha", 1.0);
  const double set_ratio = args.GetDouble("set-ratio", 0.1);
  const std::string root = args.GetString("out-root", PAMAKV_REPO_ROOT);

  const ZipfSampler zipf(keys, alpha);
  WorkerConfig base;
  base.host = host;
  base.port = port;
  base.warmup_ops = warmup;
  base.key_space = keys;
  base.set_ratio = set_ratio;

  const auto metrics_port =
      static_cast<std::uint16_t>(args.GetInt("metrics-port", 0));

  std::vector<RunResult> rows;
  for (const std::size_t connections : conn_list) {
    // Scrape the endpoint around the phase: the cumulative bucket diff is
    // exactly this phase's server-side latency distribution (warmup ops
    // land in the 'before' scrape only for earlier phases; the first
    // phase's warmup is included — acceptable for a closed-loop bench).
    VerbBuckets before;
    if (metrics_port != 0) before = ScrapeServiceBuckets(host, metrics_port);
    rows.push_back(Measure(base, connections, zipf, ops));
    RunResult& r = rows.back();
    if (metrics_port != 0) {
      const VerbBuckets after = ScrapeServiceBuckets(host, metrics_port);
      const util::HistogramSnapshot phase =
          DiffServiceBuckets(before, after);
      if (phase.total > 0) {
        r.have_server_latency = true;
        r.server_p50_us = phase.Quantile(0.50);
        r.server_p99_us = phase.Quantile(0.99);
        r.server_p999_us = phase.Quantile(0.999);
      }
    }
    std::fprintf(stderr,
                 "# conns=%zu %8.1f kops/s p50=%.0fus p99=%.0fus "
                 "hit=%.3f wall=%.2fs errors=%llu\n",
                 r.connections, r.kops, r.p50_us, r.p99_us, r.hit_ratio,
                 r.wall_seconds,
                 static_cast<unsigned long long>(r.errors));
    if (r.have_server_latency) {
      std::fprintf(stderr,
                   "#          server-side p50=%.1fus p99=%.1fus "
                   "p999=%.1fus\n",
                   r.server_p50_us, r.server_p99_us, r.server_p999_us);
    }
  }

  const auto json_path = std::filesystem::path(root) / "BENCH_server.json";
  const auto csv_path =
      std::filesystem::path(root) / "results" / "bench_server.csv";
  std::filesystem::create_directories(csv_path.parent_path());
  std::ofstream json(json_path);
  WriteJson(json, host, port, keys, alpha, rows);
  std::ofstream csv(csv_path);
  WriteCsv(csv, rows);
  WriteCsv(std::cout, rows);
  std::fprintf(stderr, "# wrote %s and %s\n", json_path.string().c_str(),
               csv_path.string().c_str());
  return 0;
}

}  // namespace
}  // namespace pamakv::bench

int main(int argc, char** argv) {
  try {
    return pamakv::bench::Main(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "loadgen: %s\n", e.what());
    return 1;
  }
}
