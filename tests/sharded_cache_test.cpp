#include "pamakv/cache/sharded_cache.hpp"

#include <gtest/gtest.h>

#include "pamakv/policy/no_realloc.hpp"
#include "pamakv/sim/experiment.hpp"
#include "pamakv/trace/generators.hpp"

namespace pamakv {
namespace {

ShardedCache::EngineFactory PamaFactory() {
  return [](Bytes capacity) {
    return MakeEngine("pama", capacity, SizeClassConfig{});
  };
}

TEST(ShardedCacheTest, SplitsCapacityAcrossShards) {
  ShardedCache cache(4, 16ULL * 1024 * 1024, PamaFactory());
  EXPECT_EQ(cache.shard_count(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(cache.shard(i).pool().total_slabs(), 64u);  // 4 MiB / 64 KiB
  }
}

TEST(ShardedCacheTest, RoutingIsStableAndBalanced) {
  ShardedCache cache(4, 16ULL * 1024 * 1024, PamaFactory());
  std::vector<int> counts(4, 0);
  for (KeyId k = 0; k < 40000; ++k) {
    const auto a = cache.ShardIndexFor(k);
    ASSERT_EQ(a, cache.ShardIndexFor(k));  // stable
    ++counts[a];
  }
  for (const int c : counts) {
    EXPECT_NEAR(c, 10000, 500);  // roughly uniform
  }
}

TEST(ShardedCacheTest, OperationsLandOnOwningShard) {
  ShardedCache cache(4, 16ULL * 1024 * 1024, PamaFactory());
  const KeyId key = 12345;
  cache.Set(key, 100, 1000);
  EXPECT_TRUE(cache.Contains(key));
  EXPECT_TRUE(cache.shard(cache.ShardIndexFor(key)).Contains(key));
  for (std::size_t i = 0; i < 4; ++i) {
    if (i != cache.ShardIndexFor(key)) {
      EXPECT_FALSE(cache.shard(i).Contains(key));
    }
  }
  EXPECT_TRUE(cache.Del(key));
  EXPECT_FALSE(cache.Contains(key));
}

TEST(ShardedCacheTest, TotalStatsAggregate) {
  ShardedCache cache(2, 8ULL * 1024 * 1024, PamaFactory());
  for (KeyId k = 0; k < 100; ++k) {
    cache.Get(k, 64, 1000);  // misses
    cache.Set(k, 64, 1000);
  }
  for (KeyId k = 0; k < 100; ++k) cache.Get(k, 64, 1000);  // hits
  const CacheStats total = cache.TotalStats();
  EXPECT_EQ(total.gets, 200u);
  EXPECT_EQ(total.get_hits, 100u);
  EXPECT_EQ(total.miss_penalty_total_us, 100'000u);
}

TEST(ShardedCacheTest, TotalStatsCoversEveryCounter) {
  // Drive a mixed workload and verify TotalStats equals the field-by-field
  // sum over shards for every counter, not just the GET family.
  ShardedCache cache(4, 16ULL * 1024 * 1024, PamaFactory());
  Rng rng(99);
  for (int i = 0; i < 5000; ++i) {
    const KeyId key = rng.NextBounded(800);
    const Bytes size = 64 + (Mix64(key) & 255);
    switch (rng.NextBounded(10)) {
      case 0:
        cache.Del(key);
        break;
      case 1:
      case 2:
        cache.Set(key, size, 2'000);
        break;
      default:
        if (!cache.Get(key, size, 2'000).hit) cache.Set(key, size, 2'000);
        break;
    }
  }
  CacheStats manual;
  for (std::size_t s = 0; s < cache.shard_count(); ++s) {
    manual += cache.shard(s).stats();
  }
  const CacheStats total = cache.TotalStats();
  EXPECT_EQ(total.gets, manual.gets);
  EXPECT_EQ(total.get_hits, manual.get_hits);
  EXPECT_EQ(total.get_misses, manual.get_misses);
  EXPECT_EQ(total.sets, manual.sets);
  EXPECT_EQ(total.set_updates, manual.set_updates);
  EXPECT_EQ(total.set_failures, manual.set_failures);
  EXPECT_EQ(total.dels, manual.dels);
  EXPECT_EQ(total.evictions, manual.evictions);
  EXPECT_EQ(total.slab_migrations, manual.slab_migrations);
  EXPECT_EQ(total.ghost_hits, manual.ghost_hits);
  EXPECT_EQ(total.miss_penalty_total_us, manual.miss_penalty_total_us);
  // Sanity: the mixed op stream exercised the non-GET counters at all.
  EXPECT_GT(total.sets, 0u);
  EXPECT_GT(total.dels, 0u);
  EXPECT_EQ(total.gets, total.get_hits + total.get_misses);
}

TEST(ShardedCacheTest, StaticRoutingMatchesInstanceRouting) {
  ShardedCache cache(8, 32ULL * 1024 * 1024, PamaFactory());
  for (KeyId k = 0; k < 1000; ++k) {
    EXPECT_EQ(cache.ShardIndexFor(k), ShardedCache::ShardIndexFor(k, 8));
  }
}

TEST(ShardedCacheTest, ShardedPamaStillBeatsShardedFrozenAllocation) {
  // The paper's per-server scheme survives partitioning: with the same
  // total memory, sharded PAMA keeps its service-time edge over sharded
  // no-reallocation Memcached.
  auto run = [](const std::string& scheme) {
    // Two 16 MiB shards: enough slabs per shard (256) for PAMA's 60
    // subclasses to be provisionable at slab granularity.
    ShardedCache cache(2, 32ULL * 1024 * 1024, [&](Bytes capacity) {
      return MakeEngine(scheme, capacity, SizeClassConfig{});
    });
    auto cfg = EtcWorkload(2'000'000);
    SyntheticTrace trace(cfg);
    Request r;
    while (trace.Next(r)) {
      switch (r.op) {
        case Op::kGet: {
          if (!cache.Get(r.key, r.size, r.penalty_us).hit) {
            cache.Set(r.key, r.size, r.penalty_us);
          }
          break;
        }
        case Op::kSet:
          cache.Set(r.key, r.size, r.penalty_us);
          break;
        case Op::kDel:
          cache.Del(r.key);
          break;
      }
    }
    return cache.TotalStats();
  };
  const CacheStats pama = run("pama");
  const CacheStats memcached = run("memcached");
  EXPECT_LT(pama.AvgServiceTimeUs(0), memcached.AvgServiceTimeUs(0));
}

TEST(ShardedCacheTest, InvalidConstructionThrows) {
  EXPECT_THROW(ShardedCache(0, 1024, PamaFactory()), std::invalid_argument);
  EXPECT_THROW(ShardedCache(2, 8ULL * 1024 * 1024,
                            [](Bytes) { return std::unique_ptr<CacheEngine>(); }),
               std::invalid_argument);
}

}  // namespace
}  // namespace pamakv
