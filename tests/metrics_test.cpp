// util/metrics: instruments, snapshot/render surfaces, and the concurrent
// write paths (this file is dual-compiled into the tsan binary — see
// tests/CMakeLists.txt — so every racy claim here runs under
// ThreadSanitizer in the tsan preset).

#include "pamakv/util/metrics.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "pamakv/util/histogram.hpp"
#include "pamakv/util/rng.hpp"

namespace pamakv::util {
namespace {

TEST(MetricsCounterTest, SumsAcrossStripes) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Inc();
  c.Inc(41);
  EXPECT_EQ(c.Value(), 42u);
}

TEST(MetricsCounterTest, ConcurrentIncrementsAreLossless) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 100'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.Inc();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.Value(), kThreads * kPerThread);
}

TEST(MetricsGaugeTest, SetAndAdd) {
  Gauge g;
  g.Set(10);
  g.Add(-3);
  EXPECT_EQ(g.Value(), 7);
}

TEST(MetricsHistogramTest, SnapshotCountEqualsBucketSum) {
  Histogram h(1.0, 1e6, 32);
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    h.Observe(std::exp(rng.NextDouble() * std::log(1e6)));
  }
  const HistogramSnapshot snap = h.Snapshot();
  std::uint64_t sum = 0;
  for (const auto c : snap.counts) sum += c;
  EXPECT_EQ(snap.total, sum);
  EXPECT_EQ(snap.total, 1000u);
  EXPECT_GT(snap.sum, 0.0);
}

TEST(MetricsHistogramTest, QuantileAgreesWithLogHistogram) {
  // Same bucket math as util/histogram.hpp's LogHistogram, same rank
  // convention — so a given stream answers the same from both.
  Histogram h(1.0, 1e4, 16);
  LogHistogram reference(1.0, 1e4, 16);
  Rng rng(2);
  for (int i = 0; i < 500; ++i) {
    const double v = std::exp(rng.NextDouble() * std::log(1e4));
    h.Observe(v);
    reference.Add(v);
  }
  const HistogramSnapshot snap = h.Snapshot();
  for (const double q : {0.01, 0.5, 0.9, 0.99, 0.999}) {
    EXPECT_NEAR(snap.Quantile(q), reference.Quantile(q),
                1e-9 * reference.Quantile(q))
        << "q=" << q;
  }
}

TEST(MetricsHistogramTest, EmptySnapshotQuantileIsZero) {
  Histogram h(1.0, 100.0, 8);
  const HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.total, 0u);
  EXPECT_EQ(snap.Quantile(0.5), 0.0);
  EXPECT_EQ(snap.Quantile(0.999), 0.0);
}

TEST(MetricsHistogramTest, SaturatedMaxBucketKeepsAnswering) {
  Histogram h(1.0, 100.0, 4);
  for (int i = 0; i < 10; ++i) h.Observe(1e9);
  const HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.total, 10u);
  const double p999 = snap.Quantile(0.999);
  EXPECT_GT(p999, snap.bounds[2]);
  EXPECT_LE(p999, snap.bounds[3] * (1.0 + 1e-9));
}

TEST(MetricsHistogramTest, ConcurrentObserversLoseNothing) {
  Histogram h(1.0, 1e6, 32);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.Observe(static_cast<double>(1 + (t * kPerThread + i) % 1000));
      }
    });
  }
  // Snapshot while writers run: internally consistent (count == Σ buckets
  // is asserted inside Snapshot's contract) and monotone.
  std::uint64_t last_total = 0;
  for (int i = 0; i < 50; ++i) {
    const HistogramSnapshot snap = h.Snapshot();
    std::uint64_t sum = 0;
    for (const auto c : snap.counts) sum += c;
    EXPECT_EQ(snap.total, sum);
    EXPECT_GE(snap.total, last_total);
    last_total = snap.total;
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.Snapshot().total,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(MetricsSnapshotMergeTest, MismatchedLayoutsRebinByMidpoint) {
  Histogram fine(1.0, 1e6, 96);
  Histogram coarse(1.0, 1e6, 12);
  for (int i = 0; i < 999; ++i) fine.Observe(10.0);
  fine.Observe(2e5);
  HistogramSnapshot merged = coarse.Snapshot();
  merged.Merge(fine.Snapshot());
  EXPECT_EQ(merged.total, 1000u);
  const double log_bucket_width = std::log(1e6) / 12.0;
  EXPECT_NEAR(std::log(merged.Quantile(0.9995)), std::log(2e5),
              log_bucket_width + 1e-9);
}

TEST(MetricsRegistryTest, SameNameAndLabelsReturnsSameInstrument) {
  MetricsRegistry registry;
  Counter& a = registry.GetCounter("pamakv_ops_total", "{verb=\"get\"}");
  Counter& b = registry.GetCounter("pamakv_ops_total", "{verb=\"get\"}");
  Counter& other = registry.GetCounter("pamakv_ops_total", "{verb=\"set\"}");
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&a, &other);
}

TEST(MetricsRegistryTest, KindMismatchThrows) {
  MetricsRegistry registry;
  registry.GetCounter("pamakv_thing", "");
  EXPECT_THROW(registry.GetGauge("pamakv_thing", ""), std::logic_error);
  EXPECT_THROW(registry.GetHistogram("pamakv_thing", 1.0, 10.0, 4, ""),
               std::logic_error);
}

TEST(MetricsRegistryTest, CallbackGaugeEvaluatedAtSnapshot) {
  MetricsRegistry registry;
  double level = 1.0;
  registry.RegisterCallbackGauge("pamakv_level", "", [&level] { return level; });
  EXPECT_EQ(registry.Snapshot().samples[0].value, 1.0);
  level = 5.0;
  EXPECT_EQ(registry.Snapshot().samples[0].value, 5.0);
}

TEST(MetricsRegistryTest, ConcurrentWritersAndSnapshotters) {
  // The tsan-build version of this test is the race check the metrics
  // hot path is held to: counters, gauges and histograms written from
  // many threads while another thread snapshots and renders.
  MetricsRegistry registry;
  Counter& ops = registry.GetCounter("pamakv_ops_total", "");
  Gauge& depth = registry.GetGauge("pamakv_depth", "");
  Histogram& lat = registry.GetHistogram("pamakv_lat_us", 0.1, 1e6, 32, "");
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20'000;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        ops.Inc();
        depth.Set(t);
        lat.Observe(1.0 + i % 100);
      }
    });
  }
  std::thread scraper([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const MetricsSnapshot snap = registry.Snapshot();
      ASSERT_EQ(snap.samples.size(), 3u);
      const std::string text = snap.RenderPrometheus();
      EXPECT_NE(text.find("# TYPE pamakv_ops_total counter"),
                std::string::npos);
    }
  });
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  scraper.join();
  EXPECT_EQ(ops.Value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(lat.Snapshot().total,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

// ---- Render surfaces ----

TEST(MetricsRenderTest, PrometheusExpositionShape) {
  MetricsRegistry registry;
  registry.GetCounter("pamakv_ops_total", "{verb=\"get\"}").Inc(7);
  registry.GetGauge("pamakv_items", "").Set(3);
  Histogram& h = registry.GetHistogram("pamakv_lat_us", 1.0, 1000.0, 3, "");
  h.Observe(5.0);
  h.Observe(50.0);
  h.Observe(1e9);  // clamps into the last bucket

  const std::string text = registry.Snapshot().RenderPrometheus();
  EXPECT_NE(text.find("# TYPE pamakv_ops_total counter"), std::string::npos);
  EXPECT_NE(text.find("pamakv_ops_total{verb=\"get\"} 7\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE pamakv_items gauge"), std::string::npos);
  EXPECT_NE(text.find("pamakv_items 3\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE pamakv_lat_us histogram"), std::string::npos);
  // Cumulative buckets end with the +Inf catch-all == _count.
  EXPECT_NE(text.find("pamakv_lat_us_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("pamakv_lat_us_count 3\n"), std::string::npos);

  // Exposition lint (what CI enforces against the live endpoint): every
  // non-comment line is `name[{labels}] value` with a parseable value.
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      EXPECT_EQ(line.rfind("# TYPE ", 0), 0u) << line;
      continue;
    }
    const auto sp = line.rfind(' ');
    ASSERT_NE(sp, std::string::npos) << line;
    const std::string value = line.substr(sp + 1);
    char* end = nullptr;
    std::strtod(value.c_str(), &end);
    EXPECT_EQ(*end, '\0') << line;
    const std::string series = line.substr(0, sp);
    const auto brace = series.find('{');
    if (brace != std::string::npos) {
      EXPECT_EQ(series.back(), '}') << line;
    }
  }
}

TEST(MetricsRenderTest, InterleavedFamiliesGroupUnderOneTypeLine) {
  // Regression: registration order interleaves families (per-(class,band)
  // gauges cycle a/b/a/b...). The renderer must still emit exactly one
  // # TYPE line per family with all its series grouped beneath it —
  // duplicate # TYPE lines are a spec violation Prometheus rejects.
  MetricsRegistry registry;
  for (int i = 0; i < 3; ++i) {
    const std::string labels = "{i=\"" + std::to_string(i) + "\"}";
    registry.GetGauge("pamakv_alpha", labels).Set(i);
    registry.GetGauge("pamakv_beta", labels).Set(i);
  }
  const std::string text = registry.Snapshot().RenderPrometheus();
  std::size_t alpha_types = 0;
  std::size_t beta_types = 0;
  std::size_t pos = 0;
  while ((pos = text.find("# TYPE pamakv_alpha ", pos)) != std::string::npos) {
    ++alpha_types;
    ++pos;
  }
  pos = 0;
  while ((pos = text.find("# TYPE pamakv_beta ", pos)) != std::string::npos) {
    ++beta_types;
    ++pos;
  }
  EXPECT_EQ(alpha_types, 1u);
  EXPECT_EQ(beta_types, 1u);
  // All alpha series precede the beta family header.
  EXPECT_LT(text.rfind("pamakv_alpha{"), text.find("# TYPE pamakv_beta"));
}

TEST(MetricsRenderTest, HistogramBucketsCarryOuterLabels) {
  MetricsRegistry registry;
  registry.GetHistogram("pamakv_lat_us", 1.0, 100.0, 2, "{verb=\"set\"}")
      .Observe(5.0);
  const std::string text = registry.Snapshot().RenderPrometheus();
  EXPECT_NE(text.find("pamakv_lat_us_bucket{verb=\"set\",le=\""),
            std::string::npos);
  EXPECT_NE(text.find("pamakv_lat_us_count{verb=\"set\"} 1\n"),
            std::string::npos);
}

TEST(MetricsRenderTest, CsvAndStatLinesAgreeWithPrometheus) {
  MetricsRegistry registry;
  registry.GetCounter("pamakv_ops_total", "").Inc(1234);
  registry.GetGauge("pamakv_items", "").Set(42);
  const MetricsSnapshot snap = registry.Snapshot();

  std::string csv;
  snap.AppendCsv(csv, 750);
  EXPECT_NE(csv.find("750,pamakv_ops_total,1234\n"), std::string::npos);
  EXPECT_NE(csv.find("750,pamakv_items,42\n"), std::string::npos);

  std::vector<char> ascii;
  snap.AppendStatLines(ascii);
  const std::string stat(ascii.begin(), ascii.end());
  EXPECT_NE(stat.find("STAT pamakv_ops_total 1234\r\n"), std::string::npos);
  EXPECT_NE(stat.find("STAT pamakv_items 42\r\n"), std::string::npos);

  const std::string prom = snap.RenderPrometheus();
  EXPECT_NE(prom.find("pamakv_ops_total 1234\n"), std::string::npos);
}

}  // namespace
}  // namespace pamakv::util
