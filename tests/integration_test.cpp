// End-to-end reproduction checks: the paper's qualitative claims must hold
// on a scaled ETC-like run. These are the Sec. IV shapes:
//  * every reallocating scheme beats original Memcached on hit ratio;
//  * pre-PAMA attains the best hit ratio; PAMA trades hit ratio away;
//  * PAMA attains the lowest average GET service time;
//  * PAMA's average miss is cheaper (penalty-aware victim selection);
//  * Twemcache's random donations hurt.
// Comfortable margins keep the assertions robust to generator tweaks.
#include <gtest/gtest.h>

#include <map>

#include "pamakv/sim/experiment.hpp"
#include "pamakv/trace/generators.hpp"

namespace pamakv {
namespace {

class ReproductionTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SchemeOptions options;  // tuned defaults (DESIGN.md resolutions)
    SimConfig sim_cfg;
    sim_cfg.window_gets = 200'000;
    ExperimentRunner runner(SizeClassConfig{}, options, sim_cfg);
    const std::vector<ExperimentCell> cells = {
        {"memcached", kCache}, {"psa", kCache},      {"twemcache", kCache},
        {"pre-pama", kCache},  {"pama", kCache},     {"pama-exact", kCache},
    };
    const auto results = runner.RunGrid(
        cells,
        [] { return std::make_unique<SyntheticTrace>(EtcWorkload(2'000'000)); },
        "etc", 2);
    results_ = new std::map<std::string, SimResult>();
    for (const auto& r : results) (*results_)[r.scheme] = r;
  }
  static void TearDownTestSuite() {
    delete results_;
    results_ = nullptr;
  }

  static const SimResult& Of(const std::string& scheme) {
    return results_->at(scheme);
  }
  static double PerMissPenaltyUs(const SimResult& r) {
    return static_cast<double>(r.final_stats.miss_penalty_total_us) /
           static_cast<double>(r.final_stats.get_misses);
  }

  static constexpr Bytes kCache = 32ULL * 1024 * 1024;
  static std::map<std::string, SimResult>* results_;
};

std::map<std::string, SimResult>* ReproductionTest::results_ = nullptr;

TEST_F(ReproductionTest, ReallocationBeatsFrozenMemcached) {
  // Sec. II/IV: frozen allocations under-utilize the cache.
  EXPECT_GT(Of("psa").overall_hit_ratio,
            Of("memcached").overall_hit_ratio + 0.02);
  EXPECT_GT(Of("pre-pama").overall_hit_ratio,
            Of("memcached").overall_hit_ratio + 0.02);
  EXPECT_GT(Of("pama").overall_hit_ratio,
            Of("memcached").overall_hit_ratio + 0.02);
}

TEST_F(ReproductionTest, PrePamaHasTheBestHitRatio) {
  // Fig. 5/7: pre-PAMA optimizes purely for avoided misses.
  EXPECT_GE(Of("pre-pama").overall_hit_ratio,
            Of("psa").overall_hit_ratio - 0.005);
  EXPECT_GE(Of("pre-pama").overall_hit_ratio,
            Of("pama").overall_hit_ratio - 0.005);
}

TEST_F(ReproductionTest, PamaTradesHitRatioForServiceTime) {
  // The paper's central result: PAMA's hit ratio is NOT the best, yet its
  // service time IS (Figs. 5-8).
  EXPECT_LE(Of("pama").overall_hit_ratio,
            Of("pre-pama").overall_hit_ratio + 0.005);
  EXPECT_LT(Of("pama").overall_avg_service_time_us,
            Of("psa").overall_avg_service_time_us);
  EXPECT_LT(Of("pama").overall_avg_service_time_us,
            Of("pre-pama").overall_avg_service_time_us);
  EXPECT_LT(Of("pama").overall_avg_service_time_us,
            0.75 * Of("memcached").overall_avg_service_time_us);
}

TEST_F(ReproductionTest, PamaMissesAreCheaper) {
  // Penalty-aware victim selection shifts misses onto low-penalty items.
  EXPECT_LT(PerMissPenaltyUs(Of("pama")),
            0.90 * PerMissPenaltyUs(Of("memcached")));
  EXPECT_LT(PerMissPenaltyUs(Of("pama")),
            0.90 * PerMissPenaltyUs(Of("psa")));
}

TEST_F(ReproductionTest, BloomApproximationTracksExactRanks) {
  // The paper's O(1) Bloom mechanism must behave like the exact-rank
  // ground truth, not like a different policy.
  EXPECT_NEAR(Of("pama").overall_hit_ratio,
              Of("pama-exact").overall_hit_ratio, 0.03);
  EXPECT_NEAR(Of("pama").overall_avg_service_time_us,
              Of("pama-exact").overall_avg_service_time_us,
              0.25 * Of("pama-exact").overall_avg_service_time_us);
}

TEST_F(ReproductionTest, RandomDonationsHurt) {
  // Sec. II: Twemcache evicts efficiently-used slabs at random.
  EXPECT_LT(Of("twemcache").overall_hit_ratio,
            Of("psa").overall_hit_ratio);
  EXPECT_GT(Of("twemcache").overall_avg_service_time_us,
            Of("psa").overall_avg_service_time_us);
}

TEST_F(ReproductionTest, OnlyReallocatingSchemesMigrate) {
  EXPECT_EQ(Of("memcached").final_stats.slab_migrations, 0u);
  EXPECT_GT(Of("psa").final_stats.slab_migrations, 0u);
  EXPECT_GT(Of("pama").final_stats.slab_migrations, 0u);
}

TEST_F(ReproductionTest, WindowSeriesAreComplete) {
  for (const auto& scheme :
       {"memcached", "psa", "pre-pama", "pama"}) {
    const auto& r = Of(scheme);
    EXPECT_GE(r.windows.size(), 8u) << scheme;
    for (const auto& w : r.windows) {
      EXPECT_GE(w.hit_ratio, 0.0);
      EXPECT_LE(w.hit_ratio, 1.0);
      EXPECT_GE(w.avg_service_time_us, 0.0);
    }
  }
}

}  // namespace
}  // namespace pamakv
