#include "pamakv/trace/injector.hpp"

#include <gtest/gtest.h>

#include "pamakv/trace/generators.hpp"

namespace pamakv {
namespace {

ColdBurstConfig BurstConfig() {
  ColdBurstConfig cfg;
  cfg.after_gets = 1000;
  cfg.total_bytes = 64 * 1024;
  cfg.impacted_classes = {2, 3, 4};
  cfg.penalty_us = 50'000;
  return cfg;
}

TEST(ColdBurstInjectorTest, BurstFiresAfterConfiguredGets) {
  auto cfg = EtcWorkload(10000);
  ColdBurstInjector injector(std::make_unique<SyntheticTrace>(cfg),
                             BurstConfig(), cfg.geometry);
  Request r;
  std::uint64_t gets_before_burst = 0;
  bool seen_burst = false;
  const KeyId burst_base = 1ULL << 44;
  while (injector.Next(r)) {
    if (r.key >= burst_base) {
      seen_burst = true;
      break;
    }
    if (r.op == Op::kGet) ++gets_before_burst;
  }
  EXPECT_TRUE(seen_burst);
  EXPECT_GE(gets_before_burst, 1000u);
  EXPECT_LE(gets_before_burst, 1100u);  // burst starts promptly
}

TEST(ColdBurstInjectorTest, BurstBytesMatchTarget) {
  auto cfg = EtcWorkload(10000);
  const auto burst_cfg = BurstConfig();
  ColdBurstInjector injector(std::make_unique<SyntheticTrace>(cfg), burst_cfg,
                             cfg.geometry);
  Request r;
  while (injector.Next(r)) {
  }
  EXPECT_GE(injector.injected_bytes(), burst_cfg.total_bytes);
  // Overshoot is at most one item.
  EXPECT_LE(injector.injected_bytes(),
            burst_cfg.total_bytes + SizeClassTable(cfg.geometry).max_item_bytes());
  EXPECT_GT(injector.injected_count(), 0u);
}

TEST(ColdBurstInjectorTest, BurstItemsAreGetThenSetPairs) {
  // Sec. IV-C injects requests "accessing and adding" new items: each
  // burst key arrives as a cold GET miss followed by its SET.
  auto cfg = EtcWorkload(10000);
  const auto burst_cfg = BurstConfig();
  ColdBurstInjector injector(std::make_unique<SyntheticTrace>(cfg), burst_cfg,
                             cfg.geometry);
  const SizeClassTable classes(cfg.geometry);
  Request r;
  const KeyId burst_base = 1ULL << 44;
  std::optional<Request> pending_get;
  std::uint64_t pairs = 0;
  while (injector.Next(r)) {
    if (r.key < burst_base) continue;
    if (!pending_get) {
      EXPECT_EQ(static_cast<int>(r.op), static_cast<int>(Op::kGet));
      pending_get = r;
    } else {
      EXPECT_EQ(static_cast<int>(r.op), static_cast<int>(Op::kSet));
      EXPECT_EQ(r.key, pending_get->key);
      EXPECT_EQ(r.size, pending_get->size);
      pending_get.reset();
      ++pairs;
    }
    EXPECT_EQ(r.penalty_us, burst_cfg.penalty_us);
    const auto cls = classes.ClassForSize(r.size);
    ASSERT_TRUE(cls.has_value());
    EXPECT_TRUE(*cls == 2 || *cls == 3 || *cls == 4) << "class " << *cls;
  }
  EXPECT_FALSE(pending_get.has_value());  // no dangling GET
  EXPECT_EQ(pairs, injector.injected_count());
}

TEST(ColdBurstInjectorTest, BurstKeysAreUniqueAndOneShot) {
  auto cfg = EtcWorkload(5000);
  ColdBurstInjector injector(std::make_unique<SyntheticTrace>(cfg),
                             BurstConfig(), cfg.geometry);
  Request r;
  std::set<KeyId> burst_keys;
  const KeyId burst_base = 1ULL << 44;
  while (injector.Next(r)) {
    if (r.key >= burst_base && r.op == Op::kSet) {
      EXPECT_TRUE(burst_keys.insert(r.key).second);
    }
  }
  EXPECT_EQ(burst_keys.size(), injector.injected_count());
}

TEST(ColdBurstInjectorTest, PassThroughPreservesUnderlyingStream) {
  auto cfg = SysWorkload(2000);
  SyntheticTrace reference(cfg);
  ColdBurstInjector injector(std::make_unique<SyntheticTrace>(cfg),
                             BurstConfig(), cfg.geometry);
  Request from_ref;
  Request from_inj;
  const KeyId burst_base = 1ULL << 44;
  while (injector.Next(from_inj)) {
    if (from_inj.key >= burst_base) continue;  // skip injected
    ASSERT_TRUE(reference.Next(from_ref));
    EXPECT_EQ(from_inj.key, from_ref.key);
    EXPECT_EQ(from_inj.size, from_ref.size);
  }
  EXPECT_FALSE(reference.Next(from_ref));  // nothing dropped
}

TEST(ColdBurstInjectorTest, ResetReplaysBurst) {
  auto cfg = EtcWorkload(5000);
  ColdBurstInjector injector(std::make_unique<SyntheticTrace>(cfg),
                             BurstConfig(), cfg.geometry);
  Request r;
  while (injector.Next(r)) {
  }
  const auto first_count = injector.injected_count();
  EXPECT_GT(first_count, 0u);
  injector.Reset();
  while (injector.Next(r)) {
  }
  EXPECT_EQ(injector.injected_count(), first_count);
}

TEST(ColdBurstInjectorTest, InvalidConfigsThrow) {
  auto cfg = EtcWorkload(100);
  ColdBurstConfig bad = BurstConfig();
  bad.impacted_classes = {};
  EXPECT_THROW(ColdBurstInjector(std::make_unique<SyntheticTrace>(cfg), bad,
                                 cfg.geometry),
               std::invalid_argument);
  bad = BurstConfig();
  bad.impacted_classes = {99};
  EXPECT_THROW(ColdBurstInjector(std::make_unique<SyntheticTrace>(cfg), bad,
                                 cfg.geometry),
               std::invalid_argument);
}

}  // namespace
}  // namespace pamakv
