#include "pamakv/trace/penalty_model.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "pamakv/util/histogram.hpp"

namespace pamakv {
namespace {

TEST(PenaltyModelTest, DeterministicPerKey) {
  const PenaltyModel model;
  for (KeyId k = 0; k < 100; ++k) {
    EXPECT_EQ(model.PenaltyFor(k, 0), model.PenaltyFor(k, 0));
  }
}

TEST(PenaltyModelTest, RespectsClipBounds) {
  PenaltyModelConfig cfg;
  cfg.sigma_log = 4.0;  // extreme spread to stress the clip
  const PenaltyModel model(cfg);
  for (KeyId k = 0; k < 20000; ++k) {
    const MicroSecs p = model.PenaltyFor(k, 0);
    EXPECT_GE(p, cfg.min_us);
    EXPECT_LE(p, cfg.max_us);
  }
}

TEST(PenaltyModelTest, DefaultFractionGetsDefaultPenalty) {
  PenaltyModelConfig cfg;
  cfg.default_fraction = 0.3;
  const PenaltyModel model(cfg);
  int defaults = 0;
  const int n = 50000;
  for (KeyId k = 0; k < n; ++k) {
    if (model.PenaltyFor(k, 0) == cfg.default_us) ++defaults;
  }
  // A few lognormal draws can land exactly on 100ms, but the mass must be
  // dominated by the default fraction.
  EXPECT_NEAR(defaults / static_cast<double>(n), 0.3, 0.02);
}

TEST(PenaltyModelTest, ZeroDefaultFractionDisablesDefaults) {
  PenaltyModelConfig cfg;
  cfg.default_fraction = 0.0;
  const PenaltyModel model(cfg);
  // Exact 100000 draws are measure-zero for the lognormal; allow a couple.
  int defaults = 0;
  for (KeyId k = 0; k < 20000; ++k) {
    if (model.PenaltyFor(k, 0) == cfg.default_us) ++defaults;
  }
  EXPECT_LE(defaults, 2);
}

TEST(PenaltyModelTest, PenaltiesSpreadAcrossDecades) {
  // Fig. 1's essential property: penalties span milliseconds to seconds.
  const PenaltyModel model;
  RunningStats log_stats;
  std::uint64_t below_10ms = 0;
  std::uint64_t above_1s = 0;
  const int n = 100000;
  for (KeyId k = 0; k < n; ++k) {
    const auto p = static_cast<double>(model.PenaltyFor(k, 0));
    log_stats.Add(std::log10(p));
    if (p < 10'000) ++below_10ms;
    if (p > 1'000'000) ++above_1s;
  }
  EXPECT_GT(below_10ms, n / 50);  // real mass at the cheap end
  EXPECT_GT(above_1s, n / 200);   // and a heavy expensive tail
}

TEST(PenaltyModelTest, MildSizeCorrelation) {
  PenaltyModelConfig cfg;
  cfg.default_fraction = 0.0;
  const PenaltyModel model(cfg);
  RunningStats small;
  RunningStats large;
  for (KeyId k = 0; k < 50000; ++k) {
    small.Add(std::log(static_cast<double>(model.PenaltyFor(k, 0))));
    large.Add(std::log(static_cast<double>(model.PenaltyFor(k, 11))));
  }
  // Larger classes shift the log-mean up, but only mildly (< 1 decade).
  EXPECT_GT(large.mean(), small.mean());
  EXPECT_LT(large.mean() - small.mean(), 2.3);
}

TEST(PenaltyModelTest, DifferentSeedsDecorrelate) {
  PenaltyModelConfig a;
  a.seed = 1;
  PenaltyModelConfig b;
  b.seed = 2;
  const PenaltyModel ma(a);
  const PenaltyModel mb(b);
  int same = 0;
  for (KeyId k = 0; k < 1000; ++k) {
    if (ma.PenaltyFor(k, 0) == mb.PenaltyFor(k, 0)) ++same;
  }
  // Only the occasional shared default (both 100ms) should collide.
  EXPECT_LT(same, 100);
}

}  // namespace
}  // namespace pamakv
