#include "pamakv/util/spsc_ring.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <thread>
#include <vector>

namespace pamakv {
namespace {

TEST(SpscRingTest, PushPopPreservesFifoOrder) {
  SpscRing<int> ring(8);
  for (int i = 0; i < 5; ++i) {
    int v = i;
    EXPECT_TRUE(ring.TryPush(std::move(v)));
  }
  for (int i = 0; i < 5; ++i) {
    int out = -1;
    ASSERT_TRUE(ring.TryPop(out));
    EXPECT_EQ(out, i);
  }
  int out;
  EXPECT_FALSE(ring.TryPop(out));
}

TEST(SpscRingTest, CapacityIsRoundedUpAndHonored) {
  SpscRing<int> ring(5);  // rounds to 8 slots => holds 7
  EXPECT_GE(ring.capacity(), 5u);
  std::size_t pushed = 0;
  for (int i = 0; i < 100; ++i) {
    int v = i;
    if (!ring.TryPush(std::move(v))) break;
    ++pushed;
  }
  EXPECT_EQ(pushed, ring.capacity());
  int out;
  ASSERT_TRUE(ring.TryPop(out));
  EXPECT_EQ(out, 0);
  int v = 100;
  EXPECT_TRUE(ring.TryPush(std::move(v)));  // slot freed by the pop
}

TEST(SpscRingTest, PopBlockingDrainsAfterClose) {
  SpscRing<int> ring(8);
  for (int i = 0; i < 3; ++i) {
    int v = i;
    ring.Push(std::move(v));
  }
  ring.Close();
  int out = -1;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(ring.PopBlocking(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(ring.PopBlocking(out));  // closed and empty: no block
}

TEST(SpscRingTest, MovesVectorsWithoutCopy) {
  SpscRing<std::vector<int>> ring(4);
  std::vector<int> batch = {1, 2, 3};
  const int* data = batch.data();
  ring.Push(std::move(batch));
  std::vector<int> out;
  ASSERT_TRUE(ring.TryPop(out));
  EXPECT_EQ(out.data(), data);  // same buffer: moved end to end
}

TEST(SpscRingTest, TwoThreadStreamIsLossless) {
  // One producer, one consumer, ring much smaller than the stream so both
  // full and empty transitions are exercised continuously.
  constexpr std::uint64_t kCount = 200'000;
  SpscRing<std::uint64_t> ring(16);
  std::uint64_t sum = 0;
  std::uint64_t received = 0;
  bool ordered = true;
  std::thread consumer([&] {
    std::uint64_t v;
    std::uint64_t expected = 0;
    while (ring.PopBlocking(v)) {
      ordered = ordered && v == expected;
      ++expected;
      sum += v;
      ++received;
    }
  });
  for (std::uint64_t i = 0; i < kCount; ++i) {
    std::uint64_t v = i;
    ring.Push(std::move(v));
  }
  ring.Close();
  consumer.join();
  EXPECT_TRUE(ordered);
  EXPECT_EQ(received, kCount);
  EXPECT_EQ(sum, kCount * (kCount - 1) / 2);
}

}  // namespace
}  // namespace pamakv
