#include "pamakv/trace/trace_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "pamakv/trace/generators.hpp"

namespace pamakv {
namespace {

class TraceIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "pamakv_trace_" +
            std::to_string(reinterpret_cast<std::uintptr_t>(this));
  }
  void TearDown() override {
    std::remove(path_.c_str());
  }
  std::string path_;
};

std::vector<Request> SampleRequests() {
  return {
      {100, Op::kGet, 42, 512, 2000},
      {250, Op::kSet, 7, 64, 100'000},
      {300, Op::kDel, 42, 512, 2000},
      {450, Op::kGet, 0, 1, 5'000'000},
  };
}

void ExpectEqual(const Request& a, const Request& b) {
  EXPECT_EQ(static_cast<int>(a.op), static_cast<int>(b.op));
  EXPECT_EQ(a.key, b.key);
  EXPECT_EQ(a.size, b.size);
  EXPECT_EQ(a.penalty_us, b.penalty_us);
}

TEST_F(TraceIoTest, BinaryRoundTrip) {
  const auto requests = SampleRequests();
  {
    BinaryTraceWriter writer(path_);
    for (const auto& r : requests) writer.Write(r);
    writer.Close();
    EXPECT_EQ(writer.written(), requests.size());
  }
  BinaryTraceReader reader(path_);
  EXPECT_EQ(reader.TotalRequests(), requests.size());
  Request r;
  for (const auto& expected : requests) {
    ASSERT_TRUE(reader.Next(r));
    ExpectEqual(r, expected);
    EXPECT_EQ(r.timestamp_us, expected.timestamp_us);
  }
  EXPECT_FALSE(reader.Next(r));
}

TEST_F(TraceIoTest, BinaryReaderReset) {
  {
    BinaryTraceWriter writer(path_);
    for (const auto& r : SampleRequests()) writer.Write(r);
  }
  BinaryTraceReader reader(path_);
  Request r;
  while (reader.Next(r)) {
  }
  reader.Reset();
  std::uint64_t count = 0;
  while (reader.Next(r)) ++count;
  EXPECT_EQ(count, 4u);
}

TEST_F(TraceIoTest, BinaryRejectsGarbage) {
  {
    std::ofstream out(path_);
    out << "definitely not a trace file";
  }
  EXPECT_THROW(BinaryTraceReader{path_}, std::runtime_error);
}

TEST_F(TraceIoTest, BinaryMissingFileThrows) {
  EXPECT_THROW(BinaryTraceReader{"/nonexistent/path.pkvt"},
               std::runtime_error);
  EXPECT_THROW(BinaryTraceWriter{"/nonexistent/dir/file.pkvt"},
               std::runtime_error);
}

TEST_F(TraceIoTest, CsvRoundTrip) {
  const auto requests = SampleRequests();
  {
    CsvTraceWriter writer(path_);
    for (const auto& r : requests) writer.Write(r);
    writer.Close();
  }
  CsvTraceReader reader(path_);
  Request r;
  for (const auto& expected : requests) {
    ASSERT_TRUE(reader.Next(r));
    ExpectEqual(r, expected);
  }
  EXPECT_FALSE(reader.Next(r));
}

TEST_F(TraceIoTest, CsvReaderSkipsMalformedLines) {
  {
    std::ofstream out(path_);
    out << "op,key,size,penalty_us,timestamp_us\n";
    out << "GET,1,100,2000,5\n";
    out << "garbage line\n";
    out << "FROB,2,100,2000,5\n";  // unknown op
    out << "SET,3,50,1000,9\n";
  }
  CsvTraceReader reader(path_);
  Request r;
  ASSERT_TRUE(reader.Next(r));
  EXPECT_EQ(r.key, 1u);
  ASSERT_TRUE(reader.Next(r));
  EXPECT_EQ(r.key, 3u);
  EXPECT_EQ(static_cast<int>(r.op), static_cast<int>(Op::kSet));
  EXPECT_FALSE(reader.Next(r));
}

TEST_F(TraceIoTest, CsvWithoutHeaderStillParses) {
  {
    std::ofstream out(path_);
    out << "GET,9,64,500,1\n";
  }
  CsvTraceReader reader(path_);
  Request r;
  ASSERT_TRUE(reader.Next(r));
  EXPECT_EQ(r.key, 9u);
}

TEST_F(TraceIoTest, CsvReaderReset) {
  {
    CsvTraceWriter writer(path_);
    for (const auto& r : SampleRequests()) writer.Write(r);
  }
  CsvTraceReader reader(path_);
  Request r;
  std::uint64_t first = 0;
  while (reader.Next(r)) ++first;
  reader.Reset();
  std::uint64_t second = 0;
  while (reader.Next(r)) ++second;
  EXPECT_EQ(first, second);
}

TEST_F(TraceIoTest, DumpTraceFromGenerator) {
  auto cfg = SysWorkload(250);
  SyntheticTrace trace(cfg);
  const auto written = DumpTrace(trace, path_);
  EXPECT_EQ(written, 250u);

  // The dumped file replays identically to a fresh generator.
  trace.Reset();
  BinaryTraceReader reader(path_);
  Request from_file;
  Request from_gen;
  while (reader.Next(from_file)) {
    ASSERT_TRUE(trace.Next(from_gen));
    ExpectEqual(from_file, from_gen);
  }
  EXPECT_FALSE(trace.Next(from_gen));
}

}  // namespace
}  // namespace pamakv
