#include "pamakv/util/zipf.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace pamakv {
namespace {

TEST(ZipfTest, SamplesStayInRange) {
  ZipfSampler zipf(100, 1.0);
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(zipf.Sample(rng), 100u);
  }
}

TEST(ZipfTest, SingleElementAlwaysZero) {
  ZipfSampler zipf(1, 1.2);
  Rng rng(2);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf.Sample(rng), 0u);
}

TEST(ZipfTest, RankZeroIsMostPopular) {
  ZipfSampler zipf(1000, 1.0);
  Rng rng(3);
  std::vector<int> counts(1000, 0);
  for (int i = 0; i < 200000; ++i) ++counts[zipf.Sample(rng)];
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[1], counts[100]);
}

TEST(ZipfTest, FrequencyFollowsPowerLaw) {
  // For alpha = 1, P(rank r) ~ 1/(r+1): count ratio between rank 0 and
  // rank 9 should be about 10x.
  ZipfSampler zipf(100000, 1.0);
  Rng rng(4);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 1000000; ++i) {
    const auto r = zipf.Sample(rng);
    if (r < 100) ++counts[r];
  }
  const double ratio = static_cast<double>(counts[0]) / counts[9];
  EXPECT_NEAR(ratio, 10.0, 2.0);
}

TEST(ZipfTest, HigherAlphaConcentratesMass) {
  Rng rng(5);
  auto top10_share = [&rng](double alpha) {
    ZipfSampler zipf(10000, alpha);
    int top = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
      if (zipf.Sample(rng) < 10) ++top;
    }
    return static_cast<double>(top) / n;
  };
  EXPECT_LT(top10_share(0.6), top10_share(1.4));
}

TEST(ZipfTest, AlphaNearOneHandled) {
  // The generalized harmonic integral degenerates at alpha == 1; the
  // sampler must not hang or leave range there.
  ZipfSampler zipf(1000, 1.0 + 1e-13);
  Rng rng(6);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(zipf.Sample(rng), 1000u);
}

TEST(ZipfTest, InvalidParamsThrow) {
  EXPECT_THROW(ZipfSampler(0, 1.0), std::invalid_argument);
  EXPECT_THROW(ZipfSampler(10, 0.0), std::invalid_argument);
  EXPECT_THROW(ZipfSampler(10, -1.0), std::invalid_argument);
}

TEST(LognormalTest, RespectsClipBounds) {
  LognormalSampler s(std::log(100.0), 3.0, 10.0, 1000.0);
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = s.Sample(rng);
    EXPECT_GE(v, 10.0);
    EXPECT_LE(v, 1000.0);
  }
}

TEST(LognormalTest, MedianNearExpMu) {
  LognormalSampler s(std::log(100.0), 0.5, 1.0, 1e9);
  Rng rng(8);
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) samples.push_back(s.Sample(rng));
  std::nth_element(samples.begin(), samples.begin() + samples.size() / 2,
                   samples.end());
  EXPECT_NEAR(samples[samples.size() / 2], 100.0, 5.0);
}

TEST(DiscreteSamplerTest, RespectsWeights) {
  DiscreteSampler s({1.0, 3.0, 0.0, 6.0});
  Rng rng(9);
  std::vector<int> counts(4, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[s.Sample(rng)];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.01);
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[3] / static_cast<double>(n), 0.6, 0.01);
}

TEST(DiscreteSamplerTest, SingleBucket) {
  DiscreteSampler s({42.0});
  Rng rng(10);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(s.Sample(rng), 0u);
}

TEST(DiscreteSamplerTest, InvalidWeightsThrow) {
  EXPECT_THROW(DiscreteSampler({}), std::invalid_argument);
  EXPECT_THROW(DiscreteSampler({0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(DiscreteSampler({1.0, -0.5}), std::invalid_argument);
}

}  // namespace
}  // namespace pamakv
