// In-process integration tests: a real Server on an ephemeral port, a real
// BlockingClient over TCP. The client implements the protocol independently
// of the server's parser so the two ends of the wire don't share bugs.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "pamakv/net/cache_service.hpp"
#include "pamakv/net/client.hpp"
#include "pamakv/net/server.hpp"
#include "pamakv/sim/experiment.hpp"

namespace pamakv::net {
namespace {

class ServerTest : public ::testing::Test {
 protected:
  /// Starts a server on an ephemeral port over `scheme` engines.
  void StartServer(const std::string& scheme = "memcached",
                   std::size_t threads = 1, std::size_t shards = 2) {
    CacheServiceConfig cfg;
    cfg.shards = shards;
    cfg.capacity_bytes = 16ULL * 1024 * 1024;
    service_ = std::make_unique<CacheService>(cfg, [&](Bytes bytes) {
      return MakeEngine(scheme, bytes, SizeClassConfig{});
    });
    ServerConfig scfg;
    scfg.port = 0;  // ephemeral
    scfg.threads = threads;
    server_ = std::make_unique<Server>(scfg, *service_);
    server_->Start();
  }

  BlockingClient Connect() {
    BlockingClient client;
    client.Connect("127.0.0.1", server_->port());
    return client;
  }

  static std::uint64_t Stat(
      const std::vector<std::pair<std::string, std::uint64_t>>& stats,
      const std::string& name) {
    for (const auto& [k, v] : stats) {
      if (k == name) return v;
    }
    ADD_FAILURE() << "stat " << name << " missing";
    return 0;
  }

  std::unique_ptr<CacheService> service_;
  std::unique_ptr<Server> server_;
};

TEST_F(ServerTest, SetGetDeleteRoundTrip) {
  StartServer();
  auto client = Connect();

  // Miss on a cold key.
  std::string value;
  EXPECT_FALSE(client.Get("alpha", value));

  // Store and read back; flags carry the miss penalty and must echo.
  ASSERT_TRUE(client.Set("alpha", 2'500, "hello world"));
  std::uint32_t flags = 0;
  ASSERT_TRUE(client.Get("alpha", value, &flags));
  EXPECT_EQ(value, "hello world");
  EXPECT_EQ(flags, 2'500u);

  // Overwrite changes the value in place.
  ASSERT_TRUE(client.Set("alpha", 2'500, "second"));
  ASSERT_TRUE(client.Get("alpha", value));
  EXPECT_EQ(value, "second");

  // Delete, then the key misses again.
  EXPECT_TRUE(client.Delete("alpha"));
  EXPECT_FALSE(client.Delete("alpha"));
  EXPECT_FALSE(client.Get("alpha", value));
}

TEST_F(ServerTest, BinaryValuesSurviveTheWire) {
  StartServer();
  auto client = Connect();
  const std::string value("\r\nEND\r\nVALUE x 0 0\r\n\0\xff", 22);
  ASSERT_TRUE(client.Set("bin", 0, value));
  std::string got;
  ASSERT_TRUE(client.Get("bin", got));
  EXPECT_EQ(got, value);
}

TEST_F(ServerTest, MultiGetAndCas) {
  StartServer();
  auto client = Connect();
  ASSERT_TRUE(client.Set("a", 1, "one"));
  ASSERT_TRUE(client.Set("b", 2, "two"));

  // Multi-get returns hits in request order, silently skips misses.
  client.SendRaw("get a miss b\r\n");
  EXPECT_EQ(client.ReadLine(), "VALUE a 1 3");
  EXPECT_EQ(client.ReadLine(), "one");
  EXPECT_EQ(client.ReadLine(), "VALUE b 2 3");
  EXPECT_EQ(client.ReadLine(), "two");
  EXPECT_EQ(client.ReadLine(), "END");

  // gets includes a CAS stamp that changes on overwrite.
  client.SendRaw("gets a\r\n");
  const std::string first = client.ReadLine();
  ASSERT_TRUE(first.rfind("VALUE a 1 3 ", 0) == 0) << first;
  client.ReadLine();  // value
  EXPECT_EQ(client.ReadLine(), "END");
  ASSERT_TRUE(client.Set("a", 1, "ONE"));
  client.SendRaw("gets a\r\n");
  const std::string second = client.ReadLine();
  client.ReadLine();
  EXPECT_EQ(client.ReadLine(), "END");
  EXPECT_NE(first, second);
}

TEST_F(ServerTest, StatsMatchServiceTotals) {
  StartServer("pama");
  auto client = Connect();

  ASSERT_TRUE(client.Set("x", 10'000, "xxxx"));
  ASSERT_TRUE(client.Set("y", 100'000, "yyyyyyyy"));
  std::string value;
  EXPECT_TRUE(client.Get("x", value));
  EXPECT_TRUE(client.Get("y", value));
  EXPECT_FALSE(client.Get("z", value));
  EXPECT_TRUE(client.Delete("y"));

  const auto stats = client.Stats();
  const CacheStats totals = service_->TotalStats();
  EXPECT_EQ(Stat(stats, "cmd_get"), totals.gets);
  EXPECT_EQ(Stat(stats, "cmd_set"), totals.sets);
  EXPECT_EQ(Stat(stats, "get_hits"), totals.get_hits);
  EXPECT_EQ(Stat(stats, "get_misses"), totals.get_misses);
  EXPECT_EQ(Stat(stats, "bytes"), totals.bytes_stored);
  EXPECT_EQ(Stat(stats, "evictions"), totals.evictions);
  EXPECT_EQ(Stat(stats, "curr_items"), service_->ItemCount());
  EXPECT_EQ(Stat(stats, "shards"), service_->shard_count());
  EXPECT_EQ(Stat(stats, "hash_collisions_resolved"), 0u);

  // The wire numbers reconcile with themselves too.
  EXPECT_EQ(Stat(stats, "cmd_get"), 3u);
  EXPECT_EQ(Stat(stats, "get_hits"), 2u);
  EXPECT_EQ(Stat(stats, "get_misses"), 1u);
  EXPECT_EQ(Stat(stats, "curr_items"), 1u);  // x remains
}

TEST_F(ServerTest, FlushAllVersionQuit) {
  StartServer();
  auto client = Connect();
  ASSERT_TRUE(client.Set("k1", 0, "v1"));
  ASSERT_TRUE(client.Set("k2", 0, "v2"));
  EXPECT_EQ(service_->ItemCount(), 2u);
  client.FlushAll();
  EXPECT_EQ(service_->ItemCount(), 0u);
  std::string value;
  EXPECT_FALSE(client.Get("k1", value));

  EXPECT_EQ(client.Version(), "pamakv-0.2");

  client.SendRaw("quit\r\n");
  // The server closes; the next read hits EOF.
  EXPECT_THROW(client.ReadLine(), std::exception);
}

TEST_F(ServerTest, NoreplySetIsSilent) {
  StartServer();
  auto client = Connect();
  client.SendRaw("set quiet 7 0 2 noreply\r\nqq\r\nget quiet\r\n");
  // No STORED line: the first thing back is the VALUE block.
  EXPECT_EQ(client.ReadLine(), "VALUE quiet 7 2");
  EXPECT_EQ(client.ReadLine(), "qq");
  EXPECT_EQ(client.ReadLine(), "END");
}

TEST_F(ServerTest, ManyConnectionsAcrossLoopThreads) {
  StartServer("pama", /*threads=*/2, /*shards=*/4);
  constexpr int kClients = 8;
  constexpr int kOpsPerClient = 300;
  std::vector<std::thread> workers;
  for (int c = 0; c < kClients; ++c) {
    workers.emplace_back([this, c] {
      auto client = Connect();
      std::string value;
      for (int i = 0; i < kOpsPerClient; ++i) {
        const std::string key =
            "k:" + std::to_string(c) + ":" + std::to_string(i % 50);
        if (!client.Get(key, value)) {
          ASSERT_TRUE(client.Set(key, 1'000, "payload-" + key));
        } else {
          ASSERT_EQ(value, "payload-" + key);
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(server_->total_connections(), kClients);
  const CacheStats totals = service_->TotalStats();
  EXPECT_EQ(totals.gets, kClients * kOpsPerClient);
  EXPECT_EQ(totals.get_hits + totals.get_misses, totals.gets);
  // 50 distinct keys per client, all re-hit after first touch.
  EXPECT_EQ(totals.get_misses, kClients * 50u);
}

TEST_F(ServerTest, ServerSurvivesAbruptDisconnect) {
  StartServer();
  {
    auto client = Connect();
    client.SendRaw("set dangling 0 0 100\r\n");  // half a command, then gone
  }
  auto client = Connect();
  ASSERT_TRUE(client.Set("after", 0, "ok"));
  std::string value;
  ASSERT_TRUE(client.Get("after", value));
  EXPECT_EQ(value, "ok");
}

}  // namespace
}  // namespace pamakv::net
