// In-process integration tests: a real Server on an ephemeral port, a real
// BlockingClient over TCP. The client implements the protocol independently
// of the server's parser so the two ends of the wire don't share bugs.
//
// Lifecycle tests (idle reap, request deadline, drain grace) inject a
// FakeClock: timeouts trigger on clock_.Advance(), never on wall time, so
// every boundary is exact and no test sleeps through its own timeout. The
// only waiting is WaitUntil() — cross-thread observation of counters that
// the loop thread has already been told (by the clock) to bump.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <dirent.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <system_error>
#include <thread>
#include <vector>

#include "pamakv/net/cache_service.hpp"
#include "pamakv/net/client.hpp"
#include "pamakv/net/metrics_http.hpp"
#include "pamakv/net/server.hpp"
#include "pamakv/sim/experiment.hpp"
#include "pamakv/util/clock.hpp"
#include "pamakv/util/failpoint.hpp"
#include "pamakv/util/metrics.hpp"

namespace pamakv::net {
namespace {

using namespace std::chrono_literals;

class ServerTest : public ::testing::Test {
 protected:
  void TearDown() override {
#if PAMAKV_FAILPOINTS
    // Failpoints are process-global; a test that died mid-storm must not
    // poison its successors.
    util::FailPoints::DisableAll();
#endif
  }

  /// Starts a server on an ephemeral port over `scheme` engines. Lifecycle
  /// knobs go through scfg_ (set before calling); the fixture's FakeClock
  /// is always injected, so timeouts only ever fire via clock_.Advance().
  void StartServer(const std::string& scheme = "memcached",
                   std::size_t threads = 1, std::size_t shards = 2,
                   bool with_metrics = false) {
    CacheServiceConfig cfg;
    cfg.shards = shards;
    cfg.capacity_bytes = 64ULL * 1024 * 1024;
    service_ = std::make_unique<CacheService>(cfg, [&](Bytes bytes) {
      return MakeEngine(scheme, bytes, SizeClassConfig{});
    });
    scfg_.port = 0;  // ephemeral
    scfg_.threads = threads;
    scfg_.clock = &clock_;
    server_ = std::make_unique<Server>(scfg_, *service_);
    if (with_metrics) {
      service_->RegisterMetrics(registry_);
      server_->EnableMetrics(registry_);
    }
    server_->Start();
  }

  BlockingClient Connect() {
    BlockingClient client;
    client.Connect("127.0.0.1", server_->port());
    return client;
  }

  /// Observation-only spin: waits for a loop-thread-side effect to become
  /// visible. Never used to let a timeout elapse — that is Advance()'s job.
  static bool WaitUntil(const std::function<bool()>& pred) {
    const auto deadline = std::chrono::steady_clock::now() + 10s;
    while (std::chrono::steady_clock::now() < deadline) {
      if (pred()) return true;
      std::this_thread::sleep_for(200us);
    }
    return pred();
  }

  /// Expects the next read on `client` to fail with a connection-level
  /// ClientError (the server closed or reset the socket).
  static void ExpectConnectionGone(BlockingClient& client) {
    try {
      client.ReadLine();
      FAIL() << "expected the server to have closed the connection";
    } catch (const ClientError& e) {
      EXPECT_TRUE(e.kind() == ClientError::Kind::kConnectionClosed ||
                  e.kind() == ClientError::Kind::kConnectionReset ||
                  e.kind() == ClientError::Kind::kShortRead)
          << e.what();
    }
  }

  static std::uint64_t Stat(
      const std::vector<std::pair<std::string, std::uint64_t>>& stats,
      const std::string& name) {
    for (const auto& [k, v] : stats) {
      if (k == name) return v;
    }
    ADD_FAILURE() << "stat " << name << " missing";
    return 0;
  }

  util::FakeClock clock_;
  ServerConfig scfg_;
  util::MetricsRegistry registry_;
  std::unique_ptr<CacheService> service_;
  std::unique_ptr<Server> server_;
};

/// Minimal blocking HTTP/1.0 GET against 127.0.0.1:`port`. Returns the
/// body; fills `head_out` with the status line + headers when non-null.
std::string HttpGet(std::uint16_t port, const std::string& path,
                    std::string* head_out = nullptr) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return "";
  }
  const std::string req = "GET " + path + " HTTP/1.0\r\nHost: test\r\n\r\n";
  for (std::size_t off = 0; off < req.size();) {
    const ssize_t n = ::write(fd, req.data() + off, req.size() - off);
    if (n <= 0) {
      ::close(fd);
      return "";
    }
    off += static_cast<std::size_t>(n);
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  const auto split = response.find("\r\n\r\n");
  if (split == std::string::npos) return "";
  if (head_out != nullptr) *head_out = response.substr(0, split);
  return response.substr(split + 4);
}

/// Parses Prometheus exposition text into series -> value-string. Skips
/// comment lines; keys are the full series spelling (name + label set).
std::map<std::string, std::string> ParseExposition(const std::string& body) {
  std::map<std::string, std::string> series;
  std::size_t pos = 0;
  while (pos < body.size()) {
    auto end = body.find('\n', pos);
    if (end == std::string::npos) end = body.size();
    const std::string line = body.substr(pos, end - pos);
    pos = end + 1;
    if (line.empty() || line[0] == '#') continue;
    const auto sp = line.rfind(' ');
    if (sp == std::string::npos) continue;
    series[line.substr(0, sp)] = line.substr(sp + 1);
  }
  return series;
}

TEST_F(ServerTest, SetGetDeleteRoundTrip) {
  StartServer();
  auto client = Connect();

  // Miss on a cold key.
  std::string value;
  EXPECT_FALSE(client.Get("alpha", value));

  // Store and read back; flags carry the miss penalty and must echo.
  ASSERT_TRUE(client.Set("alpha", 2'500, "hello world"));
  std::uint32_t flags = 0;
  ASSERT_TRUE(client.Get("alpha", value, &flags));
  EXPECT_EQ(value, "hello world");
  EXPECT_EQ(flags, 2'500u);

  // Overwrite changes the value in place.
  ASSERT_TRUE(client.Set("alpha", 2'500, "second"));
  ASSERT_TRUE(client.Get("alpha", value));
  EXPECT_EQ(value, "second");

  // Delete, then the key misses again.
  EXPECT_TRUE(client.Delete("alpha"));
  EXPECT_FALSE(client.Delete("alpha"));
  EXPECT_FALSE(client.Get("alpha", value));
}

TEST_F(ServerTest, BinaryValuesSurviveTheWire) {
  StartServer();
  auto client = Connect();
  const std::string value("\r\nEND\r\nVALUE x 0 0\r\n\0\xff", 22);
  ASSERT_TRUE(client.Set("bin", 0, value));
  std::string got;
  ASSERT_TRUE(client.Get("bin", got));
  EXPECT_EQ(got, value);
}

TEST_F(ServerTest, MultiGetAndCas) {
  StartServer();
  auto client = Connect();
  ASSERT_TRUE(client.Set("a", 1, "one"));
  ASSERT_TRUE(client.Set("b", 2, "two"));

  // Multi-get returns hits in request order, silently skips misses.
  client.SendRaw("get a miss b\r\n");
  EXPECT_EQ(client.ReadLine(), "VALUE a 1 3");
  EXPECT_EQ(client.ReadLine(), "one");
  EXPECT_EQ(client.ReadLine(), "VALUE b 2 3");
  EXPECT_EQ(client.ReadLine(), "two");
  EXPECT_EQ(client.ReadLine(), "END");

  // gets includes a CAS stamp that changes on overwrite.
  client.SendRaw("gets a\r\n");
  const std::string first = client.ReadLine();
  ASSERT_TRUE(first.rfind("VALUE a 1 3 ", 0) == 0) << first;
  client.ReadLine();  // value
  EXPECT_EQ(client.ReadLine(), "END");
  ASSERT_TRUE(client.Set("a", 1, "ONE"));
  client.SendRaw("gets a\r\n");
  const std::string second = client.ReadLine();
  client.ReadLine();
  EXPECT_EQ(client.ReadLine(), "END");
  EXPECT_NE(first, second);
}

TEST_F(ServerTest, StatsMatchServiceTotals) {
  StartServer("pama");
  auto client = Connect();

  ASSERT_TRUE(client.Set("x", 10'000, "xxxx"));
  ASSERT_TRUE(client.Set("y", 100'000, "yyyyyyyy"));
  std::string value;
  EXPECT_TRUE(client.Get("x", value));
  EXPECT_TRUE(client.Get("y", value));
  EXPECT_FALSE(client.Get("z", value));
  EXPECT_TRUE(client.Delete("y"));

  const auto stats = client.Stats();
  const CacheStats totals = service_->TotalStats();
  EXPECT_EQ(Stat(stats, "cmd_get"), totals.gets);
  EXPECT_EQ(Stat(stats, "cmd_set"), totals.sets);
  EXPECT_EQ(Stat(stats, "get_hits"), totals.get_hits);
  EXPECT_EQ(Stat(stats, "get_misses"), totals.get_misses);
  EXPECT_EQ(Stat(stats, "bytes"), totals.bytes_stored);
  EXPECT_EQ(Stat(stats, "evictions"), totals.evictions);
  EXPECT_EQ(Stat(stats, "curr_items"), service_->ItemCount());
  EXPECT_EQ(Stat(stats, "shards"), service_->shard_count());
  EXPECT_EQ(Stat(stats, "hash_collisions_resolved"), 0u);

  // The wire numbers reconcile with themselves too.
  EXPECT_EQ(Stat(stats, "cmd_get"), 3u);
  EXPECT_EQ(Stat(stats, "get_hits"), 2u);
  EXPECT_EQ(Stat(stats, "get_misses"), 1u);
  EXPECT_EQ(Stat(stats, "curr_items"), 1u);  // x remains
}

TEST_F(ServerTest, FlushAllVersionQuit) {
  StartServer();
  auto client = Connect();
  ASSERT_TRUE(client.Set("k1", 0, "v1"));
  ASSERT_TRUE(client.Set("k2", 0, "v2"));
  EXPECT_EQ(service_->ItemCount(), 2u);
  client.FlushAll();
  EXPECT_EQ(service_->ItemCount(), 0u);
  std::string value;
  EXPECT_FALSE(client.Get("k1", value));

  EXPECT_EQ(client.Version(), "pamakv-0.2");

  client.SendRaw("quit\r\n");
  // The server closes; the next read hits EOF.
  EXPECT_THROW(client.ReadLine(), std::exception);
}

TEST_F(ServerTest, NoreplySetIsSilent) {
  StartServer();
  auto client = Connect();
  client.SendRaw("set quiet 7 0 2 noreply\r\nqq\r\nget quiet\r\n");
  // No STORED line: the first thing back is the VALUE block.
  EXPECT_EQ(client.ReadLine(), "VALUE quiet 7 2");
  EXPECT_EQ(client.ReadLine(), "qq");
  EXPECT_EQ(client.ReadLine(), "END");
}

TEST_F(ServerTest, ManyConnectionsAcrossLoopThreads) {
  StartServer("pama", /*threads=*/2, /*shards=*/4);
  constexpr int kClients = 8;
  constexpr int kOpsPerClient = 300;
  std::vector<std::thread> workers;
  for (int c = 0; c < kClients; ++c) {
    workers.emplace_back([this, c] {
      auto client = Connect();
      std::string value;
      for (int i = 0; i < kOpsPerClient; ++i) {
        const std::string key =
            "k:" + std::to_string(c) + ":" + std::to_string(i % 50);
        if (!client.Get(key, value)) {
          ASSERT_TRUE(client.Set(key, 1'000, "payload-" + key));
        } else {
          ASSERT_EQ(value, "payload-" + key);
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(server_->total_connections(), kClients);
  const CacheStats totals = service_->TotalStats();
  EXPECT_EQ(totals.gets, kClients * kOpsPerClient);
  EXPECT_EQ(totals.get_hits + totals.get_misses, totals.gets);
  // 50 distinct keys per client, all re-hit after first touch.
  EXPECT_EQ(totals.get_misses, kClients * 50u);
}

TEST_F(ServerTest, ServerSurvivesAbruptDisconnect) {
  StartServer();
  {
    auto client = Connect();
    client.SendRaw("set dangling 0 0 100\r\n");  // half a command, then gone
  }
  auto client = Connect();
  ASSERT_TRUE(client.Set("after", 0, "ok"));
  std::string value;
  ASSERT_TRUE(client.Get("after", value));
  EXPECT_EQ(value, "ok");
}

// ---------------------------------------------------------------------------
// Connection lifecycle under the fake clock.
// ---------------------------------------------------------------------------

TEST_F(ServerTest, IdleConnectionReapedAtExactTimeout) {
  scfg_.idle_timeout_ms = 500;
  StartServer();

  // `idle` goes quiet at fake-time 0; `prober` keeps round-tripping, which
  // both refreshes its own activity and proves the loop made progress
  // after each Advance without touching `idle`.
  auto idle = Connect();
  auto prober = Connect();
  EXPECT_EQ(idle.Version(), "pamakv-0.2");
  EXPECT_EQ(prober.Version(), "pamakv-0.2");
  ASSERT_TRUE(WaitUntil([&] { return server_->curr_connections() == 2; }));

  // One tick short of the deadline: nothing is reaped. The prober
  // round-trip after Advance guarantees the loop ran a full dispatch
  // round (whose timer sweep saw the advanced clock) before we assert.
  clock_.Advance(499ms);
  EXPECT_EQ(prober.Version(), "pamakv-0.2");
  EXPECT_EQ(server_->timed_out_connections(), 0u);
  EXPECT_EQ(server_->curr_connections(), 2u);

  // Crossing the exact deadline (fake-time 500ms) reaps `idle` — and only
  // `idle`: the prober refreshed itself at 499ms.
  clock_.Advance(1ms);
  ASSERT_TRUE(WaitUntil([&] { return server_->timed_out_connections() == 1; }));
  ASSERT_TRUE(WaitUntil([&] { return server_->curr_connections() == 1; }));
  ExpectConnectionGone(idle);
  EXPECT_EQ(prober.Version(), "pamakv-0.2");
}

TEST_F(ServerTest, RequestDeadlineClosesStalledRequest) {
  scfg_.request_timeout_ms = 400;  // idle timeout stays off
  StartServer();

  auto staller = Connect();
  auto prober = Connect();
  EXPECT_EQ(prober.Version(), "pamakv-0.2");

  // A set whose payload never finishes: header + 5 of 10 value bytes.
  staller.SendRaw("set stall 0 0 10\r\nhello");
  ASSERT_TRUE(WaitUntil([&] { return server_->MidRequestConnections() == 1; }));

  clock_.Advance(399ms);
  EXPECT_EQ(prober.Version(), "pamakv-0.2");
  EXPECT_EQ(server_->timed_out_connections(), 0u);

  clock_.Advance(2ms);
  ASSERT_TRUE(WaitUntil([&] { return server_->timed_out_connections() == 1; }));
  ExpectConnectionGone(staller);

  // The prober was never mid-request, so the deadline does not apply to
  // it; completed requests clear the deadline too.
  EXPECT_TRUE(prober.Set("fine", 0, "value"));
  clock_.Advance(10s);
  ASSERT_TRUE(WaitUntil([&] { return server_->curr_connections() == 1; }));
  EXPECT_EQ(prober.Version(), "pamakv-0.2");
  EXPECT_EQ(server_->timed_out_connections(), 1u);
}

TEST_F(ServerTest, BackpressurePausesAndResumesReading) {
  scfg_.tx_pause_bytes = 64 * 1024;
  scfg_.tx_resume_bytes = 16 * 1024;
  StartServer();

  auto client = Connect();
  // 24 KiB fits the largest slab slot (16B × 2^11 = 32 KiB classes).
  const std::string big(24 * 1024, 'B');
  ASSERT_TRUE(client.Set("big", 7, big));

  // Pipeline far more response bytes than kernel buffers absorb while the
  // client reads nothing: the unsent backlog must cross the high-water
  // mark and the server must stop reading (EPOLLIN off) until we drain.
  constexpr int kGets = 400;  // ~9.6 MiB of responses
  std::string pipeline;
  for (int i = 0; i < kGets; ++i) pipeline += "get big\r\n";
  client.SendRaw(pipeline);
  ASSERT_TRUE(WaitUntil([&] { return server_->backpressure_pauses() >= 1; }));

  // Drain: every pipelined response arrives complete and in order — the
  // pause deferred work, it lost none of it.
  for (int i = 0; i < kGets; ++i) {
    ASSERT_EQ(client.ReadLine(), "VALUE big 7 24576") << "response " << i;
    std::string value;
    client.ReadExact(value, big.size());
    ASSERT_EQ(value.size(), big.size());
    ASSERT_TRUE(value == big) << "payload corrupted in response " << i;
    ASSERT_EQ(client.ReadLine(), "");  // CRLF after the data block
    ASSERT_EQ(client.ReadLine(), "END");
  }
  ASSERT_TRUE(WaitUntil([&] { return server_->backpressure_resumes() >= 1; }));

  // Reading resumed: the connection serves new requests.
  EXPECT_EQ(client.Version(), "pamakv-0.2");
  EXPECT_EQ(server_->overflow_closes(), 0u);
}

TEST_F(ServerTest, TxCapHardClosesUnboundedBacklog) {
  scfg_.tx_pause_bytes = 0;  // no pause: backlog grows without bound...
  scfg_.tx_cap_bytes = 1024 * 1024;  // ...until the cap cuts the client off
  StartServer();

  auto client = Connect();
  const std::string big(24 * 1024, 'C');
  ASSERT_TRUE(client.Set("big", 0, big));

  std::string pipeline;
  for (int i = 0; i < 1'000; ++i) pipeline += "get big\r\n";  // ~24 MiB out
  client.SendRaw(pipeline);
  ASSERT_TRUE(WaitUntil([&] { return server_->overflow_closes() == 1; }));

  // The socket is gone; reading ends in a connection-level error (some
  // already-flushed responses may arrive first).
  try {
    while (true) {
      client.ReadLine();
    }
  } catch (const ClientError& e) {
    EXPECT_TRUE(e.kind() == ClientError::Kind::kConnectionClosed ||
                e.kind() == ClientError::Kind::kConnectionReset ||
                e.kind() == ClientError::Kind::kShortRead)
        << e.what();
  }
  ASSERT_TRUE(WaitUntil([&] { return server_->curr_connections() == 0; }));
}

TEST_F(ServerTest, MaxConnsShedsWithServerError) {
  scfg_.max_conns = 2;
  StartServer();

  auto a = Connect();
  auto b = Connect();
  EXPECT_EQ(a.Version(), "pamakv-0.2");
  EXPECT_EQ(b.Version(), "pamakv-0.2");
  ASSERT_TRUE(WaitUntil([&] { return server_->curr_connections() == 2; }));

  // The third connection is told why before being closed.
  {
    auto c = Connect();
    EXPECT_EQ(c.ReadLine(), "SERVER_ERROR too many connections");
    ExpectConnectionGone(c);
  }
  EXPECT_EQ(server_->rejected_connections(), 1u);

  // Established connections are unaffected, and a freed slot is reusable.
  EXPECT_EQ(a.Version(), "pamakv-0.2");
  b.Close();
  ASSERT_TRUE(WaitUntil([&] { return server_->curr_connections() == 1; }));
  auto d = Connect();
  EXPECT_EQ(d.Version(), "pamakv-0.2");
  EXPECT_EQ(server_->rejected_connections(), 1u);
}

TEST_F(ServerTest, GracefulShutdownCompletesInFlightRequest) {
  StartServer();

  auto busy = Connect();
  auto quiet = Connect();
  EXPECT_EQ(quiet.Version(), "pamakv-0.2");

  // `busy` is mid-set when the drain starts: header + half the payload.
  busy.SendRaw("set last 0 0 10\r\nhello");
  ASSERT_TRUE(WaitUntil([&] { return server_->MidRequestConnections() == 1; }));

  bool clean = false;
  std::thread shutdown([&] {
    clean = server_->Shutdown(std::chrono::milliseconds(60'000));
  });
  ASSERT_TRUE(WaitUntil([&] { return server_->draining(); }));

  // The quiescent connection was closed by the drain sweep...
  ExpectConnectionGone(quiet);
  // ...while the in-flight one still gets to finish and see its reply.
  busy.SendRaw("world\r\n");
  EXPECT_EQ(busy.ReadLine(), "STORED");
  ExpectConnectionGone(busy);  // then closed, now quiescent

  shutdown.join();
  EXPECT_TRUE(clean) << "drain should complete without force-closing";
  EXPECT_EQ(service_->TotalStats().sets, 1u);  // the last set landed
}

TEST_F(ServerTest, ShutdownForceClosesAfterGraceExpires) {
  StartServer();

  auto staller = Connect();
  staller.SendRaw("set never 0 0 10\r\nhel");  // never completed
  ASSERT_TRUE(WaitUntil([&] { return server_->MidRequestConnections() == 1; }));

  bool clean = true;
  std::thread shutdown([&] {
    clean = server_->Shutdown(std::chrono::milliseconds(250));
  });
  // draining() flips only after every loop armed its grace timer, so this
  // Advance is guaranteed to cross an armed deadline.
  ASSERT_TRUE(WaitUntil([&] { return server_->draining(); }));
  clock_.Advance(251ms);

  shutdown.join();
  EXPECT_FALSE(clean) << "an unfinished request must force the drain";
  ExpectConnectionGone(staller);
  EXPECT_EQ(service_->TotalStats().sets, 0u);
}

TEST_F(ServerTest, StatsExposeLifecycleCounters) {
  scfg_.max_conns = 1;
  StartServer();
  auto client = Connect();
  EXPECT_EQ(client.Version(), "pamakv-0.2");
  {
    auto shed = Connect();
    EXPECT_EQ(shed.ReadLine(), "SERVER_ERROR too many connections");
  }
  ASSERT_TRUE(WaitUntil([&] { return server_->rejected_connections() == 1; }));

  const auto stats = client.Stats();
  EXPECT_EQ(Stat(stats, "curr_connections"), 1u);
  EXPECT_EQ(Stat(stats, "total_connections"), 1u);
  EXPECT_EQ(Stat(stats, "rejected_connections"), 1u);
  EXPECT_EQ(Stat(stats, "timed_out_connections"), 0u);
  EXPECT_EQ(Stat(stats, "overflow_closes"), 0u);
  EXPECT_EQ(Stat(stats, "backpressure_pauses"), 0u);
  EXPECT_EQ(Stat(stats, "backpressure_resumes"), 0u);
}

TEST_F(ServerTest, RetryPolicyReconnectsAfterIdleReap) {
  scfg_.idle_timeout_ms = 500;
  StartServer();

  BlockingClient client;
  RetryPolicy policy;
  policy.attempts = 3;
  policy.backoff_base = std::chrono::milliseconds(0);  // no sleeping in tests
  client.set_retry_policy(policy);
  client.Connect("127.0.0.1", server_->port());
  EXPECT_EQ(client.Version(), "pamakv-0.2");
  // The prober round trip serializes behind the client's post-I/O
  // activity stamp on the loop thread — without it, Advance below could
  // slip between the client's reply and its Touch, moving the idle
  // deadline past the jump.
  auto prober = Connect();
  EXPECT_EQ(prober.Version(), "pamakv-0.2");
  ASSERT_TRUE(WaitUntil([&] { return server_->curr_connections() == 2; }));

  // The prober refreshes itself at 499ms; the retrying client last spoke
  // at 0ms, so crossing 500ms reaps it — and only it. The client doesn't
  // know yet.
  clock_.Advance(499ms);
  EXPECT_EQ(prober.Version(), "pamakv-0.2");
  clock_.Advance(2ms);
  ASSERT_TRUE(
      WaitUntil([&] { return server_->timed_out_connections() == 1; }));
  ASSERT_TRUE(WaitUntil([&] { return server_->curr_connections() == 1; }));

  // The next operation hits the dead socket, reconnects under the policy,
  // and completes transparently — the caller never sees the outage.
  EXPECT_EQ(client.Version(), "pamakv-0.2");
  EXPECT_EQ(server_->total_connections(), 3u);
}

// ---------------------------------------------------------------------------
// Fault injection (chaos builds only). Each test arms named failpoints in
// the server's syscall/allocation seams and asserts the hardening holds:
// no lost responses, no leaked fds, no inconsistent cache state.
// ---------------------------------------------------------------------------

#if PAMAKV_FAILPOINTS

/// Open descriptors in this process, via /proc/self/fd.
std::size_t OpenFdCount() {
  std::size_t n = 0;
  DIR* dir = ::opendir("/proc/self/fd");
  if (dir == nullptr) return 0;
  while (::readdir(dir) != nullptr) ++n;
  ::closedir(dir);
  return n >= 3 ? n - 3 : 0;  // ".", "..", and the dirfd itself
}

TEST_F(ServerTest, EmfileAcceptShedsPausesAndRecovers) {
  scfg_.accept_retry_ms = 10;
  StartServer();

  // Five consecutive EMFILEs from accept4: the first pair (accept + shed's
  // accept) forces pause #1, the next pair pause #2, the fifth exhausts
  // the spec mid-shed so the shed's accept goes through for real.
  ASSERT_TRUE(util::FailPoints::Arm("net.accept4", "EMFILE@x5"));

  // The kernel completes this handshake into the backlog even though the
  // server cannot accept it yet.
  auto victim = Connect();
  ASSERT_TRUE(WaitUntil([&] { return server_->accept_pauses() == 1; }));

  // While paused the loop must sleep, not spin: over 100ms of real time it
  // may wake a handful of times (the pending fake-timer's epoll timeout),
  // never thousands.
  const std::uint64_t cycles_before = server_->LoopIterations();
  std::this_thread::sleep_for(100ms);
  EXPECT_LT(server_->LoopIterations() - cycles_before, 50u)
      << "accept pause is busy-spinning the event loop";

  clock_.Advance(11ms);  // retry #1: still EMFILE, pause again
  ASSERT_TRUE(WaitUntil([&] { return server_->accept_pauses() == 2; }));

  clock_.Advance(11ms);  // retry #2: spec exhausts mid-shed -> shed lands
  ASSERT_TRUE(WaitUntil([&] { return server_->emfile_sheds() == 1; }));

  // The shed connection was told why, then closed.
  EXPECT_EQ(victim.ReadLine(), "SERVER_ERROR out of file descriptors");
  ExpectConnectionGone(victim);

  // Accepting has fully recovered, and the storm shows up in stats.
  auto client = Connect();
  EXPECT_EQ(client.Version(), "pamakv-0.2");
  const auto stats = client.Stats();
  EXPECT_EQ(Stat(stats, "emfile_sheds"), 1u);
  EXPECT_EQ(Stat(stats, "accept_pauses"), 2u);
  EXPECT_EQ(Stat(stats, "failpoint.net.accept4"), 5u);
}

TEST_F(ServerTest, OneByteWritesDeliverPipelinedResponsesIntact) {
  StartServer();
  auto client = Connect();
  ASSERT_TRUE(client.Set("k", 3, "payload"));

  // Every server-side write now moves exactly one byte; each response
  // dribbles out over dozens of EPOLLOUT resumptions.
  ASSERT_TRUE(util::FailPoints::Arm("net.writev", "short:1"));
  constexpr int kGets = 400;
  std::string pipeline;
  for (int i = 0; i < kGets; ++i) pipeline += "get k\r\n";
  client.SendRaw(pipeline);

  // Byte-identical responses, in order, nothing dropped or duplicated.
  for (int i = 0; i < kGets; ++i) {
    ASSERT_EQ(client.ReadLine(), "VALUE k 3 7") << "response " << i;
    ASSERT_EQ(client.ReadLine(), "payload") << "response " << i;
    ASSERT_EQ(client.ReadLine(), "END") << "response " << i;
  }
  util::FailPoints::DisableAll();
  EXPECT_GT(util::FailPoints::Trips("net.writev"), 1000u);
  EXPECT_EQ(client.Version(), "pamakv-0.2");
}

TEST_F(ServerTest, OomDuringStoreAnswersServerErrorAndRollsBack) {
  StartServer();
  auto client = Connect();
  ASSERT_TRUE(client.Set("resident", 1, "untouchable"));
  const auto before = client.Stats();

  // The service-layer allocation (key/value string storage) fails once.
  ASSERT_TRUE(util::FailPoints::Arm("svc.store_bytes", "oom@once"));
  try {
    client.Set("victim", 0, "value");
    FAIL() << "expected SERVER_ERROR";
  } catch (const ClientError& e) {
    EXPECT_EQ(e.kind(), ClientError::Kind::kServerError);
    EXPECT_STREQ(e.what(), "SERVER_ERROR out of memory storing object");
  }
  util::FailPoints::DisableAll();

  // The failed store is invisible (gauges unchanged), the connection
  // stayed up, and the same Set succeeds afterwards.
  const auto after = client.Stats();
  EXPECT_EQ(Stat(after, "bytes"), Stat(before, "bytes"));
  EXPECT_EQ(Stat(after, "curr_items"), Stat(before, "curr_items"));
  EXPECT_EQ(Stat(after, "failpoint.svc.store_bytes"), 1u);
  std::string value;
  ASSERT_TRUE(client.Get("resident", value));
  EXPECT_EQ(value, "untouchable");
  ASSERT_TRUE(client.Set("victim", 0, "value"));
  ASSERT_TRUE(client.Get("victim", value));
  EXPECT_EQ(value, "value");
}

TEST_F(ServerTest, OomInEngineItemTableAlsoAnswersServerError) {
  StartServer();
  auto client = Connect();
  ASSERT_TRUE(client.Set("resident", 1, "untouchable"));
  const auto before = client.Stats();

  // Deeper seam: the engine's item-table growth throws while the service
  // layer has already resolved the shard — rollback must span both layers.
  ASSERT_TRUE(util::FailPoints::Arm("engine.item_alloc", "oom@once"));
  try {
    client.Set("victim", 0, "value");
    FAIL() << "expected SERVER_ERROR";
  } catch (const ClientError& e) {
    EXPECT_EQ(e.kind(), ClientError::Kind::kServerError);
  }
  util::FailPoints::DisableAll();

  const auto after = client.Stats();
  EXPECT_EQ(Stat(after, "bytes"), Stat(before, "bytes"));
  EXPECT_EQ(Stat(after, "curr_items"), Stat(before, "curr_items"));
  std::string value;
  EXPECT_FALSE(client.Get("victim", value));
  ASSERT_TRUE(client.Set("victim", 0, "value"));
  ASSERT_TRUE(client.Get("victim", value));
  EXPECT_EQ(value, "value");
}

TEST_F(ServerTest, FailedStartLeaksNoDescriptorsAndIsRetryable) {
  const std::size_t fds_before = OpenFdCount();
  ASSERT_TRUE(util::FailPoints::Arm("net.socket", "EMFILE@once"));
  EXPECT_THROW(StartServer(), std::system_error);
  util::FailPoints::DisableAll();
  server_.reset();
  service_.reset();
  EXPECT_EQ(OpenFdCount(), fds_before);

  // Nothing half-open lingers: the next Start works.
  StartServer();
  auto client = Connect();
  EXPECT_EQ(client.Version(), "pamakv-0.2");
}

TEST_F(ServerTest, EventLoopSetupFailureCleansUpListener) {
  const std::size_t fds_before = OpenFdCount();
  // The listener socket opens fine; the loop's eventfd then fails. Start
  // must close the already-bound listener (and the EMFILE spare) on the
  // way out.
  ASSERT_TRUE(util::FailPoints::Arm("net.eventfd", "EMFILE@once"));
  EXPECT_THROW(StartServer(), std::system_error);
  util::FailPoints::DisableAll();
  server_.reset();
  service_.reset();
  EXPECT_EQ(OpenFdCount(), fds_before);

  StartServer();
  auto client = Connect();
  EXPECT_EQ(client.Version(), "pamakv-0.2");
}

#endif  // PAMAKV_FAILPOINTS

TEST_F(ServerTest, AbruptStopSurfacesTypedClientError) {
  StartServer();
  auto client = Connect();
  EXPECT_EQ(client.Version(), "pamakv-0.2");
  server_->Stop();
  try {
    std::string value;
    client.Get("anything", value);
    // A race may let one request through a dying socket; the next cannot.
    client.Get("anything", value);
    FAIL() << "expected a ClientError after server stop";
  } catch (const ClientError& e) {
    EXPECT_TRUE(e.kind() == ClientError::Kind::kConnectionClosed ||
                e.kind() == ClientError::Kind::kConnectionReset ||
                e.kind() == ClientError::Kind::kShortRead)
        << e.what();
  }
}

// ---- observability (DESIGN.md §10) ----

TEST_F(ServerTest, MetricsEndpointServesPrometheusExposition) {
  StartServer("pama", 1, 2, /*with_metrics=*/true);
  MetricsHttpConfig mcfg;
  mcfg.port = 0;  // ephemeral
  MetricsHttpServer http(mcfg, registry_);
  http.Start();
  ASSERT_NE(http.port(), 0);

  auto client = Connect();
  ASSERT_TRUE(client.Set("k", 1'000, "value"));
  std::string value;
  EXPECT_TRUE(client.Get("k", value));

  std::string head;
  const std::string body = HttpGet(http.port(), "/metrics", &head);
  EXPECT_NE(head.find("HTTP/1.0 200"), std::string::npos) << head;
  EXPECT_NE(head.find("text/plain; version=0.0.4"), std::string::npos) << head;
  EXPECT_EQ(http.scrapes(), 1u);

  // Every non-comment line must be `series value` with a parseable value
  // (the same lint CI applies to the live endpoint).
  const auto series = ParseExposition(body);
  EXPECT_GT(series.size(), 50u);
  for (const auto& [name, val] : series) {
    char* end = nullptr;
    std::strtod(val.c_str(), &end);
    EXPECT_EQ(*end, '\0') << name << " " << val;
  }
  EXPECT_EQ(series.at("pamakv_cmd_get"), "1");
  EXPECT_EQ(series.at("pamakv_cmd_set"), "1");
  EXPECT_EQ(series.at("pamakv_curr_connections"), "1");
  EXPECT_EQ(series.at("pamakv_service_time_us_count{verb=\"get\"}"), "1");
  // Cumulative histogram: the +Inf bucket equals _count.
  EXPECT_EQ(series.at("pamakv_service_time_us_bucket{verb=\"get\",le=\"+Inf\"}"),
            series.at("pamakv_service_time_us_count{verb=\"get\"}"));

  // Unknown paths 404; the scrape counter does not move.
  const std::string missing = HttpGet(http.port(), "/nope", &head);
  EXPECT_NE(head.find("HTTP/1.0 404"), std::string::npos) << head;
  EXPECT_EQ(http.scrapes(), 1u);

  http.Stop();
}

TEST_F(ServerTest, StatsDetailMatchesPrometheusEndpointMidLoad) {
  // Both surfaces render from the same registry snapshot type with the
  // same number formatter, so with the cache quiescent between the two
  // scrapes every shared series must agree byte-for-byte.
  StartServer("pama", 1, 2, /*with_metrics=*/true);
  MetricsHttpConfig mcfg;
  mcfg.port = 0;
  MetricsHttpServer http(mcfg, registry_);
  http.Start();

  auto client = Connect();
  std::string value;
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(client.Set("key" + std::to_string(i),
                           1'000 * (1 + i % 4),  // spread across bands
                           std::string(32 + i * 8, 'v')));
  }
  for (int i = 0; i < 64; ++i) {
    EXPECT_TRUE(client.Get("key" + std::to_string(i), value));
  }
  EXPECT_FALSE(client.Get("missing", value));
  EXPECT_TRUE(client.Delete("key0"));

  // HTTP scrape first: the later `stats detail` snapshot observes nothing
  // new in between (its own service time is recorded only after the
  // response is built), so the two snapshots see identical state.
  const auto prom = ParseExposition(HttpGet(http.port(), "/metrics"));
  ASSERT_FALSE(prom.empty());

  client.SendRaw("stats detail\r\n");
  std::map<std::string, std::string> ascii;
  for (std::string line = client.ReadLine(); line != "END";
       line = client.ReadLine()) {
    ASSERT_TRUE(line.rfind("STAT ", 0) == 0) << line;
    const auto sp = line.rfind(' ');
    ASSERT_GT(sp, 5u) << line;
    ascii[line.substr(5, sp - 5)] = line.substr(sp + 1);
  }

  // Every registry-backed STAT series that has a Prometheus spelling must
  // carry the identical value string. (ASCII quantile rows _p50/_p99/_p999
  // have no exposition counterpart; buckets exist only in Prometheus.)
  std::size_t matched = 0;
  for (const auto& [name, val] : ascii) {
    const auto it = prom.find(name);
    if (it == prom.end()) continue;
    EXPECT_EQ(val, it->second) << name;
    ++matched;
  }
  EXPECT_GT(matched, 30u);
  // Spot-check the load is actually in the numbers, not vacuously equal.
  ASSERT_TRUE(ascii.count("pamakv_cmd_get"));
  EXPECT_EQ(ascii.at("pamakv_cmd_get"), "65");
  ASSERT_TRUE(ascii.count("pamakv_service_time_us_count{verb=\"set\"}"));
  EXPECT_EQ(ascii.at("pamakv_service_time_us_count{verb=\"set\"}"), "64");
  ASSERT_TRUE(ascii.count("pamakv_curr_items"));
  EXPECT_EQ(ascii.at("pamakv_curr_items"), "63");

  http.Stop();
}

TEST_F(ServerTest, PlainStatsOmitsRegistrySeries) {
  StartServer("memcached", 1, 2, /*with_metrics=*/true);
  auto client = Connect();
  ASSERT_TRUE(client.Set("k", 100, "v"));
  client.SendRaw("stats\r\n");
  for (std::string line = client.ReadLine(); line != "END";
       line = client.ReadLine()) {
    EXPECT_EQ(line.find("pamakv_"), std::string::npos) << line;
  }
  // And a bad argument is a client error, not a silent fallback.
  client.SendRaw("stats bogus\r\n");
  const std::string err = client.ReadLine();
  EXPECT_TRUE(err.rfind("CLIENT_ERROR", 0) == 0) << err;
}

}  // namespace
}  // namespace pamakv::net
