// Behavioral tests for the baseline allocation policies the paper compares
// against (Sec. II): original Memcached, PSA, Twemcache, Facebook's
// age balancer.
#include <gtest/gtest.h>

#include "pamakv/cache/cache_engine.hpp"
#include "pamakv/policy/facebook_age.hpp"
#include "pamakv/policy/no_realloc.hpp"
#include "pamakv/policy/psa.hpp"
#include "pamakv/policy/twemcache.hpp"

namespace pamakv {
namespace {

// 1 KiB slabs, classes 64/128/256/512 B.
EngineConfig TinyConfig(Bytes capacity) {
  EngineConfig cfg;
  cfg.size_classes.slab_bytes = 1024;
  cfg.size_classes.min_slot_bytes = 64;
  cfg.size_classes.num_classes = 4;
  cfg.capacity_bytes = capacity;
  return cfg;
}

// ---------------- Original Memcached ----------------

TEST(NoReallocTest, AllocationsFreezeAfterWarmup) {
  CacheEngine engine(TinyConfig(2048), std::make_unique<NoReallocPolicy>());
  // Warm up: class 0 and class 3 take one slab each.
  engine.Set(1, 50, 100);
  engine.Set(2, 512, 100);
  ASSERT_EQ(engine.pool().free_slabs(), 0u);
  const auto slabs0 = engine.pool().ClassSlabCount(0);
  const auto slabs3 = engine.pool().ClassSlabCount(3);
  // Heavy churn in class 3 cannot take class 0's slab.
  for (KeyId k = 100; k < 200; ++k) engine.Set(k, 512, 100);
  EXPECT_EQ(engine.pool().ClassSlabCount(0), slabs0);
  EXPECT_EQ(engine.pool().ClassSlabCount(3), slabs3);
  EXPECT_EQ(engine.stats().slab_migrations, 0u);
  EXPECT_TRUE(engine.Contains(1));  // class 0's item untouched
}

TEST(NoReallocTest, EvictsWithinOwnClass) {
  CacheEngine engine(TinyConfig(1024), std::make_unique<NoReallocPolicy>());
  engine.Set(1, 512, 100);
  engine.Set(2, 512, 100);
  engine.Set(3, 512, 100);
  EXPECT_FALSE(engine.Contains(1));
  EXPECT_TRUE(engine.Contains(2));
  EXPECT_TRUE(engine.Contains(3));
}

// ---------------- PSA ----------------

class PsaTest : public ::testing::Test {
 protected:
  std::unique_ptr<CacheEngine> MakeEngine(Bytes capacity, PsaConfig cfg) {
    auto policy = std::make_unique<PsaPolicy>(cfg);
    psa_ = policy.get();
    return std::make_unique<CacheEngine>(TinyConfig(capacity),
                                         std::move(policy));
  }
  PsaPolicy* psa_ = nullptr;
};

TEST_F(PsaTest, CountsRequestsAndMissesPerClass) {
  PsaConfig cfg;
  cfg.window_accesses = 1'000'000;  // never rotates in this test
  auto engine = MakeEngine(4096, cfg);
  engine->Set(1, 50, 100);
  engine->Get(1, 50, 100);   // hit in class 0
  engine->Get(2, 50, 100);   // miss routed to class 0
  engine->Get(3, 512, 100);  // miss routed to class 3
  EXPECT_EQ(psa_->WindowRequests(0), 2u);
  EXPECT_EQ(psa_->WindowMisses(0), 1u);
  EXPECT_EQ(psa_->WindowMisses(3), 1u);
}

TEST_F(PsaTest, WindowRotationResetsCounters) {
  PsaConfig cfg;
  cfg.window_accesses = 4;
  auto engine = MakeEngine(4096, cfg);
  engine->Get(2, 50, 100);
  engine->Get(3, 50, 100);
  EXPECT_GT(psa_->WindowMisses(0), 0u);
  for (int i = 0; i < 5; ++i) engine->Get(100, 512, 100);
  EXPECT_EQ(psa_->WindowRequests(0), 0u);  // class 0 counters cleared
}

TEST_F(PsaTest, RelocatesFromLowDensityToMissHeavyClass) {
  PsaConfig cfg;
  cfg.misses_per_relocation = 8;
  cfg.window_accesses = 1'000'000;
  auto engine = MakeEngine(2048, cfg);  // 2 slabs
  // Class 0 takes a slab with one cold item; class 3 takes the other.
  engine->Set(1, 50, 100);
  engine->Set(2, 512, 100);
  engine->Set(3, 512, 100);
  ASSERT_EQ(engine->pool().free_slabs(), 0u);
  // Hammer class 3 with misses; class 0 stays idle (lowest density).
  for (KeyId k = 100; k < 160; ++k) {
    engine->Get(k, 512, 100);
    engine->Set(k, 512, 100);
  }
  EXPECT_EQ(engine->pool().ClassSlabCount(0), 0u);
  EXPECT_EQ(engine->pool().ClassSlabCount(3), 2u);
  EXPECT_GT(engine->stats().slab_migrations, 0u);
}

TEST_F(PsaTest, StarvedClassEventuallyServed) {
  PsaConfig cfg;
  cfg.misses_per_relocation = 1000000;  // periodic path never triggers
  auto engine = MakeEngine(1024, cfg);  // single slab
  engine->Set(1, 512, 100);             // class 3 owns the only slab
  // Class 0 store must succeed by pulling the slab from class 3.
  const auto result = engine->Set(2, 50, 100);
  EXPECT_TRUE(result.stored);
  EXPECT_EQ(engine->pool().ClassSlabCount(0), 1u);
  EXPECT_EQ(engine->pool().ClassSlabCount(3), 0u);
}

// ---------------- Twemcache ----------------

TEST(TwemcacheTest, MakesRoomViaRandomDonor) {
  CacheEngine engine(TinyConfig(2048),
                     std::make_unique<TwemcachePolicy>(123));
  engine.Set(1, 50, 100);   // class 0
  engine.Set(2, 512, 100);  // class 3
  ASSERT_EQ(engine.pool().free_slabs(), 0u);
  // Class 1 needs space; some class must donate.
  const auto result = engine.Set(3, 100, 100);
  EXPECT_TRUE(result.stored);
  EXPECT_EQ(engine.pool().ClassSlabCount(1), 1u);
}

TEST(TwemcacheTest, DeterministicForFixedSeed) {
  auto run = [](std::uint64_t seed) {
    CacheEngine engine(TinyConfig(4096),
                       std::make_unique<TwemcachePolicy>(seed));
    for (KeyId k = 0; k < 300; ++k) {
      engine.Set(k, 50 + (k % 4) * 128, 100);
    }
    std::vector<std::size_t> slabs;
    for (ClassId c = 0; c < 4; ++c) slabs.push_back(engine.pool().ClassSlabCount(c));
    return slabs;
  };
  EXPECT_EQ(run(7), run(7));
}

TEST(TwemcacheTest, SpreadsEvictionsAcrossClasses) {
  CacheEngine engine(TinyConfig(8192),
                     std::make_unique<TwemcachePolicy>(99));
  // Fill with all four classes, then churn class 0 hard.
  for (KeyId k = 0; k < 400; ++k) engine.Set(k, 50 + (k % 4) * 128, 100);
  const auto before3 = engine.pool().ClassSlabCount(3);
  for (KeyId k = 1000; k < 1400; ++k) engine.Set(k, 50, 100);
  // Random donation should, with overwhelming probability, have taken at
  // least one slab from some other class.
  const bool someone_donated = engine.pool().ClassSlabCount(1) +
                                   engine.pool().ClassSlabCount(2) +
                                   engine.pool().ClassSlabCount(3) <
                               before3 + engine.pool().ClassSlabCount(1) +
                                   engine.pool().ClassSlabCount(2);
  (void)someone_donated;  // structural assertion below is the real check
  EXPECT_GT(engine.stats().slab_migrations, 0u);
}

// ---------------- Facebook age balancer ----------------

TEST(FacebookAgeTest, MovesSlabTowardYoungClass) {
  FacebookAgeConfig cfg;
  cfg.check_interval = 10;
  auto policy = std::make_unique<FacebookAgePolicy>(cfg);
  CacheEngine engine(TinyConfig(3072), std::move(policy));  // 3 slabs
  // Class 3: 2 slabs of stale items. Class 0: 1 slab, constantly churning.
  engine.Set(1, 512, 100);
  engine.Set(2, 512, 100);
  engine.Set(3, 512, 100);
  engine.Set(4, 512, 100);
  for (KeyId k = 10; k < 200; ++k) {
    engine.Set(1000 + k, 50, 100);  // class 0 churns, its LRU age is tiny
    engine.Get(1000 + k, 50, 100);
  }
  // The balancer should have moved at least one slab from the stale class 3
  // toward class 0.
  EXPECT_GT(engine.pool().ClassSlabCount(0), 1u);
  EXPECT_LT(engine.pool().ClassSlabCount(3), 2u);
}

TEST(FacebookAgeTest, BalancedAgesStayPut) {
  // Three classes, eight items each, touched round-robin with the class
  // varying fastest: every class's LRU tail age stays within one or two
  // accesses of the others — far inside the 20% tolerance — so the
  // balancer must not move anything.
  FacebookAgeConfig cfg;
  cfg.check_interval = 7;
  CacheEngine engine(TinyConfig(4096),
                     std::make_unique<FacebookAgePolicy>(cfg));
  auto key_of = [](ClassId c, int i) {
    return static_cast<KeyId>(c) * 100 + static_cast<KeyId>(i);
  };
  const Bytes size_of_class[3] = {64, 128, 256};
  for (int i = 0; i < 8; ++i) {
    for (ClassId c = 0; c < 3; ++c) {
      engine.Set(key_of(c, i), size_of_class[c], 100);
    }
  }
  ASSERT_EQ(engine.pool().free_slabs(), 0u);
  for (int round = 0; round < 30; ++round) {
    for (int i = 0; i < 8; ++i) {
      for (ClassId c = 0; c < 3; ++c) {
        engine.Get(key_of(c, i), size_of_class[c], 100);
      }
    }
  }
  EXPECT_EQ(engine.stats().slab_migrations, 0u);
}

TEST(FacebookAgeTest, NoBalancingWhileFreeSlabsRemain) {
  FacebookAgeConfig cfg;
  cfg.check_interval = 1;
  CacheEngine engine(TinyConfig(8192),  // plenty of free slabs
                     std::make_unique<FacebookAgePolicy>(cfg));
  engine.Set(1, 50, 100);
  engine.Set(2, 512, 100);
  for (int round = 0; round < 50; ++round) engine.Get(1, 50, 100);
  EXPECT_EQ(engine.stats().slab_migrations, 0u);
}

}  // namespace
}  // namespace pamakv
