#include "pamakv/util/histogram.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace pamakv {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats s;
  s.Add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, KnownMoments) {
  RunningStats s;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatsTest, ResetClears) {
  RunningStats s;
  s.Add(1.0);
  s.Add(2.0);
  s.Reset();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.sum(), 0.0);
}

TEST(LogHistogramTest, BucketsCoverRange) {
  LogHistogram h(1.0, 1000.0, 3);  // decades
  h.Add(2.0);
  h.Add(20.0);
  h.Add(200.0);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 1u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(LogHistogramTest, OutOfRangeClamped) {
  LogHistogram h(1.0, 100.0, 2);
  h.Add(0.001);
  h.Add(1e9);
  h.Add(-5.0);
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(1), 1u);
}

TEST(LogHistogramTest, WeightsAccumulate) {
  LogHistogram h(1.0, 100.0, 2);
  h.Add(2.0, 10);
  EXPECT_EQ(h.bucket(0), 10u);
  EXPECT_EQ(h.total(), 10u);
}

TEST(LogHistogramTest, BucketBoundsAreGeometric) {
  LogHistogram h(1.0, 1000.0, 3);
  EXPECT_NEAR(h.BucketLow(0), 1.0, 1e-9);
  EXPECT_NEAR(h.BucketHigh(0), 10.0, 1e-9);
  EXPECT_NEAR(h.BucketLow(2), 100.0, 1e-9);
  EXPECT_NEAR(h.BucketHigh(2), 1000.0, 1e-6);
  EXPECT_NEAR(h.BucketMid(1), std::sqrt(10.0 * 100.0), 1e-9);
}

TEST(LogHistogramTest, QuantileInterpolatesBuckets) {
  LogHistogram h(1.0, 10000.0, 4);
  for (int i = 0; i < 90; ++i) h.Add(5.0);    // bucket 0
  for (int i = 0; i < 10; ++i) h.Add(5000.0); // bucket 3
  EXPECT_LT(h.Quantile(0.5), 10.0);
  EXPECT_GT(h.Quantile(0.99), 1000.0);
}

TEST(LogHistogramTest, InvalidArgsThrow) {
  EXPECT_THROW(LogHistogram(0.0, 10.0, 4), std::invalid_argument);
  EXPECT_THROW(LogHistogram(10.0, 10.0, 4), std::invalid_argument);
  EXPECT_THROW(LogHistogram(1.0, 10.0, 0), std::invalid_argument);
}

TEST(ExactQuantileTest, MedianAndExtremes) {
  std::vector<double> v = {5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_EQ(ExactQuantile(v, 0.5), 3.0);
  EXPECT_EQ(ExactQuantile(v, 0.0), 1.0);
  EXPECT_EQ(ExactQuantile(v, 1.0), 5.0);
  EXPECT_EQ(ExactQuantile({}, 0.5), 0.0);
}

}  // namespace
}  // namespace pamakv
