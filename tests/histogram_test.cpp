#include "pamakv/util/histogram.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "pamakv/util/rng.hpp"

namespace pamakv {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats s;
  s.Add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, KnownMoments) {
  RunningStats s;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatsTest, ResetClears) {
  RunningStats s;
  s.Add(1.0);
  s.Add(2.0);
  s.Reset();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.sum(), 0.0);
}

TEST(LogHistogramTest, BucketsCoverRange) {
  LogHistogram h(1.0, 1000.0, 3);  // decades
  h.Add(2.0);
  h.Add(20.0);
  h.Add(200.0);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 1u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(LogHistogramTest, OutOfRangeClamped) {
  LogHistogram h(1.0, 100.0, 2);
  h.Add(0.001);
  h.Add(1e9);
  h.Add(-5.0);
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(1), 1u);
}

TEST(LogHistogramTest, WeightsAccumulate) {
  LogHistogram h(1.0, 100.0, 2);
  h.Add(2.0, 10);
  EXPECT_EQ(h.bucket(0), 10u);
  EXPECT_EQ(h.total(), 10u);
}

TEST(LogHistogramTest, BucketBoundsAreGeometric) {
  LogHistogram h(1.0, 1000.0, 3);
  EXPECT_NEAR(h.BucketLow(0), 1.0, 1e-9);
  EXPECT_NEAR(h.BucketHigh(0), 10.0, 1e-9);
  EXPECT_NEAR(h.BucketLow(2), 100.0, 1e-9);
  EXPECT_NEAR(h.BucketHigh(2), 1000.0, 1e-6);
  EXPECT_NEAR(h.BucketMid(1), std::sqrt(10.0 * 100.0), 1e-9);
}

TEST(LogHistogramTest, QuantileInterpolatesBuckets) {
  LogHistogram h(1.0, 10000.0, 4);
  for (int i = 0; i < 90; ++i) h.Add(5.0);    // bucket 0
  for (int i = 0; i < 10; ++i) h.Add(5000.0); // bucket 3
  EXPECT_LT(h.Quantile(0.5), 10.0);
  EXPECT_GT(h.Quantile(0.99), 1000.0);
}

TEST(LogHistogramTest, EmptyQuantileIsZero) {
  const LogHistogram h(1.0, 1000.0, 8);
  EXPECT_EQ(h.Quantile(0.0), 0.0);
  EXPECT_EQ(h.Quantile(0.5), 0.0);
  EXPECT_EQ(h.Quantile(1.0), 0.0);
}

TEST(LogHistogramTest, LowQuantileNeverAnswersFromEmptyLeadingBuckets) {
  // Regression: the old target rank floor(q * total) could be 0, which an
  // empty bucket 0 "satisfies" — so p1 of an all-high distribution came
  // back from the bottom of the range. The rank is now max(1, ceil(...)).
  LogHistogram h(1.0, 10000.0, 8);
  for (int i = 0; i < 100; ++i) h.Add(5000.0);
  EXPECT_GT(h.Quantile(0.001), 1000.0);
  EXPECT_GT(h.Quantile(0.01), 1000.0);
}

TEST(LogHistogramTest, MaxBucketSaturationStillReportsTail) {
  // Values beyond max clamp into the last bucket; quantiles must keep
  // answering from it instead of walking off the end.
  LogHistogram h(1.0, 100.0, 4);
  for (int i = 0; i < 10; ++i) h.Add(1e9);
  EXPECT_EQ(h.total(), 10u);
  const double p999 = h.Quantile(0.999);
  EXPECT_GE(p999, h.BucketLow(3));
  EXPECT_LE(p999, h.BucketHigh(3) * (1.0 + 1e-9));
}

TEST(LogHistogramTest, QuantileMatchesSortedVectorOracle) {
  // Property: against the exact sorted-vector quantile, the bucketed
  // answer may be off by at most one bucket width in log space.
  Rng rng(42);
  LogHistogram h(1.0, 1e6, 48);
  std::vector<double> values;
  for (int i = 0; i < 5000; ++i) {
    // Log-uniform across the whole range, plus a heavy cluster near 100.
    const double v = i % 3 == 0
                         ? std::exp(rng.NextDouble() * std::log(1e6))
                         : 80.0 + 40.0 * rng.NextDouble();
    values.push_back(v);
    h.Add(v);
  }
  // Tolerance: half a bucket each for value-vs-midpoint on both sides,
  // plus one bucket for the rank conventions differing by one sample.
  const double log_bucket_width = std::log(1e6) / 48.0;
  for (const double q : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999}) {
    const double exact = ExactQuantile(values, q);
    const double approx = h.Quantile(q);
    EXPECT_NEAR(std::log(approx), std::log(exact),
                2.0 * log_bucket_width + 1e-9)
        << "q=" << q << " exact=" << exact << " approx=" << approx;
  }
}

TEST(LogHistogramTest, MergeIdenticalLayoutsAddsBucketwise) {
  LogHistogram a(1.0, 1000.0, 6);
  LogHistogram b(1.0, 1000.0, 6);
  a.Add(2.0, 3);
  a.Add(500.0, 1);
  b.Add(2.0, 2);
  b.Add(50.0, 4);
  a.Merge(b);
  EXPECT_EQ(a.total(), 10u);
  LogHistogram both(1.0, 1000.0, 6);
  both.Add(2.0, 5);
  both.Add(500.0, 1);
  both.Add(50.0, 4);
  for (std::size_t i = 0; i < a.bucket_count(); ++i) {
    EXPECT_EQ(a.bucket(i), both.bucket(i)) << "bucket " << i;
  }
}

TEST(LogHistogramTest, MergeMismatchedLayoutsDoesNotMisreportTail) {
  // Regression target: merging a fine-grained shard histogram into a
  // coarse aggregate by bucket *position* would drop the tail mass into
  // low buckets and destroy p999. Re-binning by midpoint keeps the tail
  // within one coarse bucket of the truth.
  LogHistogram coarse(1.0, 1e6, 12);
  LogHistogram fine(1.0, 1e6, 96);
  std::vector<double> values;
  for (int i = 0; i < 999; ++i) {
    fine.Add(10.0);
    values.push_back(10.0);
  }
  fine.Add(2e5);  // the single p999 outlier
  values.push_back(2e5);
  coarse.Merge(fine);
  EXPECT_EQ(coarse.total(), 1000u);
  const double log_bucket_width = std::log(1e6) / 12.0;
  EXPECT_NEAR(std::log(coarse.Quantile(0.9995)), std::log(2e5),
              log_bucket_width + 1e-9);
  EXPECT_NEAR(std::log(coarse.Quantile(0.5)), std::log(10.0),
              log_bucket_width + 1e-9);

  // And the other direction: coarse into fine.
  LogHistogram fine2(1.0, 1e6, 96);
  fine2.Merge(coarse);
  EXPECT_EQ(fine2.total(), 1000u);
  EXPECT_NEAR(std::log(fine2.Quantile(0.9995)), std::log(2e5),
              2.0 * log_bucket_width + 1e-9);
}

TEST(LogHistogramTest, MergeEmptyIsIdentity) {
  LogHistogram a(1.0, 100.0, 4);
  a.Add(5.0, 7);
  const LogHistogram empty(1.0, 1000.0, 9);
  a.Merge(empty);
  EXPECT_EQ(a.total(), 7u);
  EXPECT_NEAR(a.Quantile(0.5), a.BucketMid(1), a.BucketHigh(1));
}

TEST(LogHistogramTest, InvalidArgsThrow) {
  EXPECT_THROW(LogHistogram(0.0, 10.0, 4), std::invalid_argument);
  EXPECT_THROW(LogHistogram(10.0, 10.0, 4), std::invalid_argument);
  EXPECT_THROW(LogHistogram(1.0, 10.0, 0), std::invalid_argument);
}

TEST(ExactQuantileTest, MedianAndExtremes) {
  std::vector<double> v = {5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_EQ(ExactQuantile(v, 0.5), 3.0);
  EXPECT_EQ(ExactQuantile(v, 0.0), 1.0);
  EXPECT_EQ(ExactQuantile(v, 1.0), 5.0);
  EXPECT_EQ(ExactQuantile({}, 0.5), 0.0);
}

}  // namespace
}  // namespace pamakv
