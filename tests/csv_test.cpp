#include "pamakv/util/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace pamakv {
namespace {

TEST(CsvTest, HeaderAndRows) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.WriteHeader({"a", "b", "c"});
  csv.WriteRow(1, 2.5, "x");
  EXPECT_EQ(out.str(), "a,b,c\n1,2.5,x\n");
}

TEST(CsvTest, QuotesFieldsWithSeparators) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.WriteRow(std::string("has,comma"), std::string("plain"));
  EXPECT_EQ(out.str(), "\"has,comma\",plain\n");
}

TEST(CsvTest, EscapesEmbeddedQuotes) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.WriteRow(std::string("say \"hi\""));
  EXPECT_EQ(out.str(), "\"say \"\"hi\"\"\"\n");
}

TEST(CsvTest, CustomSeparator) {
  std::ostringstream out;
  CsvWriter csv(out, '\t');
  csv.WriteRow(1, 2);
  EXPECT_EQ(out.str(), "1\t2\n");
}

TEST(CsvTest, DoubleFormattingIsCompact) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.WriteRow(0.25, 1000000.0);
  EXPECT_EQ(out.str(), "0.25,1e+06\n");
}

TEST(CsvTest, IntegerTypes) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.WriteRow(std::uint64_t{18446744073709551615ULL}, std::int64_t{-5});
  EXPECT_EQ(out.str(), "18446744073709551615,-5\n");
}

}  // namespace
}  // namespace pamakv
