#include "pamakv/cache/hash_index.hpp"

#include <gtest/gtest.h>

#include <unordered_map>

#include "pamakv/util/rng.hpp"

namespace pamakv {
namespace {

TEST(HashIndexTest, EmptyFindsNothing) {
  HashIndex idx;
  EXPECT_EQ(idx.Find(42), kInvalidHandle);
  EXPECT_EQ(idx.size(), 0u);
  EXPECT_FALSE(idx.Erase(42));
}

TEST(HashIndexTest, InsertAndFind) {
  HashIndex idx;
  idx.Upsert(1, 100);
  idx.Upsert(2, 200);
  EXPECT_EQ(idx.Find(1), 100u);
  EXPECT_EQ(idx.Find(2), 200u);
  EXPECT_EQ(idx.Find(3), kInvalidHandle);
  EXPECT_EQ(idx.size(), 2u);
}

TEST(HashIndexTest, UpsertOverwrites) {
  HashIndex idx;
  idx.Upsert(1, 100);
  idx.Upsert(1, 999);
  EXPECT_EQ(idx.Find(1), 999u);
  EXPECT_EQ(idx.size(), 1u);
}

TEST(HashIndexTest, EraseRemoves) {
  HashIndex idx;
  idx.Upsert(1, 100);
  EXPECT_TRUE(idx.Erase(1));
  EXPECT_EQ(idx.Find(1), kInvalidHandle);
  EXPECT_EQ(idx.size(), 0u);
  EXPECT_FALSE(idx.Erase(1));
}

TEST(HashIndexTest, KeyZeroIsAValidKey) {
  HashIndex idx;
  idx.Upsert(0, 7);
  EXPECT_EQ(idx.Find(0), 7u);
  EXPECT_TRUE(idx.Erase(0));
  EXPECT_EQ(idx.Find(0), kInvalidHandle);
}

TEST(HashIndexTest, GrowsPastInitialCapacity) {
  HashIndex idx(16);
  for (KeyId k = 0; k < 10000; ++k) idx.Upsert(k, static_cast<ItemHandle>(k));
  EXPECT_EQ(idx.size(), 10000u);
  EXPECT_GE(idx.capacity(), 10000u);
  for (KeyId k = 0; k < 10000; ++k) {
    ASSERT_EQ(idx.Find(k), static_cast<ItemHandle>(k));
  }
}

TEST(HashIndexTest, SequentialKeysDoNotDegenerate) {
  // Sequential synthetic keys must spread via the mixer; probe distances
  // stay short enough that this completes instantly.
  HashIndex idx;
  for (KeyId k = 0; k < 100000; ++k) idx.Upsert(k, 1);
  for (KeyId k = 0; k < 100000; ++k) ASSERT_NE(idx.Find(k), kInvalidHandle);
}

TEST(HashIndexTest, BackwardShiftPreservesNeighbors) {
  // Churn erases keys in clusters to exercise backward-shift deletion.
  HashIndex idx(16);
  for (KeyId k = 0; k < 64; ++k) idx.Upsert(k, static_cast<ItemHandle>(k + 1));
  for (KeyId k = 0; k < 64; k += 2) EXPECT_TRUE(idx.Erase(k));
  for (KeyId k = 1; k < 64; k += 2) {
    ASSERT_EQ(idx.Find(k), static_cast<ItemHandle>(k + 1)) << "key " << k;
  }
  for (KeyId k = 0; k < 64; k += 2) {
    ASSERT_EQ(idx.Find(k), kInvalidHandle);
  }
}

TEST(HashIndexTest, AgreesWithUnorderedMapUnderChurn) {
  HashIndex idx(16);
  std::unordered_map<KeyId, ItemHandle> model;
  Rng rng(31337);
  for (int op = 0; op < 50000; ++op) {
    const KeyId key = rng.NextBounded(2000);
    const std::uint64_t choice = rng.NextBounded(100);
    if (choice < 50) {
      const auto handle = static_cast<ItemHandle>(rng.NextBounded(1 << 20));
      idx.Upsert(key, handle);
      model[key] = handle;
    } else if (choice < 80) {
      const bool a = idx.Erase(key);
      const bool b = model.erase(key) > 0;
      ASSERT_EQ(a, b) << "op " << op;
    } else {
      const auto it = model.find(key);
      const ItemHandle expect = it == model.end() ? kInvalidHandle : it->second;
      ASSERT_EQ(idx.Find(key), expect) << "op " << op;
    }
    ASSERT_EQ(idx.size(), model.size());
  }
  for (const auto& [key, handle] : model) {
    ASSERT_EQ(idx.Find(key), handle);
  }
}

}  // namespace
}  // namespace pamakv
