#include "pamakv/cache/hash_index.hpp"

#include <gtest/gtest.h>

#include <unordered_map>

#include "pamakv/util/rng.hpp"

namespace pamakv {
namespace {

TEST(HashIndexTest, EmptyFindsNothing) {
  HashIndex idx;
  EXPECT_EQ(idx.Find(42), kInvalidHandle);
  EXPECT_EQ(idx.size(), 0u);
  EXPECT_FALSE(idx.Erase(42));
}

TEST(HashIndexTest, InsertAndFind) {
  HashIndex idx;
  idx.Upsert(1, 100);
  idx.Upsert(2, 200);
  EXPECT_EQ(idx.Find(1), 100u);
  EXPECT_EQ(idx.Find(2), 200u);
  EXPECT_EQ(idx.Find(3), kInvalidHandle);
  EXPECT_EQ(idx.size(), 2u);
}

TEST(HashIndexTest, UpsertOverwrites) {
  HashIndex idx;
  idx.Upsert(1, 100);
  idx.Upsert(1, 999);
  EXPECT_EQ(idx.Find(1), 999u);
  EXPECT_EQ(idx.size(), 1u);
}

TEST(HashIndexTest, EraseRemoves) {
  HashIndex idx;
  idx.Upsert(1, 100);
  EXPECT_TRUE(idx.Erase(1));
  EXPECT_EQ(idx.Find(1), kInvalidHandle);
  EXPECT_EQ(idx.size(), 0u);
  EXPECT_FALSE(idx.Erase(1));
}

TEST(HashIndexTest, KeyZeroIsAValidKey) {
  HashIndex idx;
  idx.Upsert(0, 7);
  EXPECT_EQ(idx.Find(0), 7u);
  EXPECT_TRUE(idx.Erase(0));
  EXPECT_EQ(idx.Find(0), kInvalidHandle);
}

TEST(HashIndexTest, GrowsPastInitialCapacity) {
  HashIndex idx(16);
  for (KeyId k = 0; k < 10000; ++k) idx.Upsert(k, static_cast<ItemHandle>(k));
  EXPECT_EQ(idx.size(), 10000u);
  EXPECT_GE(idx.capacity(), 10000u);
  for (KeyId k = 0; k < 10000; ++k) {
    ASSERT_EQ(idx.Find(k), static_cast<ItemHandle>(k));
  }
}

TEST(HashIndexTest, SequentialKeysDoNotDegenerate) {
  // Sequential synthetic keys must spread via the mixer; probe distances
  // stay short enough that this completes instantly.
  HashIndex idx;
  for (KeyId k = 0; k < 100000; ++k) idx.Upsert(k, 1);
  for (KeyId k = 0; k < 100000; ++k) ASSERT_NE(idx.Find(k), kInvalidHandle);
}

TEST(HashIndexTest, BackwardShiftPreservesNeighbors) {
  // Churn erases keys in clusters to exercise backward-shift deletion.
  HashIndex idx(16);
  for (KeyId k = 0; k < 64; ++k) idx.Upsert(k, static_cast<ItemHandle>(k + 1));
  for (KeyId k = 0; k < 64; k += 2) EXPECT_TRUE(idx.Erase(k));
  for (KeyId k = 1; k < 64; k += 2) {
    ASSERT_EQ(idx.Find(k), static_cast<ItemHandle>(k + 1)) << "key " << k;
  }
  for (KeyId k = 0; k < 64; k += 2) {
    ASSERT_EQ(idx.Find(k), kInvalidHandle);
  }
}

/// First `count` keys whose ideal slot in a table of `capacity` is `slot`.
std::vector<KeyId> KeysHashingTo(std::size_t slot, std::size_t capacity,
                                 std::size_t count) {
  std::vector<KeyId> keys;
  const std::size_t mask = capacity - 1;
  for (KeyId k = 0; keys.size() < count; ++k) {
    if ((static_cast<std::size_t>(Mix64(k)) & mask) == slot) keys.push_back(k);
  }
  return keys;
}

TEST(HashIndexTest, EraseBackwardShiftAcrossTableWrapAround) {
  // Regression guard for the wrap-around case of backward-shift deletion:
  // a probe cluster that starts at the last slot and continues at slot 0.
  // Four keys all hashing to slot 15 of a 16-slot table occupy 15, 0, 1, 2;
  // erasing the one at slot 15 must shift the displaced tail across the
  // boundary, keeping every survivor reachable.
  constexpr std::size_t kCapacity = 16;
  const auto keys = KeysHashingTo(kCapacity - 1, kCapacity, 4);
  HashIndex idx(kCapacity);
  ASSERT_EQ(idx.capacity(), kCapacity);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    idx.Upsert(keys[i], static_cast<ItemHandle>(i + 1));
  }
  // Erase in insertion order: each erase collapses the cluster across the
  // wrap boundary; all remaining keys must stay findable.
  for (std::size_t dead = 0; dead < keys.size(); ++dead) {
    ASSERT_TRUE(idx.Erase(keys[dead])) << "erase " << dead;
    for (std::size_t alive = dead + 1; alive < keys.size(); ++alive) {
      ASSERT_EQ(idx.Find(keys[alive]), static_cast<ItemHandle>(alive + 1))
          << "erase " << dead << " lost key " << alive;
    }
    ASSERT_EQ(idx.Find(keys[dead]), kInvalidHandle);
  }
}

TEST(HashIndexTest, EraseWrapAroundMixedIdealSlots) {
  // A cluster spanning the end with mixed home slots: entries whose ideal
  // slot is on the far side of the wrapped hole must NOT be moved.
  constexpr std::size_t kCapacity = 16;
  const auto tail_keys = KeysHashingTo(kCapacity - 1, kCapacity, 2);  // 15,0
  const auto head_keys = KeysHashingTo(0, kCapacity, 2);             // 1,2
  HashIndex idx(kCapacity);
  idx.Upsert(tail_keys[0], 10);
  idx.Upsert(tail_keys[1], 11);  // displaced to slot 0
  idx.Upsert(head_keys[0], 20);  // home 0, displaced to 1
  idx.Upsert(head_keys[1], 21);  // home 0, displaced to 2
  ASSERT_TRUE(idx.Erase(tail_keys[0]));  // hole at 15
  EXPECT_EQ(idx.Find(tail_keys[1]), 11u);
  EXPECT_EQ(idx.Find(head_keys[0]), 20u);
  EXPECT_EQ(idx.Find(head_keys[1]), 21u);
  ASSERT_TRUE(idx.Erase(head_keys[0]));
  EXPECT_EQ(idx.Find(tail_keys[1]), 11u);
  EXPECT_EQ(idx.Find(head_keys[1]), 21u);
}

TEST(HashIndexTest, ReserveAvoidsRehashAndPreservesEntries) {
  HashIndex idx(16);
  for (KeyId k = 0; k < 10; ++k) idx.Upsert(k, static_cast<ItemHandle>(k + 1));
  idx.Reserve(50'000);
  const std::size_t reserved = idx.capacity();
  EXPECT_GE(reserved, 50'000u);
  for (KeyId k = 0; k < 10; ++k) {
    ASSERT_EQ(idx.Find(k), static_cast<ItemHandle>(k + 1));
  }
  for (KeyId k = 10; k < 50'000; ++k) {
    idx.Upsert(k, static_cast<ItemHandle>(k + 1));
  }
  EXPECT_EQ(idx.capacity(), reserved) << "Reserve did not prevent rehashing";
  // Reserve never shrinks.
  idx.Reserve(16);
  EXPECT_EQ(idx.capacity(), reserved);
}

TEST(HashIndexTest, AgreesWithUnorderedMapUnderChurn) {
  HashIndex idx(16);
  std::unordered_map<KeyId, ItemHandle> model;
  Rng rng(31337);
  for (int op = 0; op < 50000; ++op) {
    const KeyId key = rng.NextBounded(2000);
    const std::uint64_t choice = rng.NextBounded(100);
    if (choice < 50) {
      const auto handle = static_cast<ItemHandle>(rng.NextBounded(1 << 20));
      idx.Upsert(key, handle);
      model[key] = handle;
    } else if (choice < 80) {
      const bool a = idx.Erase(key);
      const bool b = model.erase(key) > 0;
      ASSERT_EQ(a, b) << "op " << op;
    } else {
      const auto it = model.find(key);
      const ItemHandle expect = it == model.end() ? kInvalidHandle : it->second;
      ASSERT_EQ(idx.Find(key), expect) << "op " << op;
    }
    ASSERT_EQ(idx.size(), model.size());
  }
  for (const auto& [key, handle] : model) {
    ASSERT_EQ(idx.Find(key), handle);
  }
}

}  // namespace
}  // namespace pamakv
