#include "pamakv/ds/lru_stack.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "pamakv/util/rng.hpp"

namespace pamakv {
namespace {

TEST(LruStackTest, EmptyStack) {
  LruStack s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0u);
  EXPECT_EQ(s.Bottom(), nullptr);
  EXPECT_EQ(s.KthFromBottom(0), nullptr);
  EXPECT_TRUE(s.CheckInvariants());
}

TEST(LruStackTest, PushOrderIsStackOrder) {
  LruStack s;
  auto* n1 = s.PushTop(1);
  auto* n2 = s.PushTop(2);
  auto* n3 = s.PushTop(3);
  // Stack top..bottom is 3,2,1; bottom is the first pushed.
  EXPECT_EQ(s.Bottom(), n1);
  EXPECT_EQ(s.RankFromTop(n3), 0u);
  EXPECT_EQ(s.RankFromTop(n2), 1u);
  EXPECT_EQ(s.RankFromTop(n1), 2u);
  EXPECT_EQ(s.RankFromBottom(n1), 0u);
  EXPECT_EQ(s.RankFromBottom(n3), 2u);
  EXPECT_TRUE(s.CheckInvariants());
}

TEST(LruStackTest, KthFromBottomSelects) {
  LruStack s;
  std::vector<LruStack::Node*> nodes;
  for (ItemHandle i = 0; i < 10; ++i) nodes.push_back(s.PushTop(i));
  // Bottom is nodes[0] (first pushed), k-th from bottom is nodes[k].
  for (std::size_t k = 0; k < 10; ++k) {
    EXPECT_EQ(s.KthFromBottom(k), nodes[k]) << "k=" << k;
  }
  EXPECT_EQ(s.KthFromBottom(10), nullptr);
}

TEST(LruStackTest, MoveToTopPromotes) {
  LruStack s;
  auto* n1 = s.PushTop(1);
  auto* n2 = s.PushTop(2);
  auto* n3 = s.PushTop(3);
  s.MoveToTop(n1);  // 1,3,2 from top
  EXPECT_EQ(s.RankFromTop(n1), 0u);
  EXPECT_EQ(s.RankFromTop(n3), 1u);
  EXPECT_EQ(s.RankFromTop(n2), 2u);
  EXPECT_EQ(s.Bottom(), n2);
  EXPECT_TRUE(s.CheckInvariants());
}

TEST(LruStackTest, EraseRemoves) {
  LruStack s;
  auto* n1 = s.PushTop(1);
  auto* n2 = s.PushTop(2);
  auto* n3 = s.PushTop(3);
  s.Erase(n2);
  EXPECT_EQ(s.size(), 2u);
  EXPECT_EQ(s.RankFromTop(n3), 0u);
  EXPECT_EQ(s.RankFromTop(n1), 1u);
  EXPECT_TRUE(s.CheckInvariants());
}

TEST(LruStackTest, EraseToEmptyAndReuse) {
  LruStack s;
  auto* n = s.PushTop(1);
  s.Erase(n);
  EXPECT_TRUE(s.empty());
  auto* m = s.PushTop(2);
  EXPECT_EQ(s.size(), 1u);
  EXPECT_EQ(s.Bottom(), m);
  EXPECT_EQ(m->value, 2u);
}

TEST(LruStackTest, TowardTopWalksInOrder) {
  LruStack s;
  std::vector<LruStack::Node*> nodes;
  for (ItemHandle i = 0; i < 20; ++i) nodes.push_back(s.PushTop(i));
  // Walk from the bottom toward the top: values 0,1,...,19.
  LruStack::Node* cur = s.Bottom();
  for (ItemHandle expect = 0; expect < 20; ++expect) {
    ASSERT_NE(cur, nullptr);
    EXPECT_EQ(cur->value, expect);
    cur = LruStack::TowardTop(cur);
  }
  EXPECT_EQ(cur, nullptr);  // walked off the top
}

// Model-based randomized test: the treap must agree with a simple vector
// model (front == top) across a long interleaving of pushes, promotions,
// erases, and rank queries.
TEST(LruStackTest, AgreesWithVectorModelUnderRandomOps) {
  LruStack s(7);
  std::vector<ItemHandle> model;  // model[0] == top
  std::unordered_map<ItemHandle, LruStack::Node*> node_of;
  Rng rng(1234);
  ItemHandle next_value = 0;

  for (int op = 0; op < 20000; ++op) {
    const std::uint64_t choice = rng.NextBounded(100);
    if (model.empty() || choice < 35) {
      const ItemHandle v = next_value++;
      node_of[v] = s.PushTop(v);
      model.insert(model.begin(), v);
    } else if (choice < 60) {
      const std::size_t i = rng.NextBounded(model.size());
      const ItemHandle v = model[i];
      s.MoveToTop(node_of[v]);
      model.erase(model.begin() + static_cast<std::ptrdiff_t>(i));
      model.insert(model.begin(), v);
    } else if (choice < 80) {
      const std::size_t i = rng.NextBounded(model.size());
      const ItemHandle v = model[i];
      s.Erase(node_of[v]);
      node_of.erase(v);
      model.erase(model.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      // Query: ranks and k-th must match the model.
      const std::size_t i = rng.NextBounded(model.size());
      const ItemHandle v = model[i];
      ASSERT_EQ(s.RankFromTop(node_of[v]), i);
      ASSERT_EQ(s.RankFromBottom(node_of[v]), model.size() - 1 - i);
      const std::size_t k = rng.NextBounded(model.size());
      ASSERT_EQ(s.KthFromBottom(k)->value, model[model.size() - 1 - k]);
    }
    ASSERT_EQ(s.size(), model.size());
    if (!model.empty()) {
      ASSERT_EQ(s.Bottom()->value, model.back());
    }
    if (op % 1000 == 0) {
      ASSERT_TRUE(s.CheckInvariants()) << "op " << op;
    }
  }
  EXPECT_TRUE(s.CheckInvariants());
}

TEST(LruStackTest, LargeStackRanksStayCorrect) {
  LruStack s(42);
  std::vector<LruStack::Node*> nodes;
  const std::size_t n = 50000;
  for (ItemHandle i = 0; i < n; ++i) nodes.push_back(s.PushTop(i));
  // Spot-check ranks across the whole range.
  for (std::size_t i = 0; i < n; i += 997) {
    EXPECT_EQ(s.RankFromBottom(nodes[i]), i);
  }
  EXPECT_TRUE(s.CheckInvariants());
}

TEST(LruStackTest, DeterministicAcrossSeeds) {
  // Different treap seeds must not change observable (in-order) behavior.
  LruStack a(1);
  LruStack b(999);
  for (ItemHandle i = 0; i < 100; ++i) {
    a.PushTop(i);
    b.PushTop(i);
  }
  for (std::size_t k = 0; k < 100; ++k) {
    EXPECT_EQ(a.KthFromBottom(k)->value, b.KthFromBottom(k)->value);
  }
}

}  // namespace
}  // namespace pamakv
