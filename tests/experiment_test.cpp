#include "pamakv/sim/experiment.hpp"

#include <gtest/gtest.h>

#include "pamakv/trace/generators.hpp"

namespace pamakv {
namespace {

TEST(ExperimentTest, KnowsAllPaperSchemes) {
  for (const auto& name :
       {"memcached", "psa", "twemcache", "facebook-age", "pre-pama", "pama",
        "pama-exact", "lama-hr", "lama-st"}) {
    EXPECT_TRUE(IsKnownScheme(name)) << name;
  }
  EXPECT_FALSE(IsKnownScheme("nonsense"));
  EXPECT_EQ(AllSchemeNames().size(), 9u);
}

TEST(ExperimentTest, MakeEngineConfiguresBandsPerScheme) {
  const SizeClassConfig geometry;
  const Bytes capacity = 4 * 1024 * 1024;
  // Full PAMA: five penalty bands.
  const auto pama = MakeEngine("pama", capacity, geometry);
  EXPECT_EQ(pama->num_subclasses(), 5u);
  EXPECT_EQ(pama->policy().name(), "pama");
  // pre-PAMA: penalty-blind, single band.
  const auto pre = MakeEngine("pre-pama", capacity, geometry);
  EXPECT_EQ(pre->num_subclasses(), 1u);
  EXPECT_EQ(pre->policy().name(), "pre-pama");
  // Baselines: single band.
  for (const auto& name : {"memcached", "psa", "twemcache", "facebook-age"}) {
    const auto engine = MakeEngine(name, capacity, geometry);
    EXPECT_EQ(engine->num_subclasses(), 1u) << name;
    EXPECT_EQ(engine->policy().name(), name);
  }
}

TEST(ExperimentTest, MakeEngineRejectsUnknownScheme) {
  EXPECT_THROW(MakeEngine("bogus", 4 * 1024 * 1024, SizeClassConfig{}),
               std::invalid_argument);
}

TEST(ExperimentTest, CustomBandsAndGhostSegmentsHonored) {
  SchemeOptions options;
  options.pama.reference_segments = 4;
  options.pama_bands = {1'000, 1'000'000};
  const auto engine =
      MakeEngine("pama", 4 * 1024 * 1024, SizeClassConfig{}, options);
  EXPECT_EQ(engine->num_subclasses(), 2u);
  // Ghost capacity >= (m+1) segments of the class's slots-per-slab.
  const std::size_t spp = engine->classes().SlotsPerSlab(0);
  EXPECT_GE(engine->GhostOf(0, 0).capacity(), 5 * spp);
}

TEST(ExperimentTest, RunOneProducesLabeledResult) {
  SimConfig sim_cfg;
  sim_cfg.window_gets = 1000;
  ExperimentRunner runner(SizeClassConfig{}, SchemeOptions{}, sim_cfg);
  auto cfg = SysWorkload(4000);
  SyntheticTrace trace(cfg);
  const auto result =
      runner.RunOne("psa", 4 * 1024 * 1024, trace, "sys");
  EXPECT_EQ(result.scheme, "psa");
  EXPECT_EQ(result.workload, "sys");
  EXPECT_EQ(result.requests_replayed, 4000u);
  EXPECT_FALSE(result.windows.empty());
}

TEST(ExperimentTest, GridMatchesSerialRuns) {
  SimConfig sim_cfg;
  sim_cfg.window_gets = 1000;
  ExperimentRunner runner(SizeClassConfig{}, SchemeOptions{}, sim_cfg);
  const auto make_trace = [] {
    return std::make_unique<SyntheticTrace>(SysWorkload(4000));
  };
  const std::vector<ExperimentCell> cells = {
      {"memcached", 4 * 1024 * 1024},
      {"pama", 4 * 1024 * 1024},
      {"memcached", 8 * 1024 * 1024},
  };
  const auto parallel = runner.RunGrid(cells, make_trace, "sys", 2);
  ASSERT_EQ(parallel.size(), cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    auto trace = make_trace();
    const auto serial =
        runner.RunOne(cells[i].scheme, cells[i].cache_bytes, *trace, "sys");
    EXPECT_EQ(parallel[i].scheme, serial.scheme);
    EXPECT_DOUBLE_EQ(parallel[i].overall_hit_ratio, serial.overall_hit_ratio);
    EXPECT_EQ(parallel[i].final_stats.get_hits, serial.final_stats.get_hits);
  }
}

}  // namespace
}  // namespace pamakv
