// Parameterized property suite: every allocation policy must preserve the
// engine's structural invariants under randomized GET/SET/DEL churn, and
// runs must be bit-deterministic for a fixed seed.
#include <gtest/gtest.h>

#include <numeric>

#include "pamakv/sim/experiment.hpp"
#include "pamakv/trace/generators.hpp"
#include "pamakv/util/rng.hpp"

namespace pamakv {
namespace {

SizeClassConfig SmallGeometry() {
  SizeClassConfig g;
  g.slab_bytes = 4096;
  g.min_slot_bytes = 32;
  g.num_classes = 6;  // 32..1024 B
  return g;
}

SchemeOptions FastOptions() {
  SchemeOptions o;
  o.pama.window_accesses = 2000;
  o.psa.window_accesses = 2000;
  o.psa.misses_per_relocation = 200;
  o.facebook.check_interval = 500;
  o.lama.window_accesses = 2000;
  o.lama.granularity_slabs = 2;
  return o;
}

class PolicyPropertyTest : public ::testing::TestWithParam<std::string> {};

void CheckInvariants(const CacheEngine& engine) {
  const auto& pool = engine.pool();
  const auto& classes = engine.classes();
  // Slab conservation.
  std::size_t owned = 0;
  for (ClassId c = 0; c < classes.num_classes(); ++c) {
    owned += pool.ClassSlabCount(c);
  }
  ASSERT_EQ(owned + pool.free_slabs(), pool.total_slabs());

  // Slot accounting matches the stacks, and capacity is never exceeded.
  std::size_t items_total = 0;
  for (ClassId c = 0; c < classes.num_classes(); ++c) {
    std::size_t stack_items = 0;
    for (SubclassId s = 0; s < engine.num_subclasses(); ++s) {
      stack_items += engine.SubclassItemCount(c, s);
    }
    ASSERT_EQ(pool.ClassSlotsInUse(c), stack_items) << "class " << c;
    ASSERT_LE(stack_items, pool.ClassSlabCount(c) * classes.SlotsPerSlab(c))
        << "class " << c;
    items_total += stack_items;
  }
  ASSERT_EQ(engine.item_count(), items_total);

  // Stats sanity.
  const auto& st = engine.stats();
  ASSERT_EQ(st.gets, st.get_hits + st.get_misses);
}

TEST_P(PolicyPropertyTest, InvariantsHoldUnderRandomChurn) {
  auto engine = MakeEngine(GetParam(), 16 * SmallGeometry().slab_bytes,
                           SmallGeometry(), FastOptions());
  Rng rng(2024);
  for (int op = 0; op < 30000; ++op) {
    const KeyId key = rng.NextBounded(3000);
    const Bytes size = 1 + rng.NextBounded(1024);
    const auto penalty =
        static_cast<MicroSecs>(200 + rng.NextBounded(4'000'000));
    const std::uint64_t choice = rng.NextBounded(100);
    if (choice < 55) {
      const auto got = engine->Get(key, size, penalty);
      if (!got.hit) engine->Set(key, size, penalty);
    } else if (choice < 90) {
      engine->Set(key, size, penalty);
    } else {
      engine->Del(key);
    }
    if (op % 2500 == 0) CheckInvariants(*engine);
  }
  CheckInvariants(*engine);
  // The cache must actually be exercised, not starved into a corner.
  EXPECT_GT(engine->stats().get_hits, 0u);
  EXPECT_GT(engine->item_count(), 0u);
}

TEST_P(PolicyPropertyTest, SetThenImmediateGetHits) {
  auto engine = MakeEngine(GetParam(), 16 * SmallGeometry().slab_bytes,
                           SmallGeometry(), FastOptions());
  Rng rng(55);
  for (int i = 0; i < 2000; ++i) {
    const KeyId key = 1'000'000 + static_cast<KeyId>(i);
    const Bytes size = 1 + rng.NextBounded(1024);
    if (engine->Set(key, size, 1000).stored) {
      EXPECT_TRUE(engine->Get(key, size, 1000).hit) << "key " << key;
    }
  }
}

TEST_P(PolicyPropertyTest, DeterministicForFixedSeed) {
  auto run = [&] {
    auto engine = MakeEngine(GetParam(), 16 * SmallGeometry().slab_bytes,
                             SmallGeometry(), FastOptions());
    auto cfg = EtcWorkload(15000, /*seed=*/3);
    cfg.geometry = SmallGeometry();
    cfg.class_weights.resize(cfg.geometry.num_classes);  // match 6 classes
    SyntheticTrace trace(cfg);
    Simulator sim;
    return sim.Run(*engine, trace);
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.final_stats.get_hits, b.final_stats.get_hits);
  EXPECT_EQ(a.final_stats.evictions, b.final_stats.evictions);
  EXPECT_EQ(a.final_stats.slab_migrations, b.final_stats.slab_migrations);
  EXPECT_EQ(a.final_stats.miss_penalty_total_us,
            b.final_stats.miss_penalty_total_us);
}

TEST_P(PolicyPropertyTest, SurvivesAdversarialSizeSweep) {
  // Cycle through every class in quick succession; allocation decisions
  // must never wedge the engine or violate accounting.
  auto engine = MakeEngine(GetParam(), 8 * SmallGeometry().slab_bytes,
                           SmallGeometry(), FastOptions());
  const SizeClassTable classes(SmallGeometry());
  for (int round = 0; round < 40; ++round) {
    for (ClassId c = 0; c < classes.num_classes(); ++c) {
      for (int i = 0; i < 8; ++i) {
        const KeyId key = static_cast<KeyId>(round * 1000 + c * 50 + i);
        engine->Set(key, classes.SlotBytes(c), 1000 * (c + 1));
      }
    }
  }
  CheckInvariants(*engine);
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, PolicyPropertyTest,
    ::testing::Values("memcached", "psa", "twemcache", "facebook-age",
                      "pre-pama", "pama", "pama-exact", "lama-hr", "lama-st"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (auto& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name;
    });

}  // namespace
}  // namespace pamakv
