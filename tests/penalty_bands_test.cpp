#include "pamakv/cache/penalty_bands.hpp"

#include <gtest/gtest.h>

namespace pamakv {
namespace {

TEST(PenaltyBandsTest, PaperDefaultHasFiveBands) {
  const auto t = PenaltyBandTable::PaperDefault();
  EXPECT_EQ(t.num_bands(), 5u);
}

TEST(PenaltyBandsTest, PaperBandBoundaries) {
  const auto t = PenaltyBandTable::PaperDefault();
  // (0, 1ms], (1, 10ms], (10, 100ms], (100, 1000ms], (1s, 5s]
  EXPECT_EQ(t.BandFor(1), SubclassId{0});
  EXPECT_EQ(t.BandFor(1'000), SubclassId{0});
  EXPECT_EQ(t.BandFor(1'001), SubclassId{1});
  EXPECT_EQ(t.BandFor(10'000), SubclassId{1});
  EXPECT_EQ(t.BandFor(100'000), SubclassId{2});
  EXPECT_EQ(t.BandFor(1'000'000), SubclassId{3});
  EXPECT_EQ(t.BandFor(5'000'000), SubclassId{4});
}

TEST(PenaltyBandsTest, BeyondLastBoundClampsToLastBand) {
  const auto t = PenaltyBandTable::PaperDefault();
  EXPECT_EQ(t.BandFor(10'000'000), SubclassId{4});
}

TEST(PenaltyBandsTest, EmptyTableIsSingleBand) {
  const PenaltyBandTable t;
  EXPECT_EQ(t.num_bands(), 1u);
  EXPECT_EQ(t.BandFor(1), SubclassId{0});
  EXPECT_EQ(t.BandFor(5'000'000), SubclassId{0});
}

TEST(PenaltyBandsTest, CustomBands) {
  const PenaltyBandTable t({100, 200});
  EXPECT_EQ(t.num_bands(), 2u);
  EXPECT_EQ(t.BandFor(50), SubclassId{0});
  EXPECT_EQ(t.BandFor(150), SubclassId{1});
  EXPECT_EQ(t.BandFor(300), SubclassId{1});
}

}  // namespace
}  // namespace pamakv
