// Unit tests for the failpoint framework itself: spec parsing, trigger
// semantics (once / x<N> / nth / probability), short-IO caps, environment
// configuration, and trip accounting. These only exercise real code in a
// chaos build (-DPAMAKV_FAILPOINTS=ON); in the default build the whole
// suite skips, matching the zero-overhead-when-off contract.

#include <gtest/gtest.h>

#include "pamakv/util/failpoint.hpp"

#if PAMAKV_FAILPOINTS

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <string>

namespace pamakv::util {
namespace {

class FailPointTest : public ::testing::Test {
 protected:
  void TearDown() override { FailPoints::DisableAll(); }
};

TEST_F(FailPointTest, ParsesErrnoSpecs) {
  const auto spec = FailPointSpec::Parse("EMFILE@once");
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->action, FailPointSpec::Action::kErrno);
  EXPECT_EQ(spec->err, EMFILE);
  EXPECT_EQ(spec->trigger, FailPointSpec::Trigger::kTimes);
  EXPECT_EQ(spec->times, 1u);

  const auto always = FailPointSpec::Parse("EINTR");
  ASSERT_TRUE(always.has_value());
  EXPECT_EQ(always->err, EINTR);
  EXPECT_EQ(always->trigger, FailPointSpec::Trigger::kAlways);
}

TEST_F(FailPointTest, ParsesShortIoAndOom) {
  const auto io = FailPointSpec::Parse("short:7@nth:3");
  ASSERT_TRUE(io.has_value());
  EXPECT_EQ(io->action, FailPointSpec::Action::kShortIo);
  EXPECT_EQ(io->cap, 7u);
  EXPECT_EQ(io->trigger, FailPointSpec::Trigger::kEveryNth);
  EXPECT_EQ(io->period, 3u);

  const auto oom = FailPointSpec::Parse("oom@p:0.25:42");
  ASSERT_TRUE(oom.has_value());
  EXPECT_EQ(oom->action, FailPointSpec::Action::kBadAlloc);
  EXPECT_EQ(oom->trigger, FailPointSpec::Trigger::kProbability);
  EXPECT_DOUBLE_EQ(oom->probability, 0.25);
  EXPECT_EQ(oom->seed, 42u);
}

TEST_F(FailPointTest, RejectsMalformedSpecs) {
  EXPECT_FALSE(FailPointSpec::Parse("").has_value());
  EXPECT_FALSE(FailPointSpec::Parse("EBOGUS").has_value());
  EXPECT_FALSE(FailPointSpec::Parse("EINTR@").has_value());
  EXPECT_FALSE(FailPointSpec::Parse("EINTR@sometimes").has_value());
  EXPECT_FALSE(FailPointSpec::Parse("EINTR@x").has_value());
  EXPECT_FALSE(FailPointSpec::Parse("EINTR@nth:0").has_value());
  EXPECT_FALSE(FailPointSpec::Parse("EINTR@p:1.5").has_value());
  EXPECT_FALSE(FailPointSpec::Parse("EINTR@p:-0.1").has_value());
  EXPECT_FALSE(FailPointSpec::Parse("short:").has_value());
  EXPECT_FALSE(FailPointSpec::Parse("short:abc").has_value());
}

TEST_F(FailPointTest, OnceFiresExactlyOnce) {
  FailPoint& fp = FailPoints::Get("test.once");
  const std::uint64_t before = fp.trips();
  ASSERT_TRUE(FailPoints::Arm("test.once", "ECONNRESET@once"));
  const auto hit = fp.Evaluate();
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->action, FailPointSpec::Action::kErrno);
  EXPECT_EQ(hit->err, ECONNRESET);
  // Self-disarmed: every later evaluation is a miss.
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(fp.Evaluate().has_value());
  }
  EXPECT_EQ(fp.trips(), before + 1);
}

TEST_F(FailPointTest, TimesFiresExactlyN) {
  FailPoint& fp = FailPoints::Get("test.times");
  const std::uint64_t before = fp.trips();
  ASSERT_TRUE(FailPoints::Arm("test.times", "EIO@x3"));
  int fires = 0;
  for (int i = 0; i < 10; ++i) {
    if (fp.Evaluate()) ++fires;
  }
  EXPECT_EQ(fires, 3);
  EXPECT_EQ(fp.trips(), before + 3);
}

TEST_F(FailPointTest, EveryNthFiresOnSchedule) {
  FailPoint& fp = FailPoints::Get("test.nth");
  ASSERT_TRUE(FailPoints::Arm("test.nth", "EAGAIN@nth:3"));
  // Fires on evaluations 3, 6, 9, ... of the armed spec.
  std::string pattern;
  for (int i = 0; i < 9; ++i) {
    pattern += fp.Evaluate() ? 'X' : '.';
  }
  EXPECT_EQ(pattern, "..X..X..X");
}

TEST_F(FailPointTest, ProbabilityIsSeededAndPlausible) {
  FailPoint& fp = FailPoints::Get("test.prob");
  auto draw = [&fp](const char* spec) {
    EXPECT_TRUE(FailPoints::Arm("test.prob", spec)) << spec;
    std::string pattern;
    for (int i = 0; i < 1000; ++i) {
      pattern += fp.Evaluate() ? 'X' : '.';
    }
    return pattern;
  };
  const std::string a = draw("EINTR@p:0.5:7");
  const std::string b = draw("EINTR@p:0.5:7");
  const std::string c = draw("EINTR@p:0.5:8");
  // Same seed => identical fault schedule (this is what makes a chaos
  // seed replayable); different seed => different schedule.
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  const auto fires =
      static_cast<int>(std::count(a.begin(), a.end(), 'X'));
  EXPECT_GT(fires, 300);
  EXPECT_LT(fires, 700);
}

TEST_F(FailPointTest, ShortIoHitCarriesCap) {
  ASSERT_TRUE(FailPoints::Arm("test.short", "short:1"));
  const auto hit = FailPoints::Get("test.short").Evaluate();
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->action, FailPointSpec::Action::kShortIo);
  EXPECT_EQ(hit->cap, 1u);
}

TEST_F(FailPointTest, ArmRejectsMalformedAndLeavesPointAlone) {
  ASSERT_TRUE(FailPoints::Arm("test.reject", "EPIPE@x2"));
  EXPECT_FALSE(FailPoints::Arm("test.reject", "garbage"));
  // The earlier arm is still active.
  EXPECT_TRUE(FailPoints::Get("test.reject").Evaluate().has_value());
}

TEST_F(FailPointTest, DisableAllDisarmsEverything) {
  ASSERT_TRUE(FailPoints::Arm("test.d1", "EINTR"));
  ASSERT_TRUE(FailPoints::Arm("test.d2", "oom"));
  FailPoints::DisableAll();
  EXPECT_FALSE(FailPoints::Get("test.d1").Evaluate().has_value());
  EXPECT_FALSE(FailPoints::Get("test.d2").Evaluate().has_value());
}

TEST_F(FailPointTest, ConfigureFromEnvArmsPairsAndSkipsMalformed) {
  ::setenv("PAMAKV_FP_TEST_CFG", "test.env1=ENOBUFS@x2;bogus;test.env2=short:4",
           1);
  EXPECT_EQ(FailPoints::ConfigureFromEnv("PAMAKV_FP_TEST_CFG"), 2u);
  ::unsetenv("PAMAKV_FP_TEST_CFG");
  const auto h1 = FailPoints::Get("test.env1").Evaluate();
  ASSERT_TRUE(h1.has_value());
  EXPECT_EQ(h1->err, ENOBUFS);
  const auto h2 = FailPoints::Get("test.env2").Evaluate();
  ASSERT_TRUE(h2.has_value());
  EXPECT_EQ(h2->cap, 4u);
  EXPECT_EQ(FailPoints::ConfigureFromEnv("PAMAKV_FP_TEST_CFG"), 0u);
}

TEST_F(FailPointTest, TripCountsSurviveDisarm) {
  ASSERT_TRUE(FailPoints::Arm("test.trips", "EINTR@x5"));
  FailPoint& fp = FailPoints::Get("test.trips");
  for (int i = 0; i < 8; ++i) fp.Evaluate();
  FailPoints::DisableAll();
  EXPECT_EQ(FailPoints::Trips("test.trips"), 5u);
  bool found = false;
  for (const auto& [name, trips] : FailPoints::TripCounts()) {
    if (name == "test.trips") {
      EXPECT_EQ(trips, 5u);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(FailPointTest, OomMacroThrowsBadAlloc) {
  ASSERT_TRUE(FailPoints::Arm("test.oom", "oom@once"));
  EXPECT_THROW(PAMAKV_FAILPOINT_OOM("test.oom"), std::bad_alloc);
  EXPECT_NO_THROW(PAMAKV_FAILPOINT_OOM("test.oom"));
}

}  // namespace
}  // namespace pamakv::util

#else  // !PAMAKV_FAILPOINTS

TEST(FailPointTest, RequiresChaosBuild) {
  GTEST_SKIP() << "built without PAMAKV_FAILPOINTS; run the chaos preset";
}

#endif  // PAMAKV_FAILPOINTS
