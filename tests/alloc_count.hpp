// Heap-allocation counter shared by the zero-allocation tests
// (engine_alloc_test, net_alloc_test). alloc_count.cpp overrides the
// global operator new/delete for the whole test binary — they forward to
// malloc, so behavior is unchanged; every `new` bumps the counter.
#pragma once

#include <cstdint>

namespace pamakv::test {

/// Number of operator-new calls in this binary so far.
[[nodiscard]] std::uint64_t AllocationCount() noexcept;

}  // namespace pamakv::test
