// Edge cases of the engine's semantics that the core suites don't reach:
// penalty-band changes on update, ghost recording of refused stores,
// window metric arithmetic, and simulator composition with the injector
// and trace repetition.
#include <gtest/gtest.h>

#include "pamakv/cache/cache_engine.hpp"
#include "pamakv/cache/penalty_bands.hpp"
#include "pamakv/policy/no_realloc.hpp"
#include "pamakv/policy/pama.hpp"
#include "pamakv/sim/experiment.hpp"
#include "pamakv/trace/generators.hpp"
#include "pamakv/trace/injector.hpp"

namespace pamakv {
namespace {

EngineConfig BandedConfig(Bytes capacity) {
  EngineConfig cfg;
  cfg.size_classes.slab_bytes = 1024;
  cfg.size_classes.min_slot_bytes = 64;
  cfg.size_classes.num_classes = 4;
  cfg.capacity_bytes = capacity;
  cfg.penalty_band_bounds = PenaltyBandTable::PaperDefault().bounds();
  return cfg;
}

TEST(EngineEdgeTest, UpdateAcrossPenaltyBandsMovesItem) {
  CacheEngine engine(BandedConfig(8192), std::make_unique<NoReallocPolicy>());
  engine.Set(1, 100, 500);       // band 0
  ASSERT_EQ(engine.SubclassItemCount(1, 0), 1u);
  engine.Set(1, 100, 2'000'000); // same class, band 4
  EXPECT_EQ(engine.item_count(), 1u);
  EXPECT_EQ(engine.SubclassItemCount(1, 0), 0u);
  EXPECT_EQ(engine.SubclassItemCount(1, 4), 1u);
  EXPECT_EQ(engine.pool().SlotsInUse(1, 0), 0u);
  EXPECT_EQ(engine.pool().SlotsInUse(1, 4), 1u);
  // The item answers GETs regardless of which band it lives in.
  EXPECT_TRUE(engine.Get(1, 100, 2'000'000).hit);
}

TEST(EngineEdgeTest, RefusedStoreIsGhosted) {
  // One slab; class 0 fills it; a PAMA store to empty class 3 is refused
  // and must land in class 3's ghost list.
  EngineConfig cfg;
  cfg.size_classes.slab_bytes = 1024;
  cfg.size_classes.min_slot_bytes = 64;
  cfg.size_classes.num_classes = 4;
  cfg.capacity_bytes = 1024;
  PamaConfig pama_cfg;
  pama_cfg.use_bloom = false;
  CacheEngine engine(cfg, std::make_unique<PamaPolicy>(pama_cfg));
  for (KeyId k = 0; k < 16; ++k) engine.Set(k, 64, 1000);
  const auto refused = engine.Set(999, 512, 100);
  EXPECT_FALSE(refused.stored);
  EXPECT_EQ(engine.stats().set_failures, 1u);
  EXPECT_TRUE(engine.GhostOf(3, 0).Contains(999));
}

TEST(EngineEdgeTest, CacheStatsSinceSubtractsComponentwise) {
  CacheStats a;
  a.gets = 100;
  a.get_hits = 60;
  a.get_misses = 40;
  a.miss_penalty_total_us = 4000;
  a.evictions = 7;
  CacheStats b = a;
  b.gets = 150;
  b.get_hits = 100;
  b.get_misses = 50;
  b.miss_penalty_total_us = 5000;
  b.evictions = 9;
  const CacheStats d = b.Since(a);
  EXPECT_EQ(d.gets, 50u);
  EXPECT_EQ(d.get_hits, 40u);
  EXPECT_EQ(d.get_misses, 10u);
  EXPECT_EQ(d.miss_penalty_total_us, 1000u);
  EXPECT_EQ(d.evictions, 2u);
  EXPECT_DOUBLE_EQ(d.HitRatio(), 0.8);
  EXPECT_DOUBLE_EQ(d.AvgServiceTimeUs(0), 20.0);
  // Hit cost participates in the average.
  EXPECT_DOUBLE_EQ(d.AvgServiceTimeUs(10), 20.0 + 40.0 * 10.0 / 50.0);
}

TEST(EngineEdgeTest, SimulatorComposesInjectorAndRepeat) {
  // RepeatedTrace(ColdBurstInjector(SyntheticTrace)) must replay cleanly:
  // the burst fires once per pass and the request count doubles.
  auto cfg = SysWorkload(20'000);
  ColdBurstConfig burst;
  burst.after_gets = 5'000;
  burst.total_bytes = 256 * 1024;
  burst.impacted_classes = {1, 2};
  auto inner = std::make_unique<ColdBurstInjector>(
      std::make_unique<SyntheticTrace>(cfg), burst, cfg.geometry);
  auto* injector = inner.get();
  RepeatedTrace trace(std::move(inner), 2);

  auto engine = MakeEngine("pama", 16ULL * 1024 * 1024, SizeClassConfig{});
  Simulator sim;
  const auto result = sim.Run(*engine, trace);
  // 2 passes of 20k base requests + 2 bursts of GET+SET pairs.
  EXPECT_EQ(result.requests_replayed,
            2 * (20'000 + 2 * injector->injected_count()));
  EXPECT_GT(injector->injected_count(), 0u);
}

TEST(EngineEdgeTest, ZeroGetWorkloadProducesNoWindows) {
  auto cfg = SysWorkload(1'000);
  cfg.get_fraction = 0.0;
  cfg.set_fraction = 1.0;
  SyntheticTrace trace(cfg);
  auto engine = MakeEngine("memcached", 16ULL * 1024 * 1024, SizeClassConfig{});
  Simulator sim;
  const auto result = sim.Run(*engine, trace);
  EXPECT_EQ(result.final_stats.gets, 0u);
  EXPECT_EQ(result.overall_hit_ratio, 0.0);
  EXPECT_TRUE(result.windows.empty());
}

TEST(EngineEdgeTest, GetForOversizedItemStillChargesPenalty) {
  auto engine = MakeEngine("memcached", 16ULL * 1024 * 1024, SizeClassConfig{});
  const auto r = engine->Get(1, 10'000'000, 44'000);  // larger than any slot
  EXPECT_FALSE(r.hit);
  EXPECT_EQ(r.service_time_us, 44'000);
  EXPECT_EQ(engine->stats().miss_penalty_total_us, 44'000u);
}

TEST(EngineEdgeTest, PamaSurvivesDelHeavyWorkload) {
  auto engine = MakeEngine("pama", 4ULL * 1024 * 1024, SizeClassConfig{});
  Rng rng(5);
  for (int i = 0; i < 20'000; ++i) {
    const KeyId key = rng.NextBounded(500);
    const std::uint64_t c = rng.NextBounded(3);
    if (c == 0) {
      engine->Set(key, 1 + rng.NextBounded(1000), 1000 + rng.NextBounded(100000));
    } else if (c == 1) {
      engine->Del(key);
    } else {
      engine->Get(key, 100, 1000);
    }
  }
  // Accounting stayed sound.
  std::size_t items = 0;
  for (ClassId c = 0; c < engine->classes().num_classes(); ++c) {
    items += engine->pool().ClassSlotsInUse(c);
  }
  EXPECT_EQ(items, engine->item_count());
}

}  // namespace
}  // namespace pamakv
