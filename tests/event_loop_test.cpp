// EventLoop timer facility under a FakeClock: ordering, cancellation,
// re-arm from inside a callback — all without a single wall-clock sleep.
// The loop parks in epoll_wait; FakeClock::Advance wakes it through the
// clock's wake hook and due timers fire with the post-jump time.
//
// Synchronization pattern: after Advance(), SettleLoop() round-trips two
// posted closures through the loop. The first may land in a dispatch
// round whose timer sweep predates the jump, but the round serving the
// second necessarily *started* after the first completed — i.e. after the
// jump — so its timer sweep has fired everything due. Assertions after
// SettleLoop() therefore observe a quiescent, fully-fired state.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "pamakv/net/event_loop.hpp"
#include "pamakv/util/clock.hpp"

namespace pamakv::net {
namespace {

using namespace std::chrono_literals;

/// One posted round-trip through the loop thread.
void SyncWithLoop(EventLoop& loop) {
  std::promise<void> done;
  auto fut = done.get_future();
  loop.Post([&done] { done.set_value(); });
  fut.wait();
}

/// Guarantees every timer due at the current (fake) time has fired.
void SettleLoop(EventLoop& loop) {
  SyncWithLoop(loop);
  SyncWithLoop(loop);
}

class EventLoopTimerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    loop_ = std::make_unique<EventLoop>(clock_);
    thread_ = std::thread([this] { loop_->Run(); });
    SyncWithLoop(*loop_);  // loop thread is up
  }

  void TearDown() override {
    loop_->Stop();
    thread_.join();
  }

  /// RunAfter from the test thread, marshalled onto the loop thread.
  TimerId Arm(std::chrono::nanoseconds delay, std::function<void()> cb) {
    std::promise<TimerId> id;
    auto fut = id.get_future();
    loop_->Post([&] { id.set_value(loop_->RunAfter(delay, std::move(cb))); });
    return fut.get();
  }

  bool CancelOnLoop(TimerId id) {
    std::promise<bool> ok;
    auto fut = ok.get_future();
    loop_->Post([&] { ok.set_value(loop_->Cancel(id)); });
    return fut.get();
  }

  std::size_t PendingTimers() {
    std::promise<std::size_t> n;
    auto fut = n.get_future();
    loop_->Post([&] { n.set_value(loop_->pending_timers()); });
    return fut.get();
  }

  void Advance(std::chrono::nanoseconds d) {
    clock_.Advance(d);
    SettleLoop(*loop_);
  }

  util::FakeClock clock_;
  std::unique_ptr<EventLoop> loop_;
  std::thread thread_;
  /// Fired-timer log; only the loop thread writes, reads happen after a
  /// SettleLoop round-trip, so no lock is needed.
  std::vector<int> fired_;
};

TEST_F(EventLoopTimerTest, FiresAtExactDeadlineNotBefore) {
  Arm(10ms, [this] { fired_.push_back(1); });
  Advance(9'999'999ns);
  EXPECT_TRUE(fired_.empty());
  Advance(1ns);  // exactly 10ms total
  EXPECT_EQ(fired_, std::vector<int>({1}));
  EXPECT_EQ(PendingTimers(), 0u);
}

TEST_F(EventLoopTimerTest, OrderingByDeadlineRegardlessOfArmOrder) {
  Arm(30ms, [this] { fired_.push_back(30); });
  Arm(10ms, [this] { fired_.push_back(10); });
  Arm(20ms, [this] { fired_.push_back(20); });
  Advance(15ms);
  EXPECT_EQ(fired_, std::vector<int>({10}));
  Advance(50ms);
  EXPECT_EQ(fired_, std::vector<int>({10, 20, 30}));
}

TEST_F(EventLoopTimerTest, EqualDeadlinesFireInArmOrder) {
  for (int i = 0; i < 8; ++i) {
    Arm(5ms, [this, i] { fired_.push_back(i); });
  }
  Advance(5ms);
  EXPECT_EQ(fired_, std::vector<int>({0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST_F(EventLoopTimerTest, CancelPreventsFiring) {
  const TimerId keep = Arm(10ms, [this] { fired_.push_back(1); });
  const TimerId drop = Arm(10ms, [this] { fired_.push_back(2); });
  EXPECT_TRUE(CancelOnLoop(drop));
  EXPECT_FALSE(CancelOnLoop(drop));  // second cancel: already gone
  Advance(10ms);
  EXPECT_EQ(fired_, std::vector<int>({1}));
  EXPECT_FALSE(CancelOnLoop(keep));  // already fired
}

TEST_F(EventLoopTimerTest, CancelledTimerDoesNotShortenTheWait) {
  // A cancelled near timer must not mask a later one: prune-on-pop keeps
  // the far deadline effective.
  Arm(50ms, [this] { fired_.push_back(50); });
  const TimerId near = Arm(1ms, [this] { fired_.push_back(1); });
  EXPECT_TRUE(CancelOnLoop(near));
  Advance(49ms);
  EXPECT_TRUE(fired_.empty());
  Advance(1ms);
  EXPECT_EQ(fired_, std::vector<int>({50}));
}

TEST_F(EventLoopTimerTest, RearmFromInsideCallbackIsPeriodic) {
  // The classic periodic idiom: the callback re-arms itself.
  std::function<void()> tick = [this, &tick] {
    fired_.push_back(static_cast<int>(fired_.size()) + 1);
    if (fired_.size() < 3) loop_->RunAfter(10ms, tick);
  };
  Arm(10ms, tick);
  Advance(10ms);
  EXPECT_EQ(fired_, std::vector<int>({1}));
  Advance(10ms);
  EXPECT_EQ(fired_, std::vector<int>({1, 2}));
  Advance(10ms);
  EXPECT_EQ(fired_, std::vector<int>({1, 2, 3}));
  EXPECT_EQ(PendingTimers(), 0u);
}

TEST_F(EventLoopTimerTest, ZeroDelayRearmDoesNotStarveLoop) {
  // A 0ms re-arm is due the moment it is armed. The per-sweep ceiling
  // defers it to the next dispatch round, so posted work keeps draining
  // while the chain runs; the chain stops itself after 5 firings.
  std::atomic<int> count{0};
  std::function<void()> cb = [this, &cb, &count] {
    if (count.fetch_add(1, std::memory_order_acq_rel) + 1 < 5) {
      loop_->RunAfter(0ms, cb);
    }
  };
  Arm(1ms, cb);
  Advance(1ms);  // the SettleLoop round-trips prove Posts still drain
  while (count.load(std::memory_order_acquire) < 5) std::this_thread::yield();
  SettleLoop(*loop_);
  EXPECT_EQ(count.load(std::memory_order_acquire), 5);
  EXPECT_EQ(PendingTimers(), 0u);
}

TEST_F(EventLoopTimerTest, CancelSiblingFromInsideCallback) {
  // Cancel inside a callback can retire a *sibling* armed earlier.
  TimerId sibling = kInvalidTimer;
  loop_->Post([&] {
    sibling = loop_->RunAfter(20ms, [this] { fired_.push_back(99); });
    loop_->RunAfter(10ms, [this, &sibling] {
      fired_.push_back(1);
      EXPECT_TRUE(loop_->Cancel(sibling));
    });
  });
  SyncWithLoop(*loop_);
  Advance(30ms);
  EXPECT_EQ(fired_, std::vector<int>({1}));
  EXPECT_EQ(PendingTimers(), 0u);
}

TEST_F(EventLoopTimerTest, ManyTimersSparseCancellation) {
  // 100 timers at distinct deadlines; every third cancelled. Survivors
  // fire in deadline order.
  std::vector<TimerId> ids;
  for (int i = 0; i < 100; ++i) {
    ids.push_back(
        Arm(std::chrono::milliseconds(i + 1), [this, i] { fired_.push_back(i); }));
  }
  for (int i = 0; i < 100; i += 3) EXPECT_TRUE(CancelOnLoop(ids[i]));
  Advance(200ms);
  std::vector<int> expect;
  for (int i = 0; i < 100; ++i) {
    if (i % 3 != 0) expect.push_back(i);
  }
  EXPECT_EQ(fired_, expect);
}

TEST(EventLoopRealClockTest, TimerFiresOnSteadyClock) {
  // Smoke the real-clock path: a 1ms timer fires without any external
  // wake (the epoll timeout alone drives it).
  EventLoop loop;
  std::thread t([&loop] { loop.Run(); });
  std::promise<void> fired;
  auto fut = fired.get_future();
  loop.Post([&] { loop.RunAfter(1ms, [&fired] { fired.set_value(); }); });
  EXPECT_EQ(fut.wait_for(5s), std::future_status::ready);
  loop.Stop();
  t.join();
}

}  // namespace
}  // namespace pamakv::net
