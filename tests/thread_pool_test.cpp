#include "pamakv/util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace pamakv {
namespace {

TEST(ThreadPoolTest, ExecutesSubmittedTasks) {
  ThreadPool pool(2);
  auto f = pool.Submit([] { return 7 * 6; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPoolTest, ManyTasksAllComplete) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.Submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPoolTest, TaskExceptionsPropagateViaFuture) {
  ThreadPool pool(1);
  auto f = pool.Submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPoolTest, DefaultThreadCountPositive) {
  ThreadPool pool;
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      (void)pool.Submit([&counter] { ++counter; });
    }
  }  // destructor joins workers
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, SubmitAfterShutdownThrows) {
  ThreadPool pool(2);
  auto f = pool.Submit([] { return 1; });
  EXPECT_EQ(f.get(), 1);
  pool.Shutdown();
  EXPECT_THROW((void)pool.Submit([] { return 2; }), std::runtime_error);
}

TEST(ThreadPoolTest, ShutdownIsIdempotentAndDrainsQueue) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(pool.Submit([&counter] { ++counter; }));
  }
  pool.Shutdown();
  pool.Shutdown();  // second call is a no-op
  EXPECT_EQ(counter.load(), 64);
  for (auto& f : futures) f.get();  // all futures are ready, none dangles
}

TEST(ParallelForTest, CoversAllIndicesExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(100);
  ParallelFor(pool, hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, ZeroIterationsIsNoop) {
  ThreadPool pool(2);
  ParallelFor(pool, 0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ParallelForTest, ExceptionSurfacesAfterAllTasksFinish) {
  // A throwing task must propagate to the caller — but only after every
  // other task has run, since tasks capture the callable by reference.
  ThreadPool pool(3);
  std::atomic<int> ran{0};
  auto body = [&ran](std::size_t i) {
    ++ran;
    if (i == 5) throw std::runtime_error("task 5 failed");
  };
  EXPECT_THROW(ParallelFor(pool, 20, body), std::runtime_error);
  // No task was abandoned: the callable stayed alive until all completed.
  EXPECT_EQ(ran.load(), 20);
}

TEST(ParallelForTest, MultipleFailuresStillReportOne) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  auto body = [&ran](std::size_t) {
    ++ran;
    throw std::runtime_error("every task fails");
  };
  EXPECT_THROW(ParallelFor(pool, 8, body), std::runtime_error);
  EXPECT_EQ(ran.load(), 8);
}

}  // namespace
}  // namespace pamakv
