#include "pamakv/trace/generators.hpp"

#include <gtest/gtest.h>

#include <set>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace pamakv {
namespace {

TEST(SyntheticTraceTest, EmitsExactlyNumRequests) {
  auto cfg = EtcWorkload(1000);
  SyntheticTrace trace(cfg);
  Request r;
  std::uint64_t count = 0;
  while (trace.Next(r)) ++count;
  EXPECT_EQ(count, 1000u);
  EXPECT_FALSE(trace.Next(r));
  EXPECT_EQ(trace.TotalRequests(), 1000u);
}

TEST(SyntheticTraceTest, ResetReplaysIdentically) {
  auto cfg = AppWorkload(2000);
  SyntheticTrace trace(cfg);
  std::vector<Request> first;
  Request r;
  while (trace.Next(r)) first.push_back(r);
  trace.Reset();
  std::size_t i = 0;
  while (trace.Next(r)) {
    ASSERT_LT(i, first.size());
    EXPECT_EQ(r.key, first[i].key);
    EXPECT_EQ(r.size, first[i].size);
    EXPECT_EQ(r.penalty_us, first[i].penalty_us);
    EXPECT_EQ(static_cast<int>(r.op), static_cast<int>(first[i].op));
    ++i;
  }
  EXPECT_EQ(i, first.size());
}

TEST(SyntheticTraceTest, KeyAttributesAreStable) {
  auto cfg = EtcWorkload(20000);
  SyntheticTrace trace(cfg);
  std::unordered_map<KeyId, Bytes> sizes;
  std::unordered_map<KeyId, MicroSecs> penalties;
  Request r;
  while (trace.Next(r)) {
    const auto [it, fresh] = sizes.try_emplace(r.key, r.size);
    if (!fresh) {
      EXPECT_EQ(it->second, r.size) << "key " << r.key;
    }
    const auto [pit, pfresh] = penalties.try_emplace(r.key, r.penalty_us);
    if (!pfresh) {
      EXPECT_EQ(pit->second, r.penalty_us);
    }
  }
}

TEST(SyntheticTraceTest, OpMixMatchesConfig) {
  auto cfg = EtcWorkload(100000);
  SyntheticTrace trace(cfg);
  std::uint64_t gets = 0;
  std::uint64_t sets = 0;
  std::uint64_t dels = 0;
  Request r;
  while (trace.Next(r)) {
    switch (r.op) {
      case Op::kGet: ++gets; break;
      case Op::kSet: ++sets; break;
      case Op::kDel: ++dels; break;
    }
  }
  const double n = 100000.0;
  EXPECT_NEAR(gets / n, cfg.get_fraction, 0.01);
  EXPECT_NEAR(sets / n, cfg.set_fraction, 0.005);
  EXPECT_NEAR(dels / n, 1.0 - cfg.get_fraction - cfg.set_fraction, 0.005);
}

TEST(SyntheticTraceTest, VarIsUpdateDominated) {
  auto cfg = VarWorkload(50000);
  SyntheticTrace trace(cfg);
  std::uint64_t sets = 0;
  std::uint64_t total = 0;
  Request r;
  while (trace.Next(r)) {
    ++total;
    if (r.op == Op::kSet) ++sets;
  }
  EXPECT_GT(static_cast<double>(sets) / static_cast<double>(total), 0.7);
}

TEST(SyntheticTraceTest, ColdKeysNeverRepeatWithinPass) {
  auto cfg = AppWorkload(100000);
  SyntheticTrace trace(cfg);
  std::unordered_set<KeyId> cold_seen;
  std::uint64_t cold = 0;
  std::uint64_t gets = 0;
  Request r;
  const KeyId cold_base = 1ULL << 40;
  while (trace.Next(r)) {
    if (r.op != Op::kGet) continue;
    ++gets;
    if (r.key >= cold_base) {
      ++cold;
      EXPECT_TRUE(cold_seen.insert(r.key).second) << "cold key repeated";
    }
  }
  EXPECT_NEAR(static_cast<double>(cold) / static_cast<double>(gets),
              cfg.cold_fraction, 0.01);
}

TEST(SyntheticTraceTest, EtcIsSmallItemDominated) {
  auto cfg = EtcWorkload(50000);
  SyntheticTrace trace(cfg);
  const SizeClassTable classes(cfg.geometry);
  std::uint64_t class0 = 0;
  std::uint64_t total = 0;
  Request r;
  while (trace.Next(r)) {
    ++total;
    if (classes.ClassForSize(r.size) == ClassId{0}) ++class0;
  }
  EXPECT_GT(static_cast<double>(class0) / static_cast<double>(total), 0.6);
}

TEST(SyntheticTraceTest, AppShiftsMassToLargerClasses) {
  auto cfg = AppWorkload(50000);
  SyntheticTrace trace(cfg);
  const SizeClassTable classes(cfg.geometry);
  std::uint64_t large = 0;  // class >= 6
  std::uint64_t total = 0;
  Request r;
  while (trace.Next(r)) {
    ++total;
    if (*classes.ClassForSize(r.size) >= 6) ++large;
  }
  EXPECT_GT(static_cast<double>(large) / static_cast<double>(total), 0.5);
}

TEST(SyntheticTraceTest, SizesFitConfiguredGeometry) {
  auto cfg = EtcWorkload(20000);
  SyntheticTrace trace(cfg);
  const SizeClassTable classes(cfg.geometry);
  Request r;
  while (trace.Next(r)) {
    EXPECT_GE(r.size, 1u);
    EXPECT_LE(r.size, classes.max_item_bytes());
    EXPECT_GE(r.penalty_us, 1);
  }
}

TEST(SyntheticTraceTest, TimestampsIncrease) {
  auto cfg = EtcWorkload(1000);
  SyntheticTrace trace(cfg);
  Request r;
  MicroSecs last = -1;
  while (trace.Next(r)) {
    EXPECT_GT(r.timestamp_us, last);
    last = r.timestamp_us;
  }
}

TEST(SyntheticTraceTest, PopularKeysRecur) {
  auto cfg = EtcWorkload(50000);
  SyntheticTrace trace(cfg);
  std::unordered_map<KeyId, int> counts;
  Request r;
  while (trace.Next(r)) ++counts[r.key];
  int max_count = 0;
  for (const auto& [k, c] : counts) max_count = std::max(max_count, c);
  EXPECT_GT(max_count, 50);  // Zipf head gets hammered
}

TEST(SyntheticTraceTest, DiurnalDriftShiftsWorkingSet) {
  auto cfg = EtcWorkload(200000);
  cfg.diurnal_amplitude = 0.5;
  cfg.diurnal_period_requests = 200000;
  SyntheticTrace trace(cfg);
  // Compare hot keys at the start vs mid-period: the sets should differ.
  std::set<KeyId> early;
  std::set<KeyId> late;
  Request r;
  std::uint64_t i = 0;
  while (trace.Next(r)) {
    if (i < 10000) early.insert(r.key);
    if (i >= 95000 && i < 105000) late.insert(r.key);
    ++i;
  }
  std::size_t overlap = 0;
  for (const KeyId k : early) overlap += late.count(k);
  EXPECT_LT(static_cast<double>(overlap) / static_cast<double>(early.size()),
            0.8);
}

TEST(SyntheticTraceTest, InvalidConfigsThrow) {
  auto cfg = EtcWorkload(0);
  EXPECT_THROW(SyntheticTrace{cfg}, std::invalid_argument);
  cfg = EtcWorkload(100);
  cfg.class_weights.assign(20, 1.0);  // more weights than classes
  EXPECT_THROW(SyntheticTrace{cfg}, std::invalid_argument);
}

TEST(RepeatedTraceTest, ConcatenatesPasses) {
  auto cfg = SysWorkload(500);
  auto inner = std::make_unique<SyntheticTrace>(cfg);
  RepeatedTrace rep(std::move(inner), 3);
  EXPECT_EQ(rep.TotalRequests(), 1500u);
  Request r;
  std::vector<KeyId> keys;
  while (rep.Next(r)) keys.push_back(r.key);
  ASSERT_EQ(keys.size(), 1500u);
  // Each pass replays identically.
  for (std::size_t i = 0; i < 500; ++i) {
    EXPECT_EQ(keys[i], keys[i + 500]);
    EXPECT_EQ(keys[i], keys[i + 1000]);
  }
}

TEST(RepeatedTraceTest, ResetRestartsFromFirstPass) {
  auto cfg = SysWorkload(100);
  RepeatedTrace rep(std::make_unique<SyntheticTrace>(cfg), 2);
  Request r;
  std::uint64_t n = 0;
  while (rep.Next(r)) ++n;
  EXPECT_EQ(n, 200u);
  rep.Reset();
  n = 0;
  while (rep.Next(r)) ++n;
  EXPECT_EQ(n, 200u);
}

}  // namespace
}  // namespace pamakv
