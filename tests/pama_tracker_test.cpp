// Unit tests for PAMA's segment-value bookkeeping (paper Sec. III, Eq. 1-2)
// in exact-rank mode, plus window rotation and the pre-PAMA ablation.
#include <gtest/gtest.h>

#include "pamakv/cache/cache_engine.hpp"
#include "pamakv/policy/pama.hpp"

namespace pamakv {
namespace {

// 1 KiB slabs, classes 64/128/256/512 B -> class 3 has 2 slots per slab,
// which makes segment boundaries easy to reason about.
EngineConfig TinyConfig(Bytes capacity, std::uint32_t ghost_segments) {
  EngineConfig cfg;
  cfg.size_classes.slab_bytes = 1024;
  cfg.size_classes.min_slot_bytes = 64;
  cfg.size_classes.num_classes = 4;
  cfg.capacity_bytes = capacity;
  cfg.ghost_segments = ghost_segments;
  return cfg;
}

struct Harness {
  explicit Harness(PamaConfig pama_cfg, Bytes capacity = 4096) {
    auto policy = std::make_unique<PamaPolicy>(pama_cfg);
    pama = policy.get();
    engine = std::make_unique<CacheEngine>(
        TinyConfig(capacity, static_cast<std::uint32_t>(
                                 pama_cfg.reference_segments + 1)),
        std::move(policy));
  }
  std::unique_ptr<CacheEngine> engine;
  PamaPolicy* pama = nullptr;
};

PamaConfig ExactConfig(std::size_t m = 1) {
  PamaConfig cfg;
  cfg.reference_segments = m;
  cfg.window_accesses = 1'000'000;  // effectively no rotation
  cfg.use_bloom = false;
  cfg.value_decay = 0.0;  // the paper's tumbling-window reset
  return cfg;
}

TEST(PamaTrackerTest, HitsAttributeToCorrectSegments) {
  Harness h(ExactConfig(/*m=*/1));
  auto& e = *h.engine;
  // Class 3 (512 B, 2 slots/slab): insert k1..k6; k1 is the LRU bottom.
  for (KeyId k = 1; k <= 6; ++k) e.Set(k, 512, 100 * static_cast<MicroSecs>(k));

  // Bottom-up order: k1 k2 | k3 k4 | k5 k6. Segment 0 = {k1,k2},
  // segment 1 = {k3,k4} (m = 1 -> two tracked segments).
  e.Get(1, 512, 100);  // rank 0 -> segment 0, value += penalty(k1) = 100
  EXPECT_DOUBLE_EQ(h.pama->tracker().SegmentValue(3, 0, 0), 100.0);

  // k1 promoted; order now: k2 k3 | k4 k5 | k6 k1.
  e.Get(4, 512, 400);  // rank 2 -> segment 1, value += 400
  EXPECT_DOUBLE_EQ(h.pama->tracker().SegmentValue(3, 0, 1), 400.0);

  // k4 promoted; order: k2 k3 | k5 k6 | k1 k4. k4 at rank 5: untracked.
  e.Get(4, 512, 400);
  EXPECT_DOUBLE_EQ(h.pama->tracker().SegmentValue(3, 0, 0), 100.0);
  EXPECT_DOUBLE_EQ(h.pama->tracker().SegmentValue(3, 0, 1), 400.0);
}

TEST(PamaTrackerTest, OutgoingValueUsesGeometricWeights) {
  Harness h(ExactConfig(/*m=*/1));
  auto& e = *h.engine;
  for (KeyId k = 1; k <= 6; ++k) e.Set(k, 512, 1000);
  e.Get(1, 512, 1000);  // seg 0 += 1000; promotes k1
  e.Get(3, 512, 1000);  // k3 now at rank 1 -> seg 0 += 1000
  // Order after: k2 k4 | k5 k6 | k1 k3. Touch k5 (rank 2 -> seg 1).
  e.Get(5, 512, 1000);
  // Eq. 2: V = seg0/2 + seg1/4 = 2000/2 + 1000/4.
  EXPECT_DOUBLE_EQ(h.pama->tracker().OutgoingValue(3, 0), 1250.0);
}

TEST(PamaTrackerTest, GhostHitsBuildIncomingValue) {
  Harness h(ExactConfig(/*m=*/1));
  auto& e = *h.engine;
  for (KeyId k = 1; k <= 6; ++k) e.Set(k, 512, 100 * static_cast<MicroSecs>(k));
  // Evict the three LRU items: k1, k2, k3 (ghost newest-first: k3,k2,k1).
  ASSERT_TRUE(e.EvictBottom(3, 0));
  ASSERT_TRUE(e.EvictBottom(3, 0));
  ASSERT_TRUE(e.EvictBottom(3, 0));
  // Ghost ranks: k3 -> 0, k2 -> 1 (ghost segment 0); k1 -> 2 (segment 1).
  e.Get(3, 512, 300);
  e.Get(2, 512, 200);
  e.Get(1, 512, 100);
  EXPECT_DOUBLE_EQ(h.pama->tracker().GhostSegmentValue(3, 0, 0), 500.0);
  EXPECT_DOUBLE_EQ(h.pama->tracker().GhostSegmentValue(3, 0, 1), 100.0);
  EXPECT_DOUBLE_EQ(h.pama->tracker().IncomingValue(3, 0), 500.0 / 2 + 100.0 / 4);
}

TEST(PamaTrackerTest, GhostEntryConsumedOnReinsertion) {
  Harness h(ExactConfig(/*m=*/1));
  auto& e = *h.engine;
  for (KeyId k = 1; k <= 4; ++k) e.Set(k, 512, 100);
  ASSERT_TRUE(e.EvictBottom(3, 0));  // k1 to ghost
  e.Get(1, 512, 100);                // ghost hit
  e.Set(1, 512, 100);                // re-cached; ghost entry cleared
  e.Get(1, 512, 100);                // plain hit now
  EXPECT_DOUBLE_EQ(h.pama->tracker().GhostSegmentValue(3, 0, 0), 100.0);
}

TEST(PamaTrackerTest, PrePamaCountsRequestsNotPenalties) {
  PamaConfig cfg = ExactConfig(1);
  cfg.penalty_aware = false;
  Harness h(cfg);
  auto& e = *h.engine;
  for (KeyId k = 1; k <= 4; ++k) e.Set(k, 512, 999'999);
  e.Get(1, 512, 999'999);  // seg 0 += 1 (not the penalty)
  EXPECT_DOUBLE_EQ(h.pama->tracker().SegmentValue(3, 0, 0), 1.0);
  EXPECT_EQ(h.pama->name(), "pre-pama");
}

TEST(PamaTrackerTest, WindowRotationResetsValues) {
  PamaConfig cfg = ExactConfig(1);
  cfg.window_accesses = 10;
  Harness h(cfg);
  auto& e = *h.engine;
  for (KeyId k = 1; k <= 4; ++k) e.Set(k, 512, 100);  // 4 accesses
  e.Get(1, 512, 100);                                 // 5th: seg0 = 100
  ASSERT_GT(h.pama->tracker().SegmentValue(3, 0, 0), 0.0);
  // Push past the window boundary with unrelated requests.
  for (int i = 0; i < 10; ++i) e.Get(1000, 64, 1);
  EXPECT_DOUBLE_EQ(h.pama->tracker().SegmentValue(3, 0, 0), 0.0);
}

TEST(PamaTrackerTest, ValueDecayCarriesFraction) {
  PamaConfig cfg = ExactConfig(1);
  cfg.window_accesses = 10;
  cfg.value_decay = 0.5;
  Harness h(cfg);
  auto& e = *h.engine;
  for (KeyId k = 1; k <= 4; ++k) e.Set(k, 512, 100);
  e.Get(1, 512, 100);  // seg0 = 100
  for (int i = 0; i < 10; ++i) e.Get(1000, 64, 1);
  EXPECT_DOUBLE_EQ(h.pama->tracker().SegmentValue(3, 0, 0), 50.0);
}

TEST(PamaTrackerTest, ExactModeHasNoFilterFootprint) {
  Harness h(ExactConfig(1));
  EXPECT_EQ(h.pama->tracker().FilterFootprintBytes(), 0u);
}

TEST(PamaTrackerTest, BloomModeReportsFootprint) {
  PamaConfig cfg = ExactConfig(1);
  cfg.use_bloom = true;
  Harness h(cfg);
  EXPECT_GT(h.pama->tracker().FilterFootprintBytes(), 0u);
}

TEST(PamaTrackerTest, BloomModeAttributesAfterRebuild) {
  PamaConfig cfg;
  cfg.reference_segments = 1;
  cfg.window_accesses = 8;
  cfg.use_bloom = true;
  Harness h(cfg);
  auto& e = *h.engine;
  for (KeyId k = 1; k <= 6; ++k) e.Set(k, 512, 100);  // 6 accesses
  // Cross the boundary so the filters snapshot the current stack.
  e.Get(999, 64, 1);
  e.Get(999, 64, 1);
  e.Get(999, 64, 1);  // rotation happened at one of these ticks
  // Now k1 (stack bottom) is in segment 0's filter.
  e.Get(1, 512, 100);
  EXPECT_DOUBLE_EQ(h.pama->tracker().SegmentValue(3, 0, 0), 100.0);
  // A second access to the same key was promoted out of the region and
  // marked removed: it must not double-count.
  e.Get(1, 512, 100);
  EXPECT_DOUBLE_EQ(h.pama->tracker().SegmentValue(3, 0, 0), 100.0);
}

}  // namespace
}  // namespace pamakv
