#include "pamakv/slab/size_classes.hpp"

#include <gtest/gtest.h>

namespace pamakv {
namespace {

SizeClassConfig DefaultConfig() { return SizeClassConfig{}; }

TEST(SizeClassTest, DefaultGeometryMatchesScaledMemcached) {
  const SizeClassTable t(DefaultConfig());
  EXPECT_EQ(t.num_classes(), 12u);
  EXPECT_EQ(t.SlotBytes(0), 16u);
  EXPECT_EQ(t.SlotBytes(1), 32u);
  EXPECT_EQ(t.SlotBytes(11), 32768u);
  EXPECT_EQ(t.slab_bytes(), 64u * 1024);
  EXPECT_EQ(t.SlotsPerSlab(0), 4096u);
  EXPECT_EQ(t.SlotsPerSlab(11), 2u);
  EXPECT_EQ(t.max_item_bytes(), 32768u);
}

TEST(SizeClassTest, PaperGeometry) {
  // The paper's actual Memcached geometry: 64 B first class, 1 MiB slabs.
  SizeClassConfig cfg;
  cfg.min_slot_bytes = 64;
  cfg.slab_bytes = 1024 * 1024;
  cfg.num_classes = 12;
  const SizeClassTable t(cfg);
  EXPECT_EQ(t.SlotBytes(0), 64u);
  EXPECT_EQ(t.SlotsPerSlab(0), 16384u);
  EXPECT_EQ(t.SlotBytes(11), 131072u);
}

TEST(SizeClassTest, ClassForSizeBoundaries) {
  const SizeClassTable t(DefaultConfig());
  EXPECT_EQ(t.ClassForSize(1), ClassId{0});
  EXPECT_EQ(t.ClassForSize(16), ClassId{0});
  EXPECT_EQ(t.ClassForSize(17), ClassId{1});
  EXPECT_EQ(t.ClassForSize(32), ClassId{1});
  EXPECT_EQ(t.ClassForSize(33), ClassId{2});
  EXPECT_EQ(t.ClassForSize(32768), ClassId{11});
  EXPECT_EQ(t.ClassForSize(32769), std::nullopt);
}

TEST(SizeClassTest, ZeroSizeGoesToSmallestClass) {
  const SizeClassTable t(DefaultConfig());
  EXPECT_EQ(t.ClassForSize(0), ClassId{0});
}

TEST(SizeClassTest, NonPowerOfTwoGrowth) {
  SizeClassConfig cfg;
  cfg.min_slot_bytes = 100;
  cfg.growth_factor = 1.25;  // Memcached's actual default factor
  cfg.num_classes = 10;
  cfg.slab_bytes = 1024 * 1024;
  const SizeClassTable t(cfg);
  EXPECT_EQ(t.SlotBytes(0), 100u);
  EXPECT_EQ(t.SlotBytes(1), 125u);
  for (ClassId c = 1; c < t.num_classes(); ++c) {
    EXPECT_GT(t.SlotBytes(c), t.SlotBytes(c - 1));
  }
}

TEST(SizeClassTest, InvalidConfigsThrow) {
  SizeClassConfig bad;
  bad.slab_bytes = 0;
  EXPECT_THROW(SizeClassTable{bad}, std::invalid_argument);

  bad = SizeClassConfig{};
  bad.growth_factor = 1.0;
  EXPECT_THROW(SizeClassTable{bad}, std::invalid_argument);

  bad = SizeClassConfig{};
  bad.num_classes = 30;  // slot would exceed slab size
  EXPECT_THROW(SizeClassTable{bad}, std::invalid_argument);
}

}  // namespace
}  // namespace pamakv
