// Connection-churn soak: many client threads connecting, issuing mixed
// operations, disconnecting abruptly (often mid-request), and
// reconnecting — against a live server with every lifecycle knob enabled.
// The pass criteria are resource-exactness, not throughput: zero leaked
// file descriptors (counted via /proc/self/fd across the server's whole
// lifetime), zero lost connections in the gauges, and self-consistent
// cache stats.
//
// Excluded from the default ctest run: it burns a few wall-clock seconds
// and its value is in CI's sanitizer jobs. Gate: set PAMAKV_SOAK=1 (the
// ctest `soak` label selects the binary; the env var arms it).

#include <gtest/gtest.h>

#include <dirent.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "pamakv/net/cache_service.hpp"
#include "pamakv/net/client.hpp"
#include "pamakv/net/server.hpp"
#include "pamakv/sim/experiment.hpp"
#include "pamakv/util/rng.hpp"

namespace pamakv::net {
namespace {

/// Open descriptors in this process, via /proc/self/fd. The readdir fd
/// itself is excluded, so two calls in the same state return equal counts.
std::size_t OpenFdCount() {
  DIR* dir = ::opendir("/proc/self/fd");
  if (dir == nullptr) return 0;
  std::size_t count = 0;
  while (const dirent* entry = ::readdir(dir)) {
    if (entry->d_name[0] == '.') continue;
    ++count;
  }
  ::closedir(dir);
  return count - 1;  // the DIR* stream's own fd
}

TEST(NetSoakTest, ConnectionChurnLeaksNothing) {
  if (std::getenv("PAMAKV_SOAK") == nullptr) {
    GTEST_SKIP() << "set PAMAKV_SOAK=1 to run the soak test";
  }

  const std::size_t fds_before = OpenFdCount();
  std::uint64_t expected_gets = 0;
  std::uint64_t expected_sets = 0;

  {
    CacheServiceConfig cfg;
    cfg.shards = 4;
    cfg.capacity_bytes = 32ULL * 1024 * 1024;
    CacheService service(cfg, [](Bytes bytes) {
      return MakeEngine("pama", bytes, SizeClassConfig{});
    });
    ServerConfig scfg;
    scfg.port = 0;
    scfg.threads = 2;
    scfg.max_conns = 64;
    scfg.idle_timeout_ms = 10'000;  // real clock; far beyond the test
    scfg.request_timeout_ms = 10'000;
    scfg.tx_pause_bytes = 64 * 1024;
    scfg.tx_resume_bytes = 16 * 1024;
    Server server(scfg, service);
    server.Start();

    constexpr int kThreads = 8;
    constexpr int kOpsPerThread = 4'000;
    std::atomic<std::uint64_t> gets{0};
    std::atomic<std::uint64_t> sets{0};
    std::atomic<int> failures{0};
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([&, t] {
        Rng rng(1'000 + static_cast<std::uint64_t>(t));
        BlockingClient client;
        client.Connect("127.0.0.1", server.port());
        std::string value;
        for (int i = 0; i < kOpsPerThread; ++i) {
          try {
            const std::uint64_t dice = rng.NextBounded(100);
            const std::string key =
                "soak:" + std::to_string(t) + ":" +
                std::to_string(rng.NextBounded(200));
            if (dice < 45) {
              if (client.Get(key, value)) {
                if (value.find("v:") != 0) {
                  failures.fetch_add(1, std::memory_order_relaxed);
                }
              }
              gets.fetch_add(1, std::memory_order_relaxed);
            } else if (dice < 85) {
              const std::size_t len = 8 + rng.NextBounded(4096);
              std::string payload = "v:" + std::string(len, 'p');
              if (!client.Set(key, 1'000, payload)) {
                failures.fetch_add(1, std::memory_order_relaxed);
              }
              sets.fetch_add(1, std::memory_order_relaxed);
            } else if (dice < 93) {
              client.Delete(key);
            } else if (dice < 97) {
              // Abrupt mid-request disconnect: the server must unwind the
              // half-parsed state without leaking the connection.
              client.SendRaw("set " + key + " 0 0 512\r\npartial");
              client.Close();
              client.Connect("127.0.0.1", server.port());
            } else {
              // Polite goodbye, then reconnect.
              client.SendRaw("quit\r\n");
              client.Close();
              client.Connect("127.0.0.1", server.port());
            }
          } catch (const ClientError&) {
            // A reaped/shed connection is legal under churn; reconnect.
            client.Close();
            client.Connect("127.0.0.1", server.port());
          }
        }
        client.Close();
      });
    }
    for (auto& w : workers) w.join();
    expected_gets = gets.load();
    expected_sets = sets.load();
    EXPECT_EQ(failures.load(), 0);

    // All clients hung up; the server notices every EOF.
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(10);
    while (server.curr_connections() != 0 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::yield();
    }
    EXPECT_EQ(server.curr_connections(), 0u);
    EXPECT_GE(server.total_connections(), static_cast<std::uint64_t>(kThreads));

    // The server may have executed an op whose response a dying client
    // never credited, so server counts dominate client counts; the wire
    // numbers must still reconcile with themselves exactly.
    const CacheStats totals = service.TotalStats();
    EXPECT_GE(totals.gets, expected_gets);
    EXPECT_EQ(totals.get_hits + totals.get_misses, totals.gets);
    EXPECT_GE(totals.sets, expected_sets);

    server.Stop();
  }

  // Server, service and every connection are gone: fd-exact.
  EXPECT_EQ(OpenFdCount(), fds_before);
}

}  // namespace
}  // namespace pamakv::net
