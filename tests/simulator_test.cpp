#include "pamakv/sim/simulator.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "pamakv/policy/no_realloc.hpp"
#include "pamakv/sim/metrics.hpp"
#include "pamakv/trace/generators.hpp"

namespace pamakv {
namespace {

EngineConfig SmallConfig() {
  EngineConfig cfg;
  cfg.capacity_bytes = 16ULL * 1024 * 1024;  // 256 slabs of 64 KiB
  return cfg;
}

std::unique_ptr<CacheEngine> MakeSmallEngine() {
  return std::make_unique<CacheEngine>(SmallConfig(),
                                       std::make_unique<NoReallocPolicy>());
}

TEST(SimulatorTest, ReplaysEveryRequest) {
  auto engine = MakeSmallEngine();
  auto cfg = SysWorkload(5000);
  SyntheticTrace trace(cfg);
  Simulator sim;
  const auto result = sim.Run(*engine, trace);
  EXPECT_EQ(result.requests_replayed, 5000u);
  EXPECT_GT(result.final_stats.gets, 0u);
}

TEST(SimulatorTest, WriteAllocateCachesMissedKeys) {
  auto engine = MakeSmallEngine();
  auto cfg = SysWorkload(5000);
  SyntheticTrace trace(cfg);
  Simulator sim;
  const auto result = sim.Run(*engine, trace);
  // A tiny recurring key space in a roomy cache: the second access to any
  // key must hit, so hit ratio is far above zero.
  EXPECT_GT(result.overall_hit_ratio, 0.5);
}

TEST(SimulatorTest, WriteAllocateDisabledNeverInserts) {
  auto engine = MakeSmallEngine();
  auto cfg = SysWorkload(2000);
  cfg.set_fraction = 0.0;
  cfg.get_fraction = 1.0;
  SyntheticTrace trace(cfg);
  SimConfig sim_cfg;
  sim_cfg.write_allocate = false;
  Simulator sim(sim_cfg);
  const auto result = sim.Run(*engine, trace);
  EXPECT_EQ(result.overall_hit_ratio, 0.0);
  EXPECT_EQ(engine->item_count(), 0u);
}

TEST(SimulatorTest, WindowSamplesCoverRun) {
  auto engine = MakeSmallEngine();
  auto cfg = SysWorkload(10000);
  SyntheticTrace trace(cfg);
  SimConfig sim_cfg;
  sim_cfg.window_gets = 1000;
  Simulator sim(sim_cfg);
  const auto result = sim.Run(*engine, trace);
  // ~97% of 10000 requests are GETs -> 9-10 windows incl. the partial tail.
  EXPECT_GE(result.windows.size(), 9u);
  EXPECT_LE(result.windows.size(), 11u);
  for (std::size_t i = 1; i < result.windows.size(); ++i) {
    EXPECT_GT(result.windows[i].gets_total,
              result.windows[i - 1].gets_total);
  }
}

TEST(SimulatorTest, WindowMetricsAreWindowLocal) {
  auto engine = MakeSmallEngine();
  auto cfg = SysWorkload(10000);
  // Shrink the key space so the run moves past compulsory misses: the last
  // window must be dominated by re-accesses.
  cfg.key_space = 1500;
  SyntheticTrace trace(cfg);
  SimConfig sim_cfg;
  sim_cfg.window_gets = 1000;
  Simulator sim(sim_cfg);
  const auto result = sim.Run(*engine, trace);
  // The first window absorbs all cold misses; later windows must show a
  // strictly better hit ratio (tiny working set fits the cache).
  ASSERT_GE(result.windows.size(), 3u);
  EXPECT_LT(result.windows.front().hit_ratio,
            result.windows.back().hit_ratio);
  EXPECT_GT(result.windows.back().hit_ratio, 0.9);
}

TEST(SimulatorTest, ClassSlabSeriesCaptured) {
  auto engine = MakeSmallEngine();
  auto cfg = SysWorkload(5000);
  SyntheticTrace trace(cfg);
  SimConfig sim_cfg;
  sim_cfg.window_gets = 1000;
  sim_cfg.capture_class_slabs = true;
  Simulator sim(sim_cfg);
  const auto result = sim.Run(*engine, trace);
  ASSERT_FALSE(result.windows.empty());
  for (const auto& w : result.windows) {
    ASSERT_EQ(w.class_slabs.size(), engine->classes().num_classes());
  }
  // Some class must own slabs by the end.
  std::size_t total = 0;
  for (const auto s : result.windows.back().class_slabs) total += s;
  EXPECT_GT(total, 0u);
}

TEST(SimulatorTest, SubclassSeriesOptIn) {
  auto engine = MakeSmallEngine();
  auto cfg = SysWorkload(3000);
  SyntheticTrace trace(cfg);
  SimConfig sim_cfg;
  sim_cfg.window_gets = 1000;
  sim_cfg.capture_subclass_items = true;
  Simulator sim(sim_cfg);
  const auto result = sim.Run(*engine, trace);
  for (const auto& w : result.windows) {
    ASSERT_EQ(w.subclass_items.size(),
              static_cast<std::size_t>(engine->classes().num_classes()) *
                  engine->num_subclasses());
  }
}

TEST(SimulatorTest, ServiceTimeMatchesStatsFormula) {
  auto engine = MakeSmallEngine();
  auto cfg = SysWorkload(4000);
  SyntheticTrace trace(cfg);
  Simulator sim;
  const auto result = sim.Run(*engine, trace);
  const auto& st = result.final_stats;
  const double expect =
      static_cast<double>(st.miss_penalty_total_us) / static_cast<double>(st.gets);
  EXPECT_DOUBLE_EQ(result.overall_avg_service_time_us, expect);
}

TEST(SimulatorTest, CsvWritersProduceRows) {
  auto engine = MakeSmallEngine();
  auto cfg = SysWorkload(3000);
  SyntheticTrace trace(cfg);
  SimConfig sim_cfg;
  sim_cfg.window_gets = 500;
  sim_cfg.capture_subclass_items = true;
  Simulator sim(sim_cfg);
  auto result = sim.Run(*engine, trace);
  result.workload = "sys";

  std::ostringstream windows_csv;
  WriteWindowCsv(windows_csv, result, /*include_header=*/true);
  EXPECT_NE(windows_csv.str().find("scheme,workload"), std::string::npos);
  EXPECT_NE(windows_csv.str().find("memcached,sys"), std::string::npos);

  std::ostringstream slabs_csv;
  WriteClassSlabCsv(slabs_csv, result, true);
  EXPECT_NE(slabs_csv.str().find("class"), std::string::npos);

  std::ostringstream sub_csv;
  WriteSubclassCsv(sub_csv, result, 0, engine->num_subclasses(), true);
  EXPECT_NE(sub_csv.str().find("subclass"), std::string::npos);
}

}  // namespace
}  // namespace pamakv
