// Extends the zero-allocation discipline from engine_alloc_test to the
// server's request path: once a connection and the service behind it are
// warm, the full read→parse→execute→respond cycle must not touch the heap.
// The connection reuses its rx/tx buffers, the parser works in string_views
// over the rx buffer, and CacheService recycles entry slots (tombstones are
// overwritten in place, never erased), so replaying a fixed request mix
// allocates nothing.
//
// Requests are prepared as byte streams before the measured window (building
// std::strings allocates, the connection must not).

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "alloc_count.hpp"
#include "pamakv/net/cache_service.hpp"
#include "pamakv/net/connection.hpp"
#include "pamakv/sim/experiment.hpp"
#include "pamakv/util/rng.hpp"

namespace pamakv::net {
namespace {

TEST(NetAllocationTest, SteadyStateConnectionIsAllocationFree) {
  CacheServiceConfig cfg;
  cfg.shards = 2;
  cfg.capacity_bytes = 2ULL * 1024 * 1024;
  CacheService service(cfg, [](Bytes bytes) {
    return MakeEngine("memcached", bytes, SizeClassConfig{});
  });
  Connection conn(service);

  // A fixed batch set over a fixed key space: the measured window replays
  // exactly the bytes the warmup ran, so no new map nodes, no buffer
  // high-water growth, no first-touch slab grabs can occur inside it.
  constexpr std::uint64_t kKeySpace = 8'192;
  Rng rng(3);
  std::vector<std::string> batches;
  std::string value;
  for (int b = 0; b < 64; ++b) {
    std::string stream;
    for (int op = 0; op < 32; ++op) {
      const std::uint64_t k = rng.NextBounded(kKeySpace);
      const std::string key = "key:" + std::to_string(k);
      if (rng.NextDouble() < 0.4) {
        const Bytes size = 64 + (Mix64(k) & 511);
        value.assign(size, static_cast<char>('a' + k % 26));
        stream += "set " + key + " 1000 0 " + std::to_string(size) + "\r\n" +
                  value + "\r\n";
      } else if (rng.NextDouble() < 0.05) {
        stream += "stats\r\n";
      } else {
        stream += (rng.NextDouble() < 0.5 ? "gets " : "get ") + key + "\r\n";
      }
    }
    batches.push_back(std::move(stream));
  }

  const auto drive = [&](int rounds) {
    for (int r = 0; r < rounds; ++r) {
      for (const std::string& stream : batches) {
        ASSERT_TRUE(conn.Ingest(stream.data(), stream.size()));
        conn.ConsumeOutput(conn.pending_output().size());
      }
    }
  };

  // Warm until everything saturates: engine slab pools and ghost lists at
  // their structural maxima (the key space oversubscribes 2 MiB), every key
  // has an entry slot with sufficient string capacity, rx/tx at high water.
  drive(50);

  const std::uint64_t before = test::AllocationCount();
  drive(5);
  const std::uint64_t during = test::AllocationCount() - before;
  EXPECT_EQ(during, 0u)
      << "steady-state connection handling allocated " << during << " times";
}

}  // namespace
}  // namespace pamakv::net
