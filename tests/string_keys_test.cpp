#include "pamakv/cache/string_keys.hpp"

#include <gtest/gtest.h>

#include <set>

#include "pamakv/policy/no_realloc.hpp"

namespace pamakv {
namespace {

StringKeyCache MakeCache(Bytes capacity = 4ULL * 1024 * 1024) {
  EngineConfig cfg;
  cfg.capacity_bytes = capacity;
  return StringKeyCache(std::make_unique<CacheEngine>(
      cfg, std::make_unique<NoReallocPolicy>()));
}

TEST(StringKeyTest, HashIsDeterministicAndSpreads) {
  EXPECT_EQ(HashStringKey("user:42"), HashStringKey("user:42"));
  std::set<KeyId> ids;
  for (int i = 0; i < 10000; ++i) {
    ids.insert(HashStringKey("key:" + std::to_string(i)));
  }
  EXPECT_EQ(ids.size(), 10000u);
}

TEST(StringKeyTest, EmptyAndBinaryKeysWork) {
  EXPECT_NE(HashStringKey(""), HashStringKey(std::string_view("\0", 1)));
  EXPECT_NE(HashStringKey("a"), HashStringKey("b"));
}

TEST(StringKeyTest, SetGetDelRoundTrip) {
  auto cache = MakeCache();
  EXPECT_TRUE(cache.Set("session:alice", 200, 30'000).stored);
  EXPECT_TRUE(cache.Get("session:alice", 200, 30'000).hit);
  EXPECT_FALSE(cache.Get("session:bob", 200, 30'000).hit);
  EXPECT_TRUE(cache.Contains("session:alice"));
  EXPECT_TRUE(cache.Del("session:alice"));
  EXPECT_FALSE(cache.Contains("session:alice"));
  EXPECT_FALSE(cache.Del("session:alice"));
}

TEST(StringKeyTest, ManyKeysNoFalseHits) {
  auto cache = MakeCache();
  for (int i = 0; i < 2000; ++i) {
    cache.Set("item/" + std::to_string(i), 64, 1000);
  }
  for (int i = 0; i < 2000; ++i) {
    EXPECT_TRUE(cache.Contains("item/" + std::to_string(i))) << i;
  }
  for (int i = 2000; i < 4000; ++i) {
    EXPECT_FALSE(cache.Contains("item/" + std::to_string(i))) << i;
  }
  EXPECT_EQ(cache.collisions_resolved(), 0u);
}

TEST(StringKeyTest, UpdatesKeepOneCopy) {
  auto cache = MakeCache();
  cache.Set("k", 64, 1000);
  cache.Set("k", 128, 2000);
  EXPECT_EQ(cache.engine().item_count(), 1u);
  EXPECT_TRUE(cache.Get("k", 128, 2000).hit);
}

TEST(StringKeyTest, DelThenReinsertRoundTrip) {
  auto cache = MakeCache();
  ASSERT_TRUE(cache.Set("churn", 64, 1000).stored);
  ASSERT_TRUE(cache.Del("churn"));
  EXPECT_FALSE(cache.Contains("churn"));
  // Reinsert after delete must behave like a fresh store, not an update.
  const auto r = cache.Set("churn", 128, 2000);
  ASSERT_TRUE(r.stored);
  EXPECT_FALSE(r.updated);
  EXPECT_TRUE(cache.Get("churn", 128, 2000).hit);
  EXPECT_EQ(cache.engine().item_count(), 1u);
  EXPECT_EQ(cache.collisions_resolved(), 0u);
}

// Real 64-bit collisions are astronomically unlikely, so the collision
// path is exercised by planting an entry directly in the engine under the
// id that a string hashes to, without registering the string in the
// verification table — exactly the state a collision would produce (the
// id is occupied by a key whose stored name doesn't match).
TEST(StringKeyTest, GetResolvesCollisionAsMissAndDropsSquatter) {
  auto cache = MakeCache();
  const KeyId id = HashStringKey("victim");
  ASSERT_TRUE(cache.engine().Set(id, 64, 1000).stored);
  ASSERT_TRUE(cache.engine().Contains(id));

  // The squatter must not be served as a hit for "victim".
  EXPECT_FALSE(cache.Get("victim", 64, 1000).hit);
  EXPECT_EQ(cache.collisions_resolved(), 1u);
  // ...and it is gone: the id is free for the verified owner.
  EXPECT_FALSE(cache.engine().Contains(id));
  ASSERT_TRUE(cache.Set("victim", 64, 1000).stored);
  EXPECT_TRUE(cache.Get("victim", 64, 1000).hit);
  EXPECT_EQ(cache.collisions_resolved(), 1u);  // no further collisions
}

TEST(StringKeyTest, DelRefusesToRemoveCollidingStranger) {
  auto cache = MakeCache();
  const KeyId id = HashStringKey("victim");
  ASSERT_TRUE(cache.engine().Set(id, 64, 1000).stored);

  // DEL of a name whose id is occupied by someone else must not remove
  // that someone else's entry.
  EXPECT_FALSE(cache.Del("victim"));
  EXPECT_TRUE(cache.engine().Contains(id));
}

TEST(StringKeyTest, SetResolvesCollisionThenOwnsTheId) {
  auto cache = MakeCache();
  const KeyId id = HashStringKey("victim");
  ASSERT_TRUE(cache.engine().Set(id, 64, 1000).stored);

  ASSERT_TRUE(cache.Set("victim", 96, 2000).stored);
  EXPECT_EQ(cache.collisions_resolved(), 1u);
  EXPECT_TRUE(cache.Contains("victim"));
  EXPECT_EQ(cache.engine().item_count(), 1u);
}

TEST(StringKeyTest, StatsFlowThrough) {
  auto cache = MakeCache();
  cache.Set("x", 64, 1000);
  cache.Get("x", 64, 1000);
  cache.Get("y", 64, 5000);
  EXPECT_EQ(cache.stats().gets, 2u);
  EXPECT_EQ(cache.stats().get_hits, 1u);
  EXPECT_EQ(cache.stats().miss_penalty_total_us, 5000u);
}

}  // namespace
}  // namespace pamakv
