// Tests for the LAMA-style MRC+DP extension policy (related work [9]).
#include <gtest/gtest.h>

#include <numeric>

#include "pamakv/cache/cache_engine.hpp"
#include "pamakv/policy/lama.hpp"

namespace pamakv {
namespace {

EngineConfig TinyConfig(Bytes capacity) {
  EngineConfig cfg;
  cfg.size_classes.slab_bytes = 1024;
  cfg.size_classes.min_slot_bytes = 64;
  cfg.size_classes.num_classes = 4;
  cfg.capacity_bytes = capacity;
  return cfg;
}

struct Harness {
  explicit Harness(Bytes capacity, LamaConfig cfg) {
    auto policy = std::make_unique<LamaPolicy>(cfg);
    lama = policy.get();
    engine = std::make_unique<CacheEngine>(TinyConfig(capacity),
                                           std::move(policy));
  }
  std::unique_ptr<CacheEngine> engine;
  LamaPolicy* lama = nullptr;
};

LamaConfig SmallWindows() {
  LamaConfig cfg;
  cfg.window_accesses = 64;
  cfg.granularity_slabs = 1;
  cfg.penalty_weighted = false;
  return cfg;
}

TEST(LamaTest, TargetSumsToTotalSlabsAfterRepartition) {
  Harness h(4096, SmallWindows());
  auto& e = *h.engine;
  // Drive enough traffic to cross a window boundary.
  for (int round = 0; round < 6; ++round) {
    for (KeyId k = 0; k < 20; ++k) {
      e.Set(k, 64, 100);
      e.Get(k, 64, 100);
    }
  }
  const auto& target = h.lama->target();
  const auto total = std::accumulate(target.begin(), target.end(),
                                     std::size_t{0});
  EXPECT_EQ(total, e.pool().total_slabs());
}

TEST(LamaTest, HotClassGetsTheLionShare) {
  Harness h(4096, SmallWindows());
  auto& e = *h.engine;
  // Class 0 is hot and deep (needs many slabs); class 3 sees one item.
  e.Set(500, 512, 100);
  for (int round = 0; round < 8; ++round) {
    for (KeyId k = 0; k < 60; ++k) {
      e.Set(k, 64, 100);
      e.Get(k, 64, 100);
    }
  }
  const auto& target = h.lama->target();
  EXPECT_GT(target[0], target[3]);
}

TEST(LamaTest, PenaltyWeightingChangesObjective) {
  // Two classes with equal hit counts; class 3's items carry 100x the
  // penalty. LAMA-ST must give class 3 at least as much as LAMA-HR does.
  auto run = [](bool penalty_weighted) {
    LamaConfig cfg;
    cfg.window_accesses = 128;
    cfg.granularity_slabs = 1;
    cfg.penalty_weighted = penalty_weighted;
    Harness h(2048, cfg);
    auto& e = *h.engine;
    for (int round = 0; round < 10; ++round) {
      for (KeyId k = 0; k < 8; ++k) {
        e.Set(k, 64, 100);
        e.Get(k, 64, 100);
        e.Set(100 + k, 512, 10'000);
        e.Get(100 + k, 512, 10'000);
      }
    }
    return h.lama->target();
  };
  const auto hr = run(false);
  const auto st = run(true);
  EXPECT_GE(st[3], hr[3]);
  EXPECT_GT(st[3], 0u);
}

TEST(LamaTest, MakeRoomServesStarvedClass) {
  LamaConfig cfg = SmallWindows();
  Harness h(1024, cfg);  // one slab
  auto& e = *h.engine;
  for (KeyId k = 0; k < 16; ++k) e.Set(k, 64, 100);  // class 0 owns it
  const auto result = e.Set(500, 512, 100);          // class 3 starved
  EXPECT_TRUE(result.stored);
  EXPECT_EQ(e.pool().ClassSlabCount(3), 1u);
}

TEST(LamaTest, NamesReflectObjective) {
  LamaConfig cfg;
  cfg.penalty_weighted = false;
  EXPECT_EQ(LamaPolicy(cfg).name(), "lama-hr");
  cfg.penalty_weighted = true;
  EXPECT_EQ(LamaPolicy(cfg).name(), "lama-st");
}

}  // namespace
}  // namespace pamakv
