#include "pamakv/sim/mrc.hpp"

#include <gtest/gtest.h>

#include "pamakv/cache/cache_engine.hpp"
#include "pamakv/policy/no_realloc.hpp"
#include "pamakv/trace/generators.hpp"
#include "pamakv/util/zipf.hpp"

namespace pamakv {
namespace {

Request Get(KeyId key, Bytes size = 100, MicroSecs penalty = 1000) {
  Request r;
  r.op = Op::kGet;
  r.key = key;
  r.size = size;
  r.penalty_us = penalty;
  return r;
}

TEST(MattsonTest, EmptyProfilerBuildsEmptyCurve) {
  MattsonProfiler profiler;
  const auto curve = profiler.Build();
  EXPECT_EQ(curve.gets, 0u);
  EXPECT_TRUE(curve.miss_ratio.empty());
}

TEST(MattsonTest, ColdMissesCounted) {
  MattsonProfiler profiler(1000);
  for (KeyId k = 0; k < 10; ++k) profiler.Record(Get(k));
  const auto curve = profiler.Build();
  EXPECT_EQ(curve.gets, 10u);
  EXPECT_EQ(curve.cold_misses, 10u);
  EXPECT_EQ(profiler.unique_keys(), 10u);
}

TEST(MattsonTest, TightLoopHitsAtItsFootprint) {
  // Cycling over 10 items of 100 B (1000 B footprint): with >= 1000 B of
  // cache the only misses are the 10 cold ones.
  MattsonProfiler profiler(500);  // 500-byte buckets
  for (int round = 0; round < 20; ++round) {
    for (KeyId k = 0; k < 10; ++k) profiler.Record(Get(k, 100));
  }
  const auto curve = profiler.Build();
  ASSERT_GE(curve.miss_ratio.size(), 2u);
  // At the largest profiled size, only cold misses remain.
  const double floor = 10.0 / 200.0;
  EXPECT_NEAR(curve.miss_ratio.back(), floor, 1e-9);
  // The curve is monotonically non-increasing.
  for (std::size_t i = 1; i < curve.miss_ratio.size(); ++i) {
    EXPECT_LE(curve.miss_ratio[i], curve.miss_ratio[i - 1] + 1e-12);
  }
}

TEST(MattsonTest, PenaltyCurveWeighsExpensiveKeys) {
  // Two interleaved loops: cheap keys (1 ms) and expensive keys (100 ms),
  // equal counts. The penalty curve's drop across the expensive keys'
  // depth must dwarf the cheap keys' contribution.
  MattsonProfiler profiler(400);
  for (int round = 0; round < 50; ++round) {
    for (KeyId k = 0; k < 4; ++k) profiler.Record(Get(k, 100, 1'000));
    for (KeyId k = 100; k < 104; ++k) profiler.Record(Get(k, 100, 100'000));
  }
  const auto curve = profiler.Build();
  ASSERT_FALSE(curve.miss_penalty_per_get_us.empty());
  // Full footprint cached: only cold-miss penalty remains, which is small
  // relative to one round of the loop.
  EXPECT_LT(curve.miss_penalty_per_get_us.back(),
            curve.miss_penalty_per_get_us.front());
}

TEST(MattsonTest, DelRemovesFromStack) {
  MattsonProfiler profiler(1000);
  profiler.Record(Get(1));
  Request del;
  del.op = Op::kDel;
  del.key = 1;
  profiler.Record(del);
  EXPECT_EQ(profiler.unique_keys(), 0u);
  profiler.Record(Get(1));  // cold again
  const auto curve = profiler.Build();
  EXPECT_EQ(curve.cold_misses, 2u);
}

TEST(MattsonTest, SetsTouchWithoutCounting) {
  MattsonProfiler profiler(1000);
  Request set;
  set.op = Op::kSet;
  set.key = 5;
  set.size = 100;
  profiler.Record(set);
  EXPECT_EQ(profiler.gets(), 0u);
  profiler.Record(Get(5));
  const auto curve = profiler.Build();
  // The SET pre-warmed the key, so the GET is a depth-0 hit, not cold.
  EXPECT_EQ(curve.cold_misses, 0u);
}

TEST(MattsonTest, CurveMatchesSimulatedLruOnZipf) {
  // Ground-truth check: the profiled miss ratio at cache size S must agree
  // (within tolerance: byte-depth approximation + slab quantization) with
  // an actual simulation of an LRU cache of size S. Items exactly fill
  // their class-0 slots (16 B) so profiler bytes == cache bytes, and a
  // single class keeps the simulated cache a pure LRU.
  const std::uint64_t key_space = 30'000;
  ZipfSampler zipf(key_space, 0.9);
  Rng rng(77);
  auto next_key = [&] { return zipf.Sample(rng); };

  MattsonProfiler profiler(64 * 1024);
  Rng replay(77);
  ZipfSampler zipf_replay(key_space, 0.9);
  for (int i = 0; i < 150'000; ++i) profiler.Record(Get(next_key(), 16, 1000));
  const auto curve = profiler.Build();

  const Bytes cache_bytes = 128 * 1024;  // 2 slabs
  EngineConfig engine_cfg;
  engine_cfg.capacity_bytes = cache_bytes;
  CacheEngine engine(engine_cfg, std::make_unique<NoReallocPolicy>());
  for (int i = 0; i < 150'000; ++i) {
    const KeyId key = zipf_replay.Sample(replay);
    if (!engine.Get(key, 16, 1000).hit) {
      engine.Set(key, 16, 1000);
    }
  }
  const double simulated = 1.0 - engine.stats().HitRatio();
  const std::size_t bucket = cache_bytes / (64 * 1024) - 1;
  ASSERT_LT(bucket, curve.miss_ratio.size());
  EXPECT_NEAR(curve.miss_ratio[bucket], simulated, 0.05);
}

}  // namespace
}  // namespace pamakv
