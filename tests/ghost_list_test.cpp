#include "pamakv/ds/ghost_list.hpp"

#include <gtest/gtest.h>

#include <deque>
#include <unordered_map>

#include "pamakv/util/rng.hpp"

namespace pamakv {
namespace {

TEST(GhostListTest, EmptyLookupMisses) {
  GhostList g(8);
  EXPECT_EQ(g.Lookup(1), std::nullopt);
  EXPECT_EQ(g.size(), 0u);
  EXPECT_FALSE(g.Remove(1));
}

TEST(GhostListTest, MostRecentEvictionHasRankZero) {
  GhostList g(8);
  g.Push(1, 100);
  g.Push(2, 200);
  g.Push(3, 300);
  EXPECT_EQ(g.Lookup(3)->rank, 0u);
  EXPECT_EQ(g.Lookup(2)->rank, 1u);
  EXPECT_EQ(g.Lookup(1)->rank, 2u);
  EXPECT_EQ(g.Lookup(3)->penalty, 300);
}

TEST(GhostListTest, CapacityEvictsOldest) {
  GhostList g(3);
  g.Push(1, 10);
  g.Push(2, 20);
  g.Push(3, 30);
  g.Push(4, 40);  // overwrites key 1
  EXPECT_EQ(g.Lookup(1), std::nullopt);
  EXPECT_EQ(g.size(), 3u);
  EXPECT_EQ(g.Lookup(4)->rank, 0u);
  EXPECT_EQ(g.Lookup(2)->rank, 2u);
}

TEST(GhostListTest, RemoveCompactsRanks) {
  GhostList g(8);
  g.Push(1, 10);
  g.Push(2, 20);
  g.Push(3, 30);
  EXPECT_TRUE(g.Remove(2));
  // Rank of 1 shrinks because the hole no longer counts.
  EXPECT_EQ(g.Lookup(1)->rank, 1u);
  EXPECT_EQ(g.Lookup(3)->rank, 0u);
  EXPECT_EQ(g.size(), 2u);
}

TEST(GhostListTest, RePushMovesKeyToFront) {
  GhostList g(8);
  g.Push(1, 10);
  g.Push(2, 20);
  g.Push(1, 15);  // re-evicted with a new penalty
  EXPECT_EQ(g.Lookup(1)->rank, 0u);
  EXPECT_EQ(g.Lookup(1)->penalty, 15);
  EXPECT_EQ(g.Lookup(2)->rank, 1u);
  EXPECT_EQ(g.size(), 2u);
}

TEST(GhostListTest, ContainsTracksMembership) {
  GhostList g(4);
  EXPECT_FALSE(g.Contains(9));
  g.Push(9, 1);
  EXPECT_TRUE(g.Contains(9));
  g.Remove(9);
  EXPECT_FALSE(g.Contains(9));
}

TEST(GhostListTest, ZeroCapacityRejected) {
  EXPECT_THROW(GhostList(0), std::invalid_argument);
}

TEST(GhostListTest, WrapsManyTimesWithoutDrift) {
  GhostList g(16);
  for (KeyId k = 0; k < 1000; ++k) g.Push(k, 1);
  // Only the last 16 keys survive, ranks 0..15 newest-first.
  for (std::size_t r = 0; r < 16; ++r) {
    EXPECT_EQ(g.Lookup(999 - r)->rank, r);
  }
  EXPECT_EQ(g.Lookup(983), std::nullopt);
  EXPECT_EQ(g.size(), 16u);
}

// Model-based: compare against a reference that mirrors the documented ring
// contract — "remember the most recent `capacity` evictions (by push count),
// minus removals". Each push with sequence s expires the entry pushed at
// sequence s - capacity, if it is still live.
TEST(GhostListTest, AgreesWithDequeModelUnderRandomOps) {
  const std::size_t cap = 32;
  GhostList g(cap);
  struct Entry {
    KeyId key;
    MicroSecs penalty;
    std::uint64_t seq;
  };
  std::deque<Entry> model;  // front == newest
  std::uint64_t next_seq = 0;
  Rng rng(777);

  auto model_remove = [&model](KeyId key) {
    for (auto it = model.begin(); it != model.end(); ++it) {
      if (it->key == key) {
        model.erase(it);
        return true;
      }
    }
    return false;
  };

  for (int op = 0; op < 20000; ++op) {
    const std::uint64_t choice = rng.NextBounded(100);
    const KeyId key = rng.NextBounded(64);  // small key space forces re-push
    if (choice < 60) {
      const auto penalty = static_cast<MicroSecs>(rng.NextBounded(1000));
      g.Push(key, penalty);
      model_remove(key);
      const std::uint64_t seq = next_seq++;
      model.push_front(Entry{key, penalty, seq});
      // The ring slot being reused held sequence seq - cap.
      if (!model.empty() && seq >= cap && model.back().seq == seq - cap) {
        model.pop_back();
      }
    } else if (choice < 75) {
      const bool a = g.Remove(key);
      const bool b = model_remove(key);
      ASSERT_EQ(a, b);
    } else {
      const auto hit = g.Lookup(key);
      std::optional<std::size_t> expect_rank;
      MicroSecs expect_penalty = 0;
      for (std::size_t i = 0; i < model.size(); ++i) {
        if (model[i].key == key) {
          expect_rank = i;
          expect_penalty = model[i].penalty;
          break;
        }
      }
      ASSERT_EQ(hit.has_value(), expect_rank.has_value()) << "op " << op;
      if (hit) {
        ASSERT_EQ(hit->rank, *expect_rank) << "op " << op;
        ASSERT_EQ(hit->penalty, expect_penalty) << "op " << op;
      }
    }
    ASSERT_EQ(g.size(), model.size());
  }
}

}  // namespace
}  // namespace pamakv
