#include "pamakv/util/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace pamakv {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_LE(same, 1);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(3);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RngTest, BoundedOneAlwaysZero) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.NextBounded(1), 0u);
}

TEST(RngTest, BoundedCoversAllResidues) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.NextBounded(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, BoundedIsApproximatelyUniform) {
  Rng rng(13);
  const std::uint64_t bound = 10;
  std::vector<int> counts(bound, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.NextBounded(bound)];
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), n / 10.0, n * 0.01);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(17);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(RngTest, SplitStreamsAreIndependent) {
  Rng parent(21);
  Rng child_a = parent.Split(1);
  Rng child_b = parent.Split(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (child_a.NextU64() == child_b.NextU64()) ++same;
  }
  EXPECT_LE(same, 1);
}

TEST(RngTest, Mix64IsDeterministicAndSpreads) {
  EXPECT_EQ(Mix64(42), Mix64(42));
  std::set<std::uint64_t> outputs;
  for (std::uint64_t i = 0; i < 1000; ++i) outputs.insert(Mix64(i));
  EXPECT_EQ(outputs.size(), 1000u);  // sequential inputs spread out
}

}  // namespace
}  // namespace pamakv
