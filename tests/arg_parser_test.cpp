#include "pamakv/util/arg_parser.hpp"

#include <gtest/gtest.h>

namespace pamakv {
namespace {

ArgParser Parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv = {"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return ArgParser(static_cast<int>(argv.size()), argv.data());
}

TEST(ArgParserTest, EqualsForm) {
  const auto p = Parse({"--requests=500", "--alpha=1.5"});
  EXPECT_EQ(p.GetInt("requests", 0), 500);
  EXPECT_DOUBLE_EQ(p.GetDouble("alpha", 0.0), 1.5);
}

TEST(ArgParserTest, SpaceForm) {
  const auto p = Parse({"--scheme", "pama", "--cache-mb", "64"});
  EXPECT_EQ(p.GetString("scheme", ""), "pama");
  EXPECT_EQ(p.GetInt("cache-mb", 0), 64);
}

TEST(ArgParserTest, BooleanSwitch) {
  const auto p = Parse({"--verbose", "--quiet=false"});
  EXPECT_TRUE(p.GetBool("verbose", false));
  EXPECT_FALSE(p.GetBool("quiet", true));
  EXPECT_TRUE(p.GetBool("missing", true));
}

TEST(ArgParserTest, FallbacksWhenAbsent) {
  const auto p = Parse({});
  EXPECT_EQ(p.GetString("x", "def"), "def");
  EXPECT_EQ(p.GetInt("x", 9), 9);
  EXPECT_DOUBLE_EQ(p.GetDouble("x", 2.5), 2.5);
}

TEST(ArgParserTest, PositionalArguments) {
  const auto p = Parse({"input.pkvt", "--fast", "output.csv"});
  ASSERT_EQ(p.positional().size(), 1u);  // output.csv consumed by --fast
  EXPECT_EQ(p.positional()[0], "input.pkvt");
  EXPECT_EQ(p.GetString("fast", ""), "output.csv");
}

TEST(ArgParserTest, HasDetectsPresence) {
  const auto p = Parse({"--a=1"});
  EXPECT_TRUE(p.Has("a"));
  EXPECT_FALSE(p.Has("b"));
}

TEST(BenchScaleTest, FallsBackWhenUnsetOrInvalid) {
  ::unsetenv("PAMA_BENCH_SCALE");
  EXPECT_DOUBLE_EQ(BenchScaleFromEnv(0.5), 0.5);
  ::setenv("PAMA_BENCH_SCALE", "garbage", 1);
  EXPECT_DOUBLE_EQ(BenchScaleFromEnv(0.5), 0.5);
  ::setenv("PAMA_BENCH_SCALE", "0.001", 1);  // below the floor
  EXPECT_DOUBLE_EQ(BenchScaleFromEnv(0.5), 0.5);
  ::setenv("PAMA_BENCH_SCALE", "2.0", 1);
  EXPECT_DOUBLE_EQ(BenchScaleFromEnv(0.5), 2.0);
  ::unsetenv("PAMA_BENCH_SCALE");
}

}  // namespace
}  // namespace pamakv
