#include "pamakv/util/arg_parser.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <stdexcept>

namespace pamakv {
namespace {

ArgParser Parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv = {"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return ArgParser(static_cast<int>(argv.size()), argv.data());
}

TEST(ArgParserTest, EqualsForm) {
  const auto p = Parse({"--requests=500", "--alpha=1.5"});
  EXPECT_EQ(p.GetInt("requests", 0), 500);
  EXPECT_DOUBLE_EQ(p.GetDouble("alpha", 0.0), 1.5);
}

TEST(ArgParserTest, SpaceForm) {
  const auto p = Parse({"--scheme", "pama", "--cache-mb", "64"});
  EXPECT_EQ(p.GetString("scheme", ""), "pama");
  EXPECT_EQ(p.GetInt("cache-mb", 0), 64);
}

TEST(ArgParserTest, BooleanSwitch) {
  const auto p = Parse({"--verbose", "--quiet=false"});
  EXPECT_TRUE(p.GetBool("verbose", false));
  EXPECT_FALSE(p.GetBool("quiet", true));
  EXPECT_TRUE(p.GetBool("missing", true));
}

TEST(ArgParserTest, FallbacksWhenAbsent) {
  const auto p = Parse({});
  EXPECT_EQ(p.GetString("x", "def"), "def");
  EXPECT_EQ(p.GetInt("x", 9), 9);
  EXPECT_DOUBLE_EQ(p.GetDouble("x", 2.5), 2.5);
}

TEST(ArgParserTest, PositionalArguments) {
  const auto p = Parse({"input.pkvt", "--fast", "output.csv"});
  ASSERT_EQ(p.positional().size(), 1u);  // output.csv consumed by --fast
  EXPECT_EQ(p.positional()[0], "input.pkvt");
  EXPECT_EQ(p.GetString("fast", ""), "output.csv");
}

TEST(ArgParserTest, HasDetectsPresence) {
  const auto p = Parse({"--a=1"});
  EXPECT_TRUE(p.Has("a"));
  EXPECT_FALSE(p.Has("b"));
}

TEST(ArgParserTest, MalformedIntThrowsNamingTheFlag) {
  const auto p = Parse({"--port=80x0", "--empty=", "--word=abc",
                        "--trail=12 ", "--plus=+5"});
  EXPECT_EQ(p.GetInt("absent", 7), 7);  // absent flag still falls back
  for (const char* flag : {"port", "empty", "word", "trail"}) {
    try {
      (void)p.GetInt(flag, 0);
      FAIL() << "--" << flag << " accepted";
    } catch (const std::runtime_error& e) {
      // The message must name the offending flag so the user can fix it.
      EXPECT_NE(std::string(e.what()).find(flag), std::string::npos)
          << e.what();
    }
  }
  // A leading '+' is accepted (common shell habit); value still strict.
  EXPECT_EQ(p.GetInt("plus", 0), 5);
}

TEST(ArgParserTest, NegativeAndBoundaryIntsParse) {
  const auto p = Parse({"--a=-42", "--b=0", "--c=9223372036854775807"});
  EXPECT_EQ(p.GetInt("a", 0), -42);
  EXPECT_EQ(p.GetInt("b", 1), 0);
  EXPECT_EQ(p.GetInt("c", 0), INT64_MAX);
}

TEST(ArgParserTest, MalformedDoubleThrowsNamingTheFlag) {
  const auto p = Parse({"--alpha=1.5x", "--beta=", "--gamma=nope"});
  for (const char* flag : {"alpha", "beta", "gamma"}) {
    try {
      (void)p.GetDouble(flag, 0.0);
      FAIL() << "--" << flag << " accepted";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find(flag), std::string::npos)
          << e.what();
    }
  }
  const auto ok = Parse({"--x=2.5e3", "--y=-0.25"});
  EXPECT_DOUBLE_EQ(ok.GetDouble("x", 0.0), 2500.0);
  EXPECT_DOUBLE_EQ(ok.GetDouble("y", 0.0), -0.25);
}

TEST(ArgParserTest, HelpRequestedAndPrintHelp) {
  auto p = Parse({"--help"});
  EXPECT_TRUE(p.HelpRequested());
  EXPECT_FALSE(Parse({"--port=1"}).HelpRequested());

  p.Describe("port", "listen port").Describe("shards", "engine count");
  std::ostringstream out;
  p.PrintHelp(out, "pamakv-server", "memcached-protocol cache server");
  const std::string text = out.str();
  EXPECT_NE(text.find("pamakv-server"), std::string::npos);
  EXPECT_NE(text.find("--port"), std::string::npos);
  EXPECT_NE(text.find("listen port"), std::string::npos);
  EXPECT_NE(text.find("--shards"), std::string::npos);
  EXPECT_NE(text.find("--help"), std::string::npos);  // auto-appended
}

TEST(BenchScaleTest, FallsBackWhenUnsetOrInvalid) {
  ::unsetenv("PAMA_BENCH_SCALE");
  EXPECT_DOUBLE_EQ(BenchScaleFromEnv(0.5), 0.5);
  ::setenv("PAMA_BENCH_SCALE", "garbage", 1);
  EXPECT_DOUBLE_EQ(BenchScaleFromEnv(0.5), 0.5);
  ::setenv("PAMA_BENCH_SCALE", "0.001", 1);  // below the floor
  EXPECT_DOUBLE_EQ(BenchScaleFromEnv(0.5), 0.5);
  ::setenv("PAMA_BENCH_SCALE", "2.0", 1);
  EXPECT_DOUBLE_EQ(BenchScaleFromEnv(0.5), 2.0);
  ::unsetenv("PAMA_BENCH_SCALE");
}

}  // namespace
}  // namespace pamakv
