#include "pamakv/bloom/bloom_filter.hpp"

#include <gtest/gtest.h>

#include "pamakv/bloom/segment_filters.hpp"
#include "pamakv/util/rng.hpp"

namespace pamakv {
namespace {

TEST(BloomFilterTest, NoFalseNegatives) {
  BloomFilter f(1000, 0.01);
  for (KeyId k = 0; k < 1000; ++k) f.Add(k);
  for (KeyId k = 0; k < 1000; ++k) {
    EXPECT_TRUE(f.MayContain(k)) << "false negative for key " << k;
  }
}

TEST(BloomFilterTest, FalsePositiveRateNearTarget) {
  BloomFilter f(10000, 0.01);
  for (KeyId k = 0; k < 10000; ++k) f.Add(k);
  int false_positives = 0;
  const int probes = 100000;
  for (int i = 0; i < probes; ++i) {
    if (f.MayContain(1'000'000 + static_cast<KeyId>(i))) ++false_positives;
  }
  const double fpr = static_cast<double>(false_positives) / probes;
  EXPECT_LT(fpr, 0.03);  // target 0.01, generous bound
}

TEST(BloomFilterTest, EmptyFilterContainsNothing) {
  BloomFilter f(100, 0.01);
  int hits = 0;
  for (KeyId k = 0; k < 1000; ++k) {
    if (f.MayContain(k)) ++hits;
  }
  EXPECT_EQ(hits, 0);
}

TEST(BloomFilterTest, ClearForgetsEverything) {
  BloomFilter f(100, 0.01);
  for (KeyId k = 0; k < 100; ++k) f.Add(k);
  f.Clear();
  EXPECT_EQ(f.added_count(), 0u);
  int hits = 0;
  for (KeyId k = 0; k < 100; ++k) {
    if (f.MayContain(k)) ++hits;
  }
  EXPECT_EQ(hits, 0);
}

TEST(BloomFilterTest, SizingGrowsWithCapacityAndPrecision) {
  const BloomFilter small(100, 0.01);
  const BloomFilter large(10000, 0.01);
  const BloomFilter precise(100, 0.0001);
  EXPECT_GT(large.bit_count(), small.bit_count());
  EXPECT_GT(precise.bit_count(), small.bit_count());
  EXPECT_GE(small.hash_count(), 1u);
  EXPECT_LE(small.hash_count(), 16u);
}

TEST(BloomFilterTest, TinyCapacityStillWorks) {
  BloomFilter f(0, 0.01);  // clamped internally
  f.Add(42);
  EXPECT_TRUE(f.MayContain(42));
}

TEST(BloomFilterTest, FootprintReported) {
  const BloomFilter f(1000, 0.01);
  EXPECT_EQ(f.footprint_bytes(), f.bit_count() / 8);
  EXPECT_GT(f.footprint_bytes(), 0u);
}

// ---- SegmentFilterSet (paper's per-segment filters + removal filter) ----

TEST(SegmentFilterSetTest, FindsSegmentMembership) {
  SegmentFilterSet set(3, 100);
  set.BeginRebuild();
  set.AddToSegment(0, 11);
  set.AddToSegment(1, 22);
  set.AddToSegment(2, 33);
  EXPECT_EQ(set.FindSegment(11), std::optional<std::size_t>(0));
  EXPECT_EQ(set.FindSegment(22), std::optional<std::size_t>(1));
  EXPECT_EQ(set.FindSegment(33), std::optional<std::size_t>(2));
  EXPECT_EQ(set.FindSegment(44), std::nullopt);
}

TEST(SegmentFilterSetTest, RemovalFilterMasksMembers) {
  SegmentFilterSet set(2, 100);
  set.BeginRebuild();
  set.AddToSegment(0, 7);
  EXPECT_TRUE(set.FindSegment(7).has_value());
  set.MarkRemoved(7);
  EXPECT_EQ(set.FindSegment(7), std::nullopt);
}

TEST(SegmentFilterSetTest, RebuildClearsRemovalFilter) {
  SegmentFilterSet set(2, 100);
  set.BeginRebuild();
  set.AddToSegment(0, 7);
  set.MarkRemoved(7);
  set.BeginRebuild();
  set.AddToSegment(1, 7);  // the item re-entered the region lower down
  EXPECT_EQ(set.FindSegment(7), std::optional<std::size_t>(1));
}

TEST(SegmentFilterSetTest, LowerSegmentWinsOnDoubleMembership) {
  // If two filters both claim a key (false positive in one), the bottom-up
  // probe attributes the hit to the lower (higher-weight) segment.
  SegmentFilterSet set(2, 100);
  set.BeginRebuild();
  set.AddToSegment(0, 5);
  set.AddToSegment(1, 5);
  EXPECT_EQ(set.FindSegment(5), std::optional<std::size_t>(0));
}

TEST(SegmentFilterSetTest, OutOfRangeSegmentIgnored) {
  SegmentFilterSet set(2, 10);
  set.BeginRebuild();
  set.AddToSegment(99, 1);  // silently dropped
  EXPECT_EQ(set.FindSegment(1), std::nullopt);
}

TEST(SegmentFilterSetTest, FootprintAggregates) {
  const SegmentFilterSet set(3, 1000);
  EXPECT_GT(set.footprint_bytes(), 0u);
  EXPECT_EQ(set.segment_count(), 3u);
}

}  // namespace
}  // namespace pamakv
