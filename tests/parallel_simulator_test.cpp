#include "pamakv/sim/parallel_simulator.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <vector>

#include "pamakv/cache/sharded_cache.hpp"
#include "pamakv/policy/policy.hpp"
#include "pamakv/sim/experiment.hpp"
#include "pamakv/trace/generators.hpp"

namespace pamakv {
namespace {

constexpr Bytes kTotalCapacity = 32ULL * 1024 * 1024;

ParallelSimulator::EngineFactory PamaFactory() {
  return [](Bytes capacity) {
    return MakeEngine("pama", capacity, SizeClassConfig{});
  };
}

VectorTrace MakeEtcTrace(std::uint64_t requests) {
  auto cfg = EtcWorkload(requests);
  SyntheticTrace trace(cfg);
  return VectorTrace::Materialize(trace);
}

/// The serial reference: shard i's sub-trace replayed through the ordinary
/// Simulator on an engine built exactly like the parallel worker's.
SimResult SerialShardReplay(const VectorTrace& full, std::size_t shard,
                            std::size_t shards, const SimConfig& sim_config) {
  std::vector<Request> sub;
  for (const Request& r : full.requests()) {
    if (ShardedCache::ShardIndexFor(r.key, shards) == shard) sub.push_back(r);
  }
  VectorTrace trace(std::move(sub));
  auto engine = PamaFactory()(kTotalCapacity / shards);
  Simulator sim(sim_config);
  return sim.Run(*engine, trace);
}

void ExpectSameResult(const SimResult& a, const SimResult& b) {
  EXPECT_EQ(a.requests_replayed, b.requests_replayed);
  EXPECT_EQ(a.final_stats.gets, b.final_stats.gets);
  EXPECT_EQ(a.final_stats.get_hits, b.final_stats.get_hits);
  EXPECT_EQ(a.final_stats.sets, b.final_stats.sets);
  EXPECT_EQ(a.final_stats.set_failures, b.final_stats.set_failures);
  EXPECT_EQ(a.final_stats.dels, b.final_stats.dels);
  EXPECT_EQ(a.final_stats.evictions, b.final_stats.evictions);
  EXPECT_EQ(a.final_stats.slab_migrations, b.final_stats.slab_migrations);
  EXPECT_EQ(a.final_stats.ghost_hits, b.final_stats.ghost_hits);
  EXPECT_EQ(a.final_stats.miss_penalty_total_us,
            b.final_stats.miss_penalty_total_us);
  ASSERT_EQ(a.windows.size(), b.windows.size());
  for (std::size_t w = 0; w < a.windows.size(); ++w) {
    const WindowSample& wa = a.windows[w];
    const WindowSample& wb = b.windows[w];
    EXPECT_EQ(wa.gets_total, wb.gets_total) << "window " << w;
    EXPECT_EQ(wa.hit_ratio, wb.hit_ratio) << "window " << w;
    EXPECT_EQ(wa.avg_service_time_us, wb.avg_service_time_us) << "window " << w;
    EXPECT_EQ(wa.evictions, wb.evictions) << "window " << w;
    EXPECT_EQ(wa.slab_migrations, wb.slab_migrations) << "window " << w;
    EXPECT_EQ(wa.class_slabs, wb.class_slabs) << "window " << w;
  }
}

TEST(ParallelSimulatorTest, MatchesSerialPerShardReplay) {
  // The core determinism guarantee: per-shard results of the parallel run
  // are byte-identical to serially replaying each shard's sub-trace,
  // regardless of thread interleaving. Exercised at 1, 2 and 8 shards.
  const VectorTrace full = MakeEtcTrace(200'000);
  for (const std::size_t shards : {std::size_t{1}, std::size_t{2},
                                   std::size_t{8}}) {
    ParallelSimConfig cfg;
    cfg.shards = shards;
    cfg.sim.window_gets = 5'000;
    ParallelSimulator psim(cfg);
    VectorTrace replay = full;  // fresh cursor
    replay.Reset();
    const ParallelSimResult result =
        psim.Run(PamaFactory(), kTotalCapacity, replay, "etc");

    ASSERT_EQ(result.per_shard.size(), shards);
    for (std::size_t s = 0; s < shards; ++s) {
      SCOPED_TRACE("shards=" + std::to_string(shards) + " shard=" +
                   std::to_string(s));
      const SimResult serial =
          SerialShardReplay(full, s, shards, cfg.sim);
      ExpectSameResult(result.per_shard[s], serial);
    }
  }
}

TEST(ParallelSimulatorTest, AggregateSumsShards) {
  const VectorTrace full = MakeEtcTrace(120'000);
  ParallelSimConfig cfg;
  cfg.shards = 4;
  cfg.sim.window_gets = 10'000;
  ParallelSimulator psim(cfg);
  VectorTrace replay = full;
  const ParallelSimResult result =
      psim.Run(PamaFactory(), kTotalCapacity, replay, "etc");

  CacheStats expected;
  std::uint64_t replayed = 0;
  Bytes cache_bytes = 0;
  for (const SimResult& s : result.per_shard) {
    expected += s.final_stats;
    replayed += s.requests_replayed;
    cache_bytes += s.cache_bytes;
  }
  EXPECT_EQ(result.aggregate.requests_replayed, replayed);
  EXPECT_EQ(result.aggregate.requests_replayed, full.TotalRequests());
  EXPECT_EQ(result.aggregate.cache_bytes, cache_bytes);
  EXPECT_EQ(result.aggregate.final_stats.gets, expected.gets);
  EXPECT_EQ(result.aggregate.final_stats.get_hits, expected.get_hits);
  EXPECT_EQ(result.aggregate.final_stats.evictions, expected.evictions);
  EXPECT_EQ(result.aggregate.final_stats.miss_penalty_total_us,
            expected.miss_penalty_total_us);
  EXPECT_DOUBLE_EQ(result.aggregate.overall_hit_ratio, expected.HitRatio());
  EXPECT_EQ(result.aggregate.workload, "etc");
  EXPECT_EQ(result.aggregate.scheme, result.per_shard.front().scheme);
}

TEST(ParallelSimulatorTest, EveryRequestLandsOnItsOwningShard) {
  // Routing must agree with ShardedCache: each worker only ever sees keys
  // that hash to it, so per-shard GET counts reconstruct the route table.
  const VectorTrace full = MakeEtcTrace(50'000);
  ParallelSimConfig cfg;
  cfg.shards = 8;
  ParallelSimulator psim(cfg);
  VectorTrace replay = full;
  const ParallelSimResult result =
      psim.Run(PamaFactory(), kTotalCapacity, replay, "etc");

  std::vector<std::uint64_t> expected_requests(cfg.shards, 0);
  for (const Request& r : full.requests()) {
    ++expected_requests[ShardedCache::ShardIndexFor(r.key, cfg.shards)];
  }
  for (std::size_t s = 0; s < cfg.shards; ++s) {
    EXPECT_EQ(result.per_shard[s].requests_replayed, expected_requests[s])
        << "shard " << s;
  }
}

TEST(MergeWindowsTest, WeightsRatiosByWindowGets) {
  // Shard A: 100 GETs in window 0 at hit 0.5; shard B: 300 GETs at 0.9.
  SimResult a;
  a.windows.push_back(
      WindowSample{0, 100, 0.5, 2000.0, 7, 1, {1, 2}, {}, {}});
  SimResult b;
  b.windows.push_back(
      WindowSample{0, 300, 0.9, 1000.0, 3, 0, {4}, {}, {}});
  const auto merged = MergeWindows({a, b});
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].gets_total, 400u);
  EXPECT_DOUBLE_EQ(merged[0].hit_ratio, (0.5 * 100 + 0.9 * 300) / 400.0);
  EXPECT_DOUBLE_EQ(merged[0].avg_service_time_us,
                   (2000.0 * 100 + 1000.0 * 300) / 400.0);
  EXPECT_EQ(merged[0].evictions, 10u);
  EXPECT_EQ(merged[0].slab_migrations, 1u);
  EXPECT_EQ(merged[0].class_slabs, (std::vector<std::size_t>{5, 2}));
}

TEST(MergeWindowsTest, ShortShardContributesFinalTotalToLaterWindows) {
  SimResult a;  // two windows: 100 GETs each
  a.windows.push_back(WindowSample{0, 100, 0.5, 0.0, 0, 0, {}, {}, {}});
  a.windows.push_back(WindowSample{1, 200, 0.7, 0.0, 0, 0, {}, {}, {}});
  SimResult b;  // only one window
  b.windows.push_back(WindowSample{0, 50, 1.0, 0.0, 0, 0, {}, {}, {}});
  const auto merged = MergeWindows({a, b});
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0].gets_total, 150u);
  // Window 1: only shard A contributes GETs (100 of them at 0.7), but B's
  // cumulative total still counts.
  EXPECT_EQ(merged[1].gets_total, 250u);
  EXPECT_DOUBLE_EQ(merged[1].hit_ratio, 0.7);
}

TEST(MergeWindowsTest, EmptyInputsYieldEmptySeries) {
  EXPECT_TRUE(MergeWindows({}).empty());
  SimResult no_windows;
  EXPECT_TRUE(MergeWindows({no_windows}).empty());
}

// A policy that throws after a fixed number of requests, to prove worker
// exceptions surface at Run() instead of crashing a thread or deadlocking
// the producer against a full ring.
class ThrowingPolicy final : public AllocationPolicy {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "throwing";
  }
  void OnTick(AccessClock /*now*/) override {
    if (++calls_ > 500) throw std::runtime_error("injected failure");
  }
  [[nodiscard]] bool MakeRoom(ClassId, SubclassId) override { return false; }

 private:
  std::uint64_t calls_ = 0;
};

TEST(ParallelSimulatorTest, WorkerExceptionPropagatesToCaller) {
  ParallelSimConfig cfg;
  cfg.shards = 2;
  cfg.ring_batches = 2;  // small ring: producer WILL fill it after the throw
  ParallelSimulator psim(cfg);
  VectorTrace trace = MakeEtcTrace(100'000);
  const auto factory = [](Bytes capacity) {
    EngineConfig config;
    config.capacity_bytes = capacity;
    return std::make_unique<CacheEngine>(config,
                                         std::make_unique<ThrowingPolicy>());
  };
  EXPECT_THROW(psim.Run(factory, kTotalCapacity, trace, "etc"),
               std::runtime_error);
}

TEST(ParallelSimulatorTest, InvalidConfigThrows) {
  ParallelSimConfig zero_shards;
  zero_shards.shards = 0;
  EXPECT_THROW(ParallelSimulator{zero_shards}, std::invalid_argument);

  ParallelSimConfig ok;
  ok.shards = 2;
  ParallelSimulator psim(ok);
  VectorTrace trace = MakeEtcTrace(1'000);
  EXPECT_THROW(psim.Run([](Bytes) { return std::unique_ptr<CacheEngine>(); },
                        kTotalCapacity, trace, "etc"),
               std::invalid_argument);
}

}  // namespace
}  // namespace pamakv
