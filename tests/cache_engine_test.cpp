#include "pamakv/cache/cache_engine.hpp"

#include <gtest/gtest.h>

#include <new>
#include <vector>

#include "pamakv/cache/penalty_bands.hpp"
#include "pamakv/policy/no_realloc.hpp"
#include "pamakv/util/failpoint.hpp"

namespace pamakv {
namespace {

// Tiny geometry: 1 KiB slabs, classes 64/128/256/512 B
// -> slots per slab 16/8/4/2.
EngineConfig TinyConfig(Bytes capacity = 4096, bool with_bands = false) {
  EngineConfig cfg;
  cfg.size_classes.slab_bytes = 1024;
  cfg.size_classes.min_slot_bytes = 64;
  cfg.size_classes.num_classes = 4;
  cfg.capacity_bytes = capacity;
  if (with_bands) {
    cfg.penalty_band_bounds = PenaltyBandTable::PaperDefault().bounds();
  }
  return cfg;
}

std::unique_ptr<CacheEngine> MakeTinyEngine(Bytes capacity = 4096,
                                            bool with_bands = false) {
  return std::make_unique<CacheEngine>(TinyConfig(capacity, with_bands),
                                       std::make_unique<NoReallocPolicy>());
}

TEST(CacheEngineTest, MissThenSetThenHit) {
  auto engine = MakeTinyEngine();
  const auto miss = engine->Get(1, 50, 1000);
  EXPECT_FALSE(miss.hit);
  EXPECT_EQ(miss.service_time_us, 1000);

  const auto set = engine->Set(1, 50, 1000);
  EXPECT_TRUE(set.stored);
  EXPECT_FALSE(set.updated);

  const auto hit = engine->Get(1, 50, 1000);
  EXPECT_TRUE(hit.hit);
  EXPECT_EQ(hit.service_time_us, 0);  // default hit cost
  EXPECT_EQ(engine->stats().gets, 2u);
  EXPECT_EQ(engine->stats().get_hits, 1u);
  EXPECT_EQ(engine->stats().get_misses, 1u);
  EXPECT_EQ(engine->stats().miss_penalty_total_us, 1000u);
}

TEST(CacheEngineTest, HitTimeChargedWhenConfigured) {
  auto cfg = TinyConfig();
  cfg.hit_time_us = 50;
  CacheEngine engine(cfg, std::make_unique<NoReallocPolicy>());
  engine.Set(1, 10, 100);
  const auto hit = engine.Get(1, 10, 100);
  EXPECT_TRUE(hit.hit);
  EXPECT_EQ(hit.service_time_us, 50);
}

TEST(CacheEngineTest, SizeRoutesToClass) {
  auto engine = MakeTinyEngine();
  engine->Set(1, 64, 100);    // class 0
  engine->Set(2, 65, 100);    // class 1
  engine->Set(3, 256, 100);   // class 2
  engine->Set(4, 257, 100);   // class 3
  EXPECT_EQ(engine->SubclassItemCount(0, 0), 1u);
  EXPECT_EQ(engine->SubclassItemCount(1, 0), 1u);
  EXPECT_EQ(engine->SubclassItemCount(2, 0), 1u);
  EXPECT_EQ(engine->SubclassItemCount(3, 0), 1u);
}

TEST(CacheEngineTest, PenaltyRoutesToSubclass) {
  auto engine = MakeTinyEngine(4096, /*with_bands=*/true);
  engine->Set(1, 10, 500);          // band 0: <= 1 ms
  engine->Set(2, 10, 50'000);       // band 2: (10, 100] ms
  engine->Set(3, 10, 3'000'000);    // band 4: (1, 5] s
  EXPECT_EQ(engine->SubclassItemCount(0, 0), 1u);
  EXPECT_EQ(engine->SubclassItemCount(0, 2), 1u);
  EXPECT_EQ(engine->SubclassItemCount(0, 4), 1u);
  EXPECT_EQ(engine->num_subclasses(), 5u);
}

TEST(CacheEngineTest, OversizedStoreFails) {
  auto engine = MakeTinyEngine();
  const auto result = engine->Set(1, 513, 100);  // > largest slot (512)
  EXPECT_FALSE(result.stored);
  EXPECT_EQ(engine->stats().set_failures, 1u);
  EXPECT_FALSE(engine->Contains(1));
}

TEST(CacheEngineTest, UpdateSameClassKeepsSingleCopy) {
  auto engine = MakeTinyEngine();
  engine->Set(1, 50, 100);
  const auto update = engine->Set(1, 60, 200);
  EXPECT_TRUE(update.stored);
  EXPECT_TRUE(update.updated);
  EXPECT_EQ(engine->item_count(), 1u);
  EXPECT_EQ(engine->stats().set_updates, 1u);
  EXPECT_EQ(engine->pool().ClassSlotsInUse(0), 1u);
}

TEST(CacheEngineTest, UpdateAcrossClassesMovesItem) {
  auto engine = MakeTinyEngine();
  engine->Set(1, 50, 100);   // class 0
  engine->Set(1, 200, 100);  // class 2 (129..256 B)
  EXPECT_EQ(engine->item_count(), 1u);
  EXPECT_EQ(engine->pool().ClassSlotsInUse(0), 0u);
  EXPECT_EQ(engine->pool().ClassSlotsInUse(2), 1u);
  EXPECT_EQ(engine->SubclassItemCount(0, 0), 0u);
  EXPECT_EQ(engine->SubclassItemCount(2, 0), 1u);
}

TEST(CacheEngineTest, DelRemovesWithoutGhost) {
  auto engine = MakeTinyEngine();
  engine->Set(1, 50, 100);
  EXPECT_TRUE(engine->Del(1));
  EXPECT_FALSE(engine->Contains(1));
  EXPECT_FALSE(engine->Del(1));
  EXPECT_EQ(engine->stats().dels, 2u);
  EXPECT_FALSE(engine->GhostOf(0, 0).Contains(1));
  EXPECT_EQ(engine->pool().ClassSlotsInUse(0), 0u);
}

TEST(CacheEngineTest, LruEvictionOrderWithinClass) {
  // Capacity: exactly one slab; class 3 fits 2 items of 512 B.
  auto engine = MakeTinyEngine(1024);
  engine->Set(1, 512, 100);
  engine->Set(2, 512, 100);
  engine->Get(1, 512, 100);  // 1 becomes MRU; LRU is 2
  engine->Set(3, 512, 100);  // evicts 2
  EXPECT_TRUE(engine->Contains(1));
  EXPECT_FALSE(engine->Contains(2));
  EXPECT_TRUE(engine->Contains(3));
  EXPECT_EQ(engine->stats().evictions, 1u);
}

TEST(CacheEngineTest, EvictionRecordsGhost) {
  auto engine = MakeTinyEngine(1024);
  engine->Set(1, 512, 777);
  engine->Set(2, 512, 100);
  engine->Set(3, 512, 100);  // evicts key 1 (LRU)
  const auto ghost = engine->GhostOf(3, 0).Lookup(1);
  ASSERT_TRUE(ghost.has_value());
  EXPECT_EQ(ghost->penalty, 777);
  EXPECT_EQ(ghost->rank, 0u);
}

TEST(CacheEngineTest, ReinsertionClearsGhostEntry) {
  auto engine = MakeTinyEngine(1024);
  engine->Set(1, 512, 100);
  engine->Set(2, 512, 100);
  engine->Set(3, 512, 100);  // evicts 1 -> ghost
  ASSERT_TRUE(engine->GhostOf(3, 0).Contains(1));
  engine->Set(1, 512, 100);  // re-cached
  EXPECT_FALSE(engine->GhostOf(3, 0).Contains(1));
}

TEST(CacheEngineTest, GhostHitCounted) {
  auto engine = MakeTinyEngine(1024);
  engine->Set(1, 512, 100);
  engine->Set(2, 512, 100);
  engine->Set(3, 512, 100);  // evicts 1
  engine->Get(1, 512, 100);  // miss, but ghost remembers it
  EXPECT_EQ(engine->stats().ghost_hits, 1u);
}

TEST(CacheEngineTest, StarvedClassFailsUnderNoRealloc) {
  // One slab total; class 3 takes it; class 0 then cannot store.
  auto engine = MakeTinyEngine(1024);
  engine->Set(1, 512, 100);
  const auto result = engine->Set(2, 50, 100);
  EXPECT_FALSE(result.stored);
  EXPECT_EQ(engine->stats().set_failures, 1u);
}

TEST(CacheEngineTest, ClockCountsEveryRequest) {
  auto engine = MakeTinyEngine();
  engine->Get(1, 10, 100);
  engine->Set(1, 10, 100);
  engine->Del(1);
  EXPECT_EQ(engine->clock(), 3u);
}

TEST(CacheEngineTest, OldestAccessTracksClassLru) {
  auto engine = MakeTinyEngine();
  EXPECT_EQ(engine->OldestAccess(0), std::nullopt);
  engine->Set(1, 50, 100);  // clock 1
  engine->Set(2, 50, 100);  // clock 2
  EXPECT_EQ(engine->OldestAccess(0), std::optional<AccessClock>(1));
  engine->Get(1, 50, 100);  // key 1 touched at clock 3
  EXPECT_EQ(engine->OldestAccess(0), std::optional<AccessClock>(2));
}

TEST(CacheEngineTest, MigrateSlabMovesCapacity) {
  auto engine = MakeTinyEngine(1024);
  engine->Set(1, 512, 100);
  engine->Set(2, 512, 100);
  ASSERT_EQ(engine->pool().SlabCount(3, 0), 1u);
  EXPECT_TRUE(engine->MigrateSlab(3, 0, 0, 0));
  EXPECT_EQ(engine->pool().SlabCount(3, 0), 0u);
  EXPECT_EQ(engine->pool().SlabCount(0, 0), 1u);
  EXPECT_EQ(engine->item_count(), 0u);  // both items evicted
  EXPECT_EQ(engine->stats().slab_migrations, 1u);
  // The evicted keys are remembered in class 3's ghost list.
  EXPECT_TRUE(engine->GhostOf(3, 0).Contains(1));
  EXPECT_TRUE(engine->GhostOf(3, 0).Contains(2));
}

TEST(CacheEngineTest, MigrateSlabFailsWithoutSupply) {
  auto engine = MakeTinyEngine(1024);
  EXPECT_FALSE(engine->MigrateSlab(3, 0, 0, 0));  // class 3 has no slab
}

TEST(CacheEngineTest, EvictClassLruPicksOldestAcrossSubclasses) {
  auto engine = MakeTinyEngine(4096, /*with_bands=*/true);
  engine->Set(1, 50, 500);       // band 0, clock 1
  engine->Set(2, 50, 50'000);    // band 2, clock 2
  engine->Get(1, 50, 500);       // key 1 now newer
  ASSERT_TRUE(engine->EvictClassLru(0));
  EXPECT_TRUE(engine->Contains(1));
  EXPECT_FALSE(engine->Contains(2));
}

#if PAMAKV_FAILPOINTS

// Byte-for-byte observable state of an engine: every counter, gauge,
// per-(class, subclass) slab/slot tally, stack depth, and ghost size. Used
// to prove a mid-store std::bad_alloc rolls everything back exactly.
struct EngineSnapshot {
  CacheStats stats;
  AccessClock clock;
  std::size_t item_count;
  std::vector<std::size_t> slab_counts;
  std::vector<std::size_t> slots_in_use;
  std::vector<std::size_t> stack_sizes;
  std::vector<std::size_t> ghost_sizes;
  std::vector<std::uint64_t> ghost_hit_counts;

  static EngineSnapshot Of(const CacheEngine& e) {
    EngineSnapshot s;
    s.stats = e.stats();
    s.clock = e.clock();
    s.item_count = e.item_count();
    const auto classes = e.classes().num_classes();
    for (ClassId c = 0; c < classes; ++c) {
      for (SubclassId sub = 0; sub < e.num_subclasses(); ++sub) {
        s.slab_counts.push_back(e.pool().SlabCount(c, sub));
        s.slots_in_use.push_back(e.pool().SlotsInUse(c, sub));
        s.stack_sizes.push_back(e.SubclassItemCount(c, sub));
        s.ghost_sizes.push_back(e.GhostOf(c, sub).size());
        s.ghost_hit_counts.push_back(e.GhostHitCount(c, sub));
      }
    }
    return s;
  }

  void ExpectEq(const EngineSnapshot& other) const {
    EXPECT_EQ(stats.sets, other.stats.sets);
    EXPECT_EQ(stats.set_updates, other.stats.set_updates);
    EXPECT_EQ(stats.set_failures, other.stats.set_failures);
    EXPECT_EQ(stats.evictions, other.stats.evictions);
    EXPECT_EQ(stats.ghost_hits, other.stats.ghost_hits);
    EXPECT_EQ(stats.hit_penalty_saved_us, other.stats.hit_penalty_saved_us);
    EXPECT_EQ(stats.bytes_stored, other.stats.bytes_stored);
    EXPECT_EQ(clock, other.clock);
    EXPECT_EQ(item_count, other.item_count);
    EXPECT_EQ(slab_counts, other.slab_counts);
    EXPECT_EQ(slots_in_use, other.slots_in_use);
    EXPECT_EQ(stack_sizes, other.stack_sizes);
    EXPECT_EQ(ghost_sizes, other.ghost_sizes);
    EXPECT_EQ(ghost_hit_counts, other.ghost_hit_counts);
  }
};

TEST(CacheEngineTest, MidStoreOomLeavesEngineUntouched) {
  auto engine = MakeTinyEngine(4096, /*with_bands=*/true);
  for (KeyId k = 0; k < 8; ++k) {
    ASSERT_TRUE(engine->Set(k, 64, 100 + k * 1000).stored);
  }
  const auto before = EngineSnapshot::Of(*engine);

  // Every insert of a brand-new key allocates an item table entry (nothing
  // has been deleted, so the free list is empty) and therefore crosses the
  // engine.item_alloc seam.
  ASSERT_TRUE(util::FailPoints::Arm("engine.item_alloc", "oom@once"));
  EXPECT_THROW(engine->Set(99, 64, 100), std::bad_alloc);
  util::FailPoints::DisableAll();

  // The failed Set must be invisible: not even the request clock or the
  // sets counter moved, because the allocation seam sits before any state
  // change (allocate-then-commit).
  EngineSnapshot::Of(*engine).ExpectEq(before);
  EXPECT_FALSE(engine->Contains(99));

  // And the engine is not poisoned: the same Set succeeds afterwards.
  EXPECT_TRUE(engine->Set(99, 64, 100).stored);
  EXPECT_TRUE(engine->Contains(99));
}

TEST(CacheEngineTest, OomDuringOverwriteAlsoRollsBack) {
  auto engine = MakeTinyEngine();
  ASSERT_TRUE(engine->Set(1, 50, 100).stored);
  const auto before = EngineSnapshot::Of(*engine);

  // Overwriting key 1 in place reuses its item, but a cross-class
  // overwrite of a *new* key still needs a fresh item entry. Arm the seam
  // and try a new key: rollback must hold with items already resident.
  ASSERT_TRUE(util::FailPoints::Arm("engine.item_alloc", "oom@once"));
  EXPECT_THROW(engine->Set(2, 200, 100), std::bad_alloc);
  util::FailPoints::DisableAll();

  EngineSnapshot::Of(*engine).ExpectEq(before);
  EXPECT_TRUE(engine->Contains(1));
  EXPECT_FALSE(engine->Contains(2));
  EXPECT_TRUE(engine->Set(2, 200, 100).stored);
}

#endif  // PAMAKV_FAILPOINTS

TEST(CacheEngineTest, SlotsMatchItemCounts) {
  auto engine = MakeTinyEngine();
  for (KeyId k = 0; k < 20; ++k) engine->Set(k, 64, 100);
  std::size_t stack_total = 0;
  for (SubclassId s = 0; s < engine->num_subclasses(); ++s) {
    stack_total += engine->SubclassItemCount(0, s);
  }
  EXPECT_EQ(engine->pool().ClassSlotsInUse(0), stack_total);
  EXPECT_EQ(engine->item_count(), stack_total);
}

}  // namespace
}  // namespace pamakv
