// util::Clock seam: FakeClock advance/wake-hook semantics and the real
// SteadyClock's monotonicity.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "pamakv/util/clock.hpp"

namespace pamakv::util {
namespace {

using namespace std::chrono_literals;

TEST(SteadyClockTest, MonotonicNonDecreasing) {
  SteadyClock& clock = SteadyClock::Instance();
  std::int64_t prev = clock.NowNanos();
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t now = clock.NowNanos();
    ASSERT_GE(now, prev);
    prev = now;
  }
}

TEST(FakeClockTest, AdvanceIsExact) {
  FakeClock clock(1'000);
  EXPECT_EQ(clock.NowNanos(), 1'000);
  clock.Advance(5ms);
  EXPECT_EQ(clock.NowNanos(), 1'000 + 5'000'000);
  clock.Advance(std::chrono::nanoseconds(1));
  EXPECT_EQ(clock.NowNanos(), 1'000 + 5'000'001);
}

TEST(FakeClockTest, WakeHooksFireOnAdvance) {
  FakeClock clock;
  int a = 0, b = 0;
  clock.RegisterWake(&a, [&] { ++a; });
  clock.RegisterWake(&b, [&] { ++b; });
  clock.Advance(1ms);
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 1);
  clock.UnregisterWake(&a);
  clock.Advance(1ms);
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 2);
}

TEST(FakeClockTest, HookSeesPostAdvanceTime) {
  FakeClock clock;
  std::int64_t seen = -1;
  clock.RegisterWake(&seen, [&] { seen = clock.NowNanos(); });
  clock.Advance(3ms);
  EXPECT_EQ(seen, 3'000'000);
}

TEST(FakeClockTest, HookMayUnregisterItself) {
  FakeClock clock;
  int fired = 0;
  clock.RegisterWake(&fired, [&] {
    ++fired;
    clock.UnregisterWake(&fired);
  });
  clock.Advance(1ms);
  clock.Advance(1ms);
  EXPECT_EQ(fired, 1);
}

TEST(FakeClockTest, ConcurrentReadersSeeConsistentTime) {
  FakeClock clock;
  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int i = 0; i < 4; ++i) {
    readers.emplace_back([&] {
      std::int64_t prev = 0;
      while (!stop.load(std::memory_order_acquire)) {
        const std::int64_t now = clock.NowNanos();
        ASSERT_GE(now, prev);  // advances only forward
        prev = now;
      }
    });
  }
  for (int i = 0; i < 10'000; ++i) clock.Advance(std::chrono::nanoseconds(100));
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  EXPECT_EQ(clock.NowNanos(), 1'000'000);
}

}  // namespace
}  // namespace pamakv::util
