#include "pamakv/slab/slab_pool.hpp"

#include <gtest/gtest.h>

namespace pamakv {
namespace {

class SlabPoolTest : public ::testing::Test {
 protected:
  SlabPoolTest() : classes_(SizeClassConfig{}), pool_(1024 * 1024, classes_) {}
  SizeClassTable classes_;  // 64 KiB slabs -> 16 slabs in 1 MiB
  SlabPool pool_;           // single subclass per class
};

TEST_F(SlabPoolTest, InitialStateAllFree) {
  EXPECT_EQ(pool_.total_slabs(), 16u);
  EXPECT_EQ(pool_.free_slabs(), 16u);
  EXPECT_EQ(pool_.num_subclasses(), 1u);
  for (ClassId c = 0; c < classes_.num_classes(); ++c) {
    EXPECT_EQ(pool_.SlabCount(c, 0), 0u);
    EXPECT_EQ(pool_.SlotsInUse(c, 0), 0u);
    EXPECT_EQ(pool_.ClassSlabCount(c), 0u);
  }
}

TEST_F(SlabPoolTest, GrantAssignsFromFreePool) {
  EXPECT_TRUE(pool_.GrantFreeSlab(3, 0));
  EXPECT_EQ(pool_.free_slabs(), 15u);
  EXPECT_EQ(pool_.SlabCount(3, 0), 1u);
  EXPECT_EQ(pool_.FreeSlots(3, 0), classes_.SlotsPerSlab(3));
}

TEST_F(SlabPoolTest, GrantFailsWhenExhausted) {
  for (int i = 0; i < 16; ++i) EXPECT_TRUE(pool_.GrantFreeSlab(0, 0));
  EXPECT_FALSE(pool_.GrantFreeSlab(0, 0));
  EXPECT_EQ(pool_.free_slabs(), 0u);
}

TEST_F(SlabPoolTest, SlotAccounting) {
  ASSERT_TRUE(pool_.GrantFreeSlab(11, 0));  // 2 slots per slab
  EXPECT_TRUE(pool_.AcquireSlot(11, 0));
  EXPECT_TRUE(pool_.AcquireSlot(11, 0));
  EXPECT_FALSE(pool_.AcquireSlot(11, 0));  // slab full
  EXPECT_EQ(pool_.SlotsInUse(11, 0), 2u);
  pool_.ReleaseSlot(11, 0);
  EXPECT_TRUE(pool_.AcquireSlot(11, 0));
}

TEST_F(SlabPoolTest, AcquireWithoutSlabFails) {
  EXPECT_FALSE(pool_.AcquireSlot(0, 0));
}

TEST_F(SlabPoolTest, TransferMovesOwnership) {
  ASSERT_TRUE(pool_.GrantFreeSlab(2, 0));
  ASSERT_TRUE(pool_.GrantFreeSlab(2, 0));
  pool_.TransferSlab(2, 0, 5, 0);
  EXPECT_EQ(pool_.SlabCount(2, 0), 1u);
  EXPECT_EQ(pool_.SlabCount(5, 0), 1u);
  EXPECT_EQ(pool_.free_slabs(), 14u);
}

TEST_F(SlabPoolTest, CanReleaseSlabRequiresFreeSlots) {
  ASSERT_TRUE(pool_.GrantFreeSlab(11, 0));  // 2 slots
  EXPECT_TRUE(pool_.CanReleaseSlab(11, 0));
  ASSERT_TRUE(pool_.AcquireSlot(11, 0));
  EXPECT_FALSE(pool_.CanReleaseSlab(11, 0));
  pool_.ReleaseSlot(11, 0);
  EXPECT_TRUE(pool_.CanReleaseSlab(11, 0));
}

TEST_F(SlabPoolTest, EvictionsNeededToFreeSlab) {
  EXPECT_EQ(pool_.EvictionsNeededToFreeSlab(11, 0), 0u);  // no slab at all
  ASSERT_TRUE(pool_.GrantFreeSlab(11, 0));
  EXPECT_EQ(pool_.EvictionsNeededToFreeSlab(11, 0), 0u);  // already free
  ASSERT_TRUE(pool_.AcquireSlot(11, 0));
  EXPECT_EQ(pool_.EvictionsNeededToFreeSlab(11, 0), 1u);
  ASSERT_TRUE(pool_.AcquireSlot(11, 0));
  EXPECT_EQ(pool_.EvictionsNeededToFreeSlab(11, 0), 2u);
}

TEST_F(SlabPoolTest, MultiSlabFreeSlotsSpanSlabs) {
  ASSERT_TRUE(pool_.GrantFreeSlab(11, 0));
  ASSERT_TRUE(pool_.GrantFreeSlab(11, 0));
  ASSERT_TRUE(pool_.AcquireSlot(11, 0));
  ASSERT_TRUE(pool_.AcquireSlot(11, 0));
  ASSERT_TRUE(pool_.AcquireSlot(11, 0));
  // 3 of 4 slots used: one eviction frees a slab's worth.
  EXPECT_EQ(pool_.FreeSlots(11, 0), 1u);
  EXPECT_EQ(pool_.EvictionsNeededToFreeSlab(11, 0), 1u);
  EXPECT_FALSE(pool_.CanReleaseSlab(11, 0));
}

// ---- Subclass-granular ownership (PAMA's penalty bands) ----

class SubclassPoolTest : public ::testing::Test {
 protected:
  SubclassPoolTest()
      : classes_(SizeClassConfig{}),
        pool_(1024 * 1024, classes_, /*num_subclasses=*/5) {}
  SizeClassTable classes_;
  SlabPool pool_;
};

TEST_F(SubclassPoolTest, SubclassesOwnSlabsIndependently) {
  ASSERT_TRUE(pool_.GrantFreeSlab(0, 2));
  EXPECT_EQ(pool_.SlabCount(0, 2), 1u);
  EXPECT_EQ(pool_.SlabCount(0, 0), 0u);
  // Another band of the same class cannot use band 2's slots.
  EXPECT_TRUE(pool_.AcquireSlot(0, 2));
  EXPECT_FALSE(pool_.AcquireSlot(0, 0));
  EXPECT_EQ(pool_.ClassSlabCount(0), 1u);
  EXPECT_EQ(pool_.ClassSlotsInUse(0), 1u);
}

TEST_F(SubclassPoolTest, TransferAcrossBandsWithinClass) {
  ASSERT_TRUE(pool_.GrantFreeSlab(3, 0));
  pool_.TransferSlab(3, 0, 3, 4);
  EXPECT_EQ(pool_.SlabCount(3, 0), 0u);
  EXPECT_EQ(pool_.SlabCount(3, 4), 1u);
  EXPECT_EQ(pool_.ClassSlabCount(3), 1u);
}

TEST_F(SubclassPoolTest, TransferAcrossClassesAndBands) {
  ASSERT_TRUE(pool_.GrantFreeSlab(1, 1));
  pool_.TransferSlab(1, 1, 8, 3);
  EXPECT_EQ(pool_.SlabCount(1, 1), 0u);
  EXPECT_EQ(pool_.SlabCount(8, 3), 1u);
}

TEST(SlabPoolStandaloneTest, TooSmallCapacityThrows) {
  const SizeClassTable classes(SizeClassConfig{});
  EXPECT_THROW(SlabPool(1024, classes), std::invalid_argument);
}

}  // namespace
}  // namespace pamakv
