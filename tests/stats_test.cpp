// CacheStats: memcached-named Snapshot(), additivity of operator+=, and
// the bytes_stored gauge the server's `stats` command reports as "bytes".

#include <gtest/gtest.h>

#include <cstdint>

#include "pamakv/cache/stats.hpp"
#include "pamakv/sim/experiment.hpp"
#include "pamakv/util/rng.hpp"

namespace pamakv {
namespace {

CacheStats MakeStats(std::uint64_t seed) {
  Rng rng(seed);
  CacheStats s;
  s.gets = rng.NextBounded(1'000'000);
  s.get_hits = rng.NextBounded(1'000'000);
  s.get_misses = rng.NextBounded(1'000'000);
  s.sets = rng.NextBounded(1'000'000);
  s.set_updates = rng.NextBounded(1'000'000);
  s.set_failures = rng.NextBounded(1'000'000);
  s.dels = rng.NextBounded(1'000'000);
  s.evictions = rng.NextBounded(1'000'000);
  s.slab_migrations = rng.NextBounded(1'000'000);
  s.ghost_hits = rng.NextBounded(1'000'000);
  s.miss_penalty_total_us = rng.NextBounded(1'000'000);
  s.hit_penalty_saved_us = rng.NextBounded(1'000'000);
  s.bytes_stored = rng.NextBounded(1'000'000);
  return s;
}

TEST(StatsSnapshotTest, MemcachedNamesPresentOnceWithMatchingValues) {
  const CacheStats s = MakeStats(1);
  const StatsSnapshot snap = s.Snapshot();
  ASSERT_EQ(snap.size(), kStatsSnapshotEntries);

  const auto value_of = [&](const char* name) -> std::uint64_t {
    std::uint64_t value = 0;
    int found = 0;
    for (const auto& e : snap) {
      if (std::string_view(e.name) == name) {
        value = e.value;
        ++found;
      }
    }
    EXPECT_EQ(found, 1) << name;
    return value;
  };

  // The memcached-compatible subset, so standard tooling can scrape us.
  EXPECT_EQ(value_of("cmd_get"), s.gets);
  EXPECT_EQ(value_of("cmd_set"), s.sets);
  EXPECT_EQ(value_of("cmd_delete"), s.dels);
  EXPECT_EQ(value_of("get_hits"), s.get_hits);
  EXPECT_EQ(value_of("get_misses"), s.get_misses);
  EXPECT_EQ(value_of("evictions"), s.evictions);
  EXPECT_EQ(value_of("bytes"), s.bytes_stored);
  // pamakv extensions.
  EXPECT_EQ(value_of("set_updates"), s.set_updates);
  EXPECT_EQ(value_of("set_failures"), s.set_failures);
  EXPECT_EQ(value_of("ghost_hits"), s.ghost_hits);
  EXPECT_EQ(value_of("slab_migrations"), s.slab_migrations);
  EXPECT_EQ(value_of("miss_penalty_total_us"), s.miss_penalty_total_us);
  EXPECT_EQ(value_of("hit_penalty_saved_us"), s.hit_penalty_saved_us);
}

TEST(StatsRatioTest, ZeroRequestWindowYieldsZeroNotNan) {
  // An empty window (idle server between two snapshots) must report 0.0
  // ratios, never a 0/0 NaN that poisons downstream averages.
  const CacheStats empty;
  EXPECT_EQ(empty.HitRatio(), 0.0);
  EXPECT_EQ(empty.AvgServiceTimeUs(50), 0.0);

  // Same via Since(): two identical snapshots diff to an all-zero window.
  const CacheStats s = MakeStats(7);
  const CacheStats window = s.Since(s);
  EXPECT_EQ(window.gets, 0u);
  EXPECT_EQ(window.HitRatio(), 0.0);
  EXPECT_EQ(window.AvgServiceTimeUs(50), 0.0);
}

TEST(StatsMergeTest, EmptyShardIsAdditiveIdentity) {
  // Merging an idle shard must not perturb any counter — in particular
  // bytes_stored, which is a gauge and the easiest field to accidentally
  // double-count or skip when shard merges are written by hand.
  const CacheStats s = MakeStats(8);
  CacheStats sum = s;
  sum += CacheStats{};
  const StatsSnapshot merged = sum.Snapshot();
  const StatsSnapshot original = s.Snapshot();
  for (std::size_t i = 0; i < merged.size(); ++i) {
    EXPECT_EQ(merged[i].value, original[i].value) << merged[i].name;
  }

  CacheStats other_way;
  other_way += s;
  const StatsSnapshot flipped = other_way.Snapshot();
  for (std::size_t i = 0; i < flipped.size(); ++i) {
    EXPECT_EQ(flipped[i].value, original[i].value) << flipped[i].name;
  }
}

TEST(StatsSnapshotTest, PlusEqualsAndSnapshotAgree) {
  // Snapshot(a += b) must equal Snapshot(a) + Snapshot(b) entrywise —
  // i.e. no field is summed in one place and forgotten in the other. This
  // is what makes per-shard aggregation in CacheService::TotalStats()
  // consistent with what each shard would report alone.
  CacheStats a = MakeStats(2);
  const CacheStats b = MakeStats(3);
  const StatsSnapshot sa = a.Snapshot();
  const StatsSnapshot sb = b.Snapshot();
  a += b;
  const StatsSnapshot sum = a.Snapshot();
  for (std::size_t i = 0; i < sum.size(); ++i) {
    EXPECT_STREQ(sum[i].name, sa[i].name);
    EXPECT_EQ(sum[i].value, sa[i].value + sb[i].value) << sum[i].name;
  }
}

TEST(StatsSnapshotTest, SinceDiffsEveryField) {
  CacheStats later = MakeStats(4);
  const CacheStats earlier = MakeStats(5);
  CacheStats total = later;
  total += earlier;
  const StatsSnapshot diff = total.Since(later).Snapshot();
  const StatsSnapshot expect = earlier.Snapshot();
  for (std::size_t i = 0; i < diff.size(); ++i) {
    EXPECT_EQ(diff[i].value, expect[i].value) << diff[i].name;
  }
}

TEST(StatsBytesGaugeTest, TracksLiveBytesThroughSetAndDel) {
  auto engine = MakeEngine("memcached", 8ULL * 1024 * 1024, SizeClassConfig{});
  EXPECT_EQ(engine->stats().bytes_stored, 0u);

  ASSERT_TRUE(engine->Set(1, 100, 1'000).stored);
  ASSERT_TRUE(engine->Set(2, 200, 1'000).stored);
  EXPECT_EQ(engine->stats().bytes_stored, 300u);

  // Overwrite with a different size adjusts the gauge, not a second add.
  ASSERT_TRUE(engine->Set(1, 150, 1'000).stored);
  EXPECT_EQ(engine->stats().bytes_stored, 350u);

  engine->Del(1);
  EXPECT_EQ(engine->stats().bytes_stored, 200u);
  engine->Del(2);
  EXPECT_EQ(engine->stats().bytes_stored, 0u);
}

}  // namespace
}  // namespace pamakv
