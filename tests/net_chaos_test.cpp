// Chaos soak: a seeded, randomized fault storm against the real server.
//
// Every syscall and allocation seam is armed with a probability-triggered
// failpoint whose rate and stream are derived from one master seed, so a
// failing run is replayed exactly by exporting PAMAKV_CHAOS_SEED=<seed>
// (the seed is printed at the start of every run). Four worker clients
// hammer mixed traffic through the storm; the test then disarms everything
// and asserts full recovery plus the protocol/state invariants:
//
//   * hit values are byte-identical to what was stored (values are a pure
//     function of the key, so any cross-wiring of responses is caught)
//   * the server never answers gibberish (protocol violations are fatal)
//   * injected OOM surfaces as SERVER_ERROR, never as a dropped connection
//   * counters reconcile: get_hits + get_misses == cmd_get, and the wire
//     `bytes` gauge equals the engines' own bytes_stored
//   * every descriptor is returned: open-fd count is exact after shutdown
//
// Lives in its own `chaos`-labeled binary; a default (failpoints-off)
// build skips it.

#include <gtest/gtest.h>

#include "pamakv/util/failpoint.hpp"

#if PAMAKV_FAILPOINTS

#include <dirent.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <system_error>
#include <thread>
#include <vector>

#include "pamakv/net/cache_service.hpp"
#include "pamakv/net/client.hpp"
#include "pamakv/net/server.hpp"
#include "pamakv/sim/experiment.hpp"
#include "pamakv/util/metrics.hpp"
#include "pamakv/util/rng.hpp"

namespace pamakv::net {
namespace {

constexpr int kWorkers = 4;
constexpr int kOpsPerWorker = 1'200;
constexpr std::uint64_t kKeySpace = 256;

/// Open descriptors in this process, via /proc/self/fd.
std::size_t OpenFdCount() {
  std::size_t n = 0;
  DIR* dir = ::opendir("/proc/self/fd");
  if (dir == nullptr) return 0;
  while (::readdir(dir) != nullptr) ++n;
  ::closedir(dir);
  return n >= 3 ? n - 3 : 0;  // ".", "..", and the dirfd itself
}

/// The canonical value for a key — a pure function, so a hit either
/// matches byte-for-byte or the server/client pipeline mangled a response.
std::string ValueFor(const std::string& key) {
  const std::uint64_t h = Mix64(std::hash<std::string>{}(key));
  std::string v = "v[" + key + "]";
  v.append(16 + h % 120, static_cast<char>('a' + h % 26));
  return v;
}

/// "what@p:<rate>:<stream>" with rate and stream drawn from the master
/// seed's Rng — the whole fault schedule is a function of the seed.
std::string ProbSpec(const char* what, double base_rate, Rng& rng) {
  const double p = base_rate * (0.5 + rng.NextDouble());
  char buf[96];
  std::snprintf(buf, sizeof buf, "%s@p:%.4f:%llu", what, p,
                static_cast<unsigned long long>(rng.NextU64()));
  return buf;
}

struct WorkerResult {
  std::uint64_t ops_completed = 0;
  std::uint64_t oom_rejections = 0;  ///< SERVER_ERROR out of memory
  std::uint64_t reconnects = 0;
  std::vector<std::string> fatal;  ///< protocol violations etc.
};

void ChaosWorker(int wid, std::uint64_t seed, std::uint16_t port,
                 WorkerResult& out) {
  Rng rng(Mix64(seed ^ 0xC0FFEEULL) ^ static_cast<std::uint64_t>(wid));
  BlockingClient client;

  auto reconnect = [&]() -> bool {
    for (int attempt = 0; attempt < 50; ++attempt) {
      try {
        client.Connect("127.0.0.1", port);
        return true;
      } catch (const std::exception&) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(1LL << (attempt < 5 ? attempt : 5)));
      }
    }
    return false;
  };

  if (!reconnect()) {
    out.fatal.push_back("worker " + std::to_string(wid) + ": never connected");
    return;
  }

  for (int i = 0; i < kOpsPerWorker; ++i) {
    const std::string key = "k:" + std::to_string(rng.NextBounded(kKeySpace));
    const std::string expect = ValueFor(key);
    try {
      const std::uint64_t dice = rng.NextBounded(100);
      if (dice < 55) {
        std::string value;
        if (client.Get(key, value) && value != expect) {
          out.fatal.push_back("worker " + std::to_string(wid) +
                              ": corrupt value for " + key);
          return;
        }
      } else if (dice < 95) {
        client.Set(key, 1'000, expect);
      } else {
        client.Delete(key);
      }
      ++out.ops_completed;
    } catch (const ClientError& e) {
      if (e.kind() == ClientError::Kind::kProtocol) {
        // A mangled response is exactly the bug this soak exists to catch.
        out.fatal.push_back("worker " + std::to_string(wid) +
                            ": protocol violation: " + e.what());
        return;
      }
      if (e.kind() == ClientError::Kind::kServerError &&
          std::string_view(e.what()).find("out of memory") !=
              std::string_view::npos) {
        // An injected OOM answered in-band; the connection stays usable.
        ++out.oom_rejections;
        continue;
      }
      // Anything else (orderly close, reset, short read, an fd-shed
      // SERVER_ERROR) means this connection is gone or about to be.
      ++out.reconnects;
      if (!reconnect()) {
        out.fatal.push_back("worker " + std::to_string(wid) +
                            ": reconnect attempts exhausted");
        return;
      }
    } catch (const std::system_error&) {
      ++out.reconnects;
      if (!reconnect()) {
        out.fatal.push_back("worker " + std::to_string(wid) +
                            ": reconnect attempts exhausted");
        return;
      }
    }
  }
}

class ChaosTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  void TearDown() override { util::FailPoints::DisableAll(); }
};

TEST_P(ChaosTest, SurvivesSeededFaultStorm) {
  std::uint64_t seed = GetParam();
  if (const char* env = std::getenv("PAMAKV_CHAOS_SEED")) {
    seed = std::strtoull(env, nullptr, 0);
  }
  std::printf("chaos seed = %llu  (replay: PAMAKV_CHAOS_SEED=%llu)\n",
              static_cast<unsigned long long>(seed),
              static_cast<unsigned long long>(seed));

  const std::size_t fds_before = OpenFdCount();
  {
    CacheServiceConfig cache_cfg;
    cache_cfg.shards = 2;
    cache_cfg.capacity_bytes = 16ULL * 1024 * 1024;
    CacheService service(cache_cfg, [](Bytes bytes) {
      return MakeEngine("pama", bytes, SizeClassConfig{});
    });
    ServerConfig server_cfg;
    server_cfg.port = 0;  // ephemeral
    server_cfg.threads = 2;
    server_cfg.accept_retry_ms = 5;  // real clock: pauses self-heal fast
    Server server(server_cfg, service);
    util::MetricsRegistry registry;
    service.RegisterMetrics(registry);
    server.EnableMetrics(registry);
    server.Start();

    // The entire storm is a function of the seed: rates and per-point
    // streams all come from this one Rng.
    Rng rng(seed);
    ASSERT_TRUE(util::FailPoints::Arm(
        "net.read", ProbSpec("EINTR", 0.05, rng)));
    ASSERT_TRUE(util::FailPoints::Arm(
        "net.writev", ProbSpec("short:4", 0.20, rng)));
    ASSERT_TRUE(util::FailPoints::Arm(
        "net.epoll_wait", ProbSpec("EINTR", 0.02, rng)));
    ASSERT_TRUE(util::FailPoints::Arm(
        "net.accept4", ProbSpec("EMFILE", 0.10, rng)));
    ASSERT_TRUE(util::FailPoints::Arm(
        "net.send", ProbSpec("EINTR", 0.03, rng)));
    ASSERT_TRUE(util::FailPoints::Arm(
        "net.recv", ProbSpec("ECONNRESET", 0.005, rng)));
    ASSERT_TRUE(util::FailPoints::Arm(
        "svc.store_bytes", ProbSpec("oom", 0.03, rng)));
    ASSERT_TRUE(util::FailPoints::Arm(
        "engine.item_alloc", ProbSpec("oom", 0.02, rng)));

    std::vector<WorkerResult> results(kWorkers);
    std::vector<std::thread> workers;
    for (int w = 0; w < kWorkers; ++w) {
      workers.emplace_back(ChaosWorker, w, seed, server.port(),
                           std::ref(results[w]));
    }
    for (auto& t : workers) t.join();

    std::uint64_t ops = 0, ooms = 0, reconnects = 0;
    for (const auto& r : results) {
      for (const auto& msg : r.fatal) ADD_FAILURE() << msg;
      ops += r.ops_completed;
      ooms += r.oom_rejections;
      reconnects += r.reconnects;
    }
    std::printf(
        "storm: %llu ops, %llu oom rejections, %llu reconnects; trips:",
        static_cast<unsigned long long>(ops),
        static_cast<unsigned long long>(ooms),
        static_cast<unsigned long long>(reconnects));
    for (const auto& [name, trips] : util::FailPoints::TripCounts()) {
      std::printf(" %s=%llu", name.c_str(),
                  static_cast<unsigned long long>(trips));
    }
    std::printf("\n");

    // The storm must have been a storm: traffic got through AND faults
    // actually fired in the response path.
    EXPECT_GT(ops, static_cast<std::uint64_t>(kWorkers * kOpsPerWorker) / 2);
    EXPECT_GT(util::FailPoints::Trips("net.writev"), 0u);

    // Calm the weather; the server must recover completely — a fresh
    // client sees a flawless protocol with zero retries.
    util::FailPoints::DisableAll();
    BlockingClient probe;
    probe.Connect("127.0.0.1", server.port());
    for (int i = 0; i < 200; ++i) {
      const std::string key = "r:" + std::to_string(i % 32);
      const std::string value = ValueFor(key);
      ASSERT_TRUE(probe.Set(key, 100, value)) << "recovery set " << i;
      std::string got;
      ASSERT_TRUE(probe.Get(key, got)) << "recovery get " << i;
      ASSERT_EQ(got, value) << "recovery get " << i;
    }

    // Counters reconcile across the whole run, storm included.
    const CacheStats totals = service.TotalStats();
    EXPECT_EQ(totals.get_hits + totals.get_misses, totals.gets);
    std::uint64_t wire_bytes = 0;
    for (const auto& [name, value] : probe.Stats()) {
      if (name == "bytes") wire_bytes = value;
    }
    EXPECT_EQ(wire_bytes, service.TotalStats().bytes_stored);

    // Metrics-gauge reconciliation: after thousands of rollbacks the
    // registry's view must still match engine ground truth exactly, and
    // the slab accounting must balance to the slab (no slab leaked by a
    // failed store, none double-counted by a retried one).
    const util::MetricsSnapshot snap = registry.Snapshot();
    const auto sum_of = [&snap](std::string_view name) {
      double sum = 0.0;
      for (const auto& s : snap.samples) {
        if (s.name == name) sum += s.value;
      }
      return sum;
    };
    EXPECT_EQ(static_cast<std::uint64_t>(sum_of("pamakv_bytes")),
              service.TotalStats().bytes_stored);
    EXPECT_EQ(static_cast<std::uint64_t>(sum_of("pamakv_curr_items")),
              service.ItemCount());
    EXPECT_EQ(sum_of("pamakv_slabs") + sum_of("pamakv_free_slabs"),
              sum_of("pamakv_total_slabs"));
    // Item accounting balances too: per-band stacks sum to the item count.
    EXPECT_EQ(sum_of("pamakv_subclass_items"), sum_of("pamakv_curr_items"));

    // Per-verb service-time histograms reconcile with the stats totals:
    // every executed get/delete is observed exactly once (multi-key gets
    // are absent from this workload). Sets may be observed without
    // landing in cmd_set — an injected OOM rolls the stats back but the
    // command was still served — so set is a ≥ bound.
    const auto verb_count = [&snap](std::string_view verb) {
      const std::string want = "{verb=\"" + std::string(verb) + "\"}";
      for (const auto& s : snap.samples) {
        if (s.name == "pamakv_service_time_us" && s.labels == want) {
          return s.histogram.total;
        }
      }
      return std::uint64_t{0};
    };
    EXPECT_EQ(verb_count("get"), totals.gets);
    EXPECT_EQ(verb_count("delete"), totals.dels);
    EXPECT_GE(verb_count("set"), totals.sets);

    probe.Close();
    EXPECT_TRUE(server.Shutdown(std::chrono::milliseconds(10'000)));
  }
  // Every fd the storm touched — accepted sockets, shed sockets, the
  // spare, listeners, epoll/eventfds — was returned.
  EXPECT_EQ(OpenFdCount(), fds_before);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosTest,
                         ::testing::Values(11u, 42u, 1337u));

}  // namespace
}  // namespace pamakv::net

#else  // !PAMAKV_FAILPOINTS

TEST(ChaosTest, RequiresChaosBuild) {
  GTEST_SKIP() << "built without PAMAKV_FAILPOINTS; run the chaos preset";
}

#endif  // PAMAKV_FAILPOINTS
