// Scenario tests for PAMA's slab (re)allocation decisions (paper Sec. III):
// migration toward high incoming value, suppression when migration would
// not pay, self-eviction when the requester's own candidate slab is the
// cheapest, and forced migration for starved classes.
#include <gtest/gtest.h>

#include "pamakv/cache/cache_engine.hpp"
#include "pamakv/policy/pama.hpp"

namespace pamakv {
namespace {

EngineConfig TinyConfig(Bytes capacity, std::uint32_t ghost_segments) {
  EngineConfig cfg;
  cfg.size_classes.slab_bytes = 1024;
  cfg.size_classes.min_slot_bytes = 64;
  cfg.size_classes.num_classes = 4;
  cfg.capacity_bytes = capacity;
  cfg.ghost_segments = ghost_segments;
  return cfg;
}

struct Harness {
  explicit Harness(Bytes capacity, PamaConfig pama_cfg = DefaultConfig()) {
    auto policy = std::make_unique<PamaPolicy>(pama_cfg);
    pama = policy.get();
    engine = std::make_unique<CacheEngine>(
        TinyConfig(capacity, static_cast<std::uint32_t>(
                                 pama_cfg.reference_segments + 1)),
        std::move(policy));
  }
  static PamaConfig DefaultConfig() {
    PamaConfig cfg;
    cfg.reference_segments = 2;
    cfg.window_accesses = 1'000'000;
    cfg.use_bloom = false;
    return cfg;
  }
  std::unique_ptr<CacheEngine> engine;
  PamaPolicy* pama = nullptr;
};

TEST(PamaPolicyTest, MigratesFromColdDonorToValuableRequester) {
  Harness h(2048);  // 2 slabs
  auto& e = *h.engine;
  // Class 3 hoards one slab with two never-again-touched items.
  e.Set(1, 512, 100);
  e.Set(2, 512, 100);
  // Class 0 fills its slab (16 slots) with hot items.
  for (KeyId k = 100; k < 116; ++k) e.Set(k, 64, 1000);
  ASSERT_EQ(e.pool().free_slabs(), 0u);
  // Touch class 0's items so its candidate slab is clearly valuable.
  for (KeyId k = 100; k < 116; ++k) e.Get(k, 64, 1000);

  // First overflow: incoming value is still 0, so migration is suppressed
  // and class 0 replaces within itself.
  e.Set(200, 64, 1000);
  EXPECT_EQ(h.pama->decisions().suppressed, 1u);
  EXPECT_EQ(e.pool().ClassSlabCount(0), 1u);

  // The evicted key misses (ghost hit -> incoming value) and is re-cached:
  // now class 3's worthless slab must be migrated to class 0.
  const KeyId evicted = 100;  // class 0's LRU at overflow time
  ASSERT_FALSE(e.Contains(evicted));
  e.Get(evicted, 64, 1000);
  e.Set(evicted, 64, 1000);
  EXPECT_EQ(h.pama->decisions().migrations, 1u);
  EXPECT_EQ(e.pool().ClassSlabCount(0), 2u);
  EXPECT_EQ(e.pool().ClassSlabCount(3), 0u);
  EXPECT_FALSE(e.Contains(1));
  EXPECT_FALSE(e.Contains(2));
  EXPECT_EQ(e.stats().slab_migrations, 1u);
}

TEST(PamaPolicyTest, SelfEvictionWhenOwnCandidateIsCheapest) {
  Harness h(2048);
  auto& e = *h.engine;
  // Class 0: hot slab. Class 3: cold slab, and the next store also
  // targets class 3 — its own candidate is the global minimum.
  for (KeyId k = 100; k < 116; ++k) e.Set(k, 64, 1000);
  e.Set(1, 512, 100);
  e.Set(2, 512, 100);
  for (KeyId k = 100; k < 116; ++k) e.Get(k, 64, 1000);
  ASSERT_EQ(e.pool().free_slabs(), 0u);

  e.Set(3, 512, 100);  // class 3 overflow
  EXPECT_EQ(h.pama->decisions().self_evictions, 1u);
  EXPECT_EQ(e.pool().ClassSlabCount(3), 1u);  // no slab moved
  EXPECT_FALSE(e.Contains(1));           // its own LRU was replaced
  EXPECT_TRUE(e.Contains(3));
}

TEST(PamaPolicyTest, StarvedSubclassBootstrapsViaGhost) {
  Harness h(1024);  // a single slab
  auto& e = *h.engine;
  for (KeyId k = 100; k < 116; ++k) e.Set(k, 64, 1000);  // class 0 owns it
  ASSERT_EQ(e.pool().free_slabs(), 0u);

  // Class 3 appears with zero slabs and zero proven value: the store is
  // refused (value-gated admission) and the key is remembered as a ghost.
  const auto refused = e.Set(1, 512, 100);
  EXPECT_FALSE(refused.stored);
  EXPECT_EQ(h.pama->decisions().refusals, 1u);
  EXPECT_TRUE(e.GhostOf(3, 0).Contains(1));

  // The key re-misses: the ghost hit builds class 3's incoming value above
  // the idle donor's zero outgoing value, so the retry is admitted via a
  // real migration.
  e.Get(1, 512, 100);
  const auto admitted = e.Set(1, 512, 100);
  EXPECT_TRUE(admitted.stored);
  EXPECT_EQ(e.pool().ClassSlabCount(3), 1u);
  EXPECT_EQ(e.pool().ClassSlabCount(0), 0u);
  EXPECT_GE(h.pama->decisions().migrations, 1u);
}

TEST(PamaPolicyTest, IntraClassReallocationAcrossBands) {
  PamaConfig cfg = Harness::DefaultConfig();
  // Build an engine with penalty bands directly (the Harness default has
  // a single band).
  EngineConfig ecfg = TinyConfig(1024, 3);
  ecfg.penalty_band_bounds = {1'000, 1'000'000};  // two bands
  auto policy = std::make_unique<PamaPolicy>(cfg);
  auto* pama = policy.get();
  CacheEngine engine(ecfg, std::move(policy));

  // The single slab goes to class 3 band 0; band 1 then demands space.
  // Subclasses own their slabs, so serving band 1 requires a real slab
  // transfer between bands of the same class — granted only once band 1's
  // ghost demand proves it out-values band 0's idle slab.
  engine.Set(1, 512, 500);  // band 0 takes the only slab
  ASSERT_EQ(engine.pool().SlabCount(3, 0), 1u);
  ASSERT_EQ(engine.pool().free_slabs(), 0u);

  EXPECT_FALSE(engine.Set(2, 512, 500'000).stored);  // refused, ghosted
  engine.Get(2, 512, 500'000);                       // ghost hit
  const auto result = engine.Set(2, 512, 500'000);   // band 1 admitted
  EXPECT_TRUE(result.stored);
  EXPECT_EQ(engine.pool().SlabCount(3, 1), 1u);
  EXPECT_EQ(engine.pool().SlabCount(3, 0), 0u);
  EXPECT_EQ(engine.pool().ClassSlabCount(3), 1u);
  EXPECT_GE(engine.stats().slab_migrations, 1u);
  EXPECT_GE(pama->decisions().intra_class + pama->decisions().refusals +
                pama->decisions().migrations,
            1u);
  EXPECT_FALSE(engine.Contains(1));  // band 0's item was displaced
  EXPECT_TRUE(engine.Contains(2));
}

TEST(PamaPolicyTest, DecisionCountersStartAtZero) {
  Harness h(1024);
  EXPECT_EQ(h.pama->decisions().migrations, 0u);
  EXPECT_EQ(h.pama->decisions().suppressed, 0u);
  EXPECT_EQ(h.pama->decisions().self_evictions, 0u);
  EXPECT_EQ(h.pama->decisions().refusals, 0u);
  EXPECT_EQ(h.pama->name(), "pama");
}

TEST(PamaPolicyTest, GhostCapacityCoversTrackedSegments) {
  // The engine must size ghost lists to at least (m+1) segments so the
  // incoming-value estimate sees the whole receiving region.
  Harness h(4096);
  const auto& ghost = h.engine->GhostOf(3, 0);
  // m = 2 -> 3 segments x 2 slots = 6 entries minimum.
  EXPECT_GE(ghost.capacity(), 6u);
}

}  // namespace
}  // namespace pamakv
