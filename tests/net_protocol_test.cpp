// Protocol-layer tests: command-line parsing, the connection state
// machine's handling of split/garbage/oversized input, and chunking
// invariance (the response stream must not depend on how the request
// bytes were fragmented by TCP). All through Connection::Ingest — no
// sockets — so the same paths the server runs are covered deterministically
// and under ASAN.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "pamakv/net/cache_service.hpp"
#include "pamakv/net/connection.hpp"
#include "pamakv/policy/no_realloc.hpp"
#include "pamakv/util/rng.hpp"

namespace pamakv::net {
namespace {

std::unique_ptr<CacheService> MakeService(std::size_t shards = 2,
                                          Bytes capacity = 4ULL * 1024 *
                                                           1024) {
  CacheServiceConfig cfg;
  cfg.shards = shards;
  cfg.capacity_bytes = capacity;
  return std::make_unique<CacheService>(cfg, [](Bytes bytes) {
    EngineConfig ecfg;
    ecfg.capacity_bytes = bytes;
    return std::make_unique<CacheEngine>(ecfg,
                                         std::make_unique<NoReallocPolicy>());
  });
}

/// Feeds the whole stream at once and returns (output, still_open).
std::pair<std::string, bool> RunStream(Connection& conn,
                                       const std::string& stream) {
  const bool open = conn.Ingest(stream.data(), stream.size());
  const auto out = conn.pending_output();
  return {std::string(out), open};
}

// ---- ParseCommandLine unit tests ----

TEST(ProtocolParseTest, GetMultiKey) {
  Command cmd;
  ASSERT_EQ(ParseCommandLine("get a bb ccc", cmd).status, ParseStatus::kOk);
  EXPECT_EQ(cmd.verb, Verb::kGet);
  ASSERT_EQ(cmd.num_keys, 3u);
  EXPECT_EQ(cmd.keys[0], "a");
  EXPECT_EQ(cmd.keys[1], "bb");
  EXPECT_EQ(cmd.keys[2], "ccc");
}

TEST(ProtocolParseTest, SetFields) {
  Command cmd;
  ASSERT_EQ(ParseCommandLine("set k 2500 120 10 noreply", cmd).status,
            ParseStatus::kOk);
  EXPECT_EQ(cmd.verb, Verb::kSet);
  EXPECT_EQ(cmd.keys[0], "k");
  EXPECT_EQ(cmd.flags, 2500u);
  EXPECT_EQ(cmd.exptime, 120u);
  EXPECT_EQ(cmd.value_bytes, 10u);
  EXPECT_TRUE(cmd.noreply);
}

TEST(ProtocolParseTest, RejectsMalformed) {
  Command cmd;
  EXPECT_EQ(ParseCommandLine("get", cmd).status, ParseStatus::kClientError);
  EXPECT_EQ(ParseCommandLine("set k x 0 5", cmd).status,
            ParseStatus::kClientError);
  EXPECT_EQ(ParseCommandLine("set k 0 0", cmd).status,
            ParseStatus::kClientError);
  EXPECT_EQ(ParseCommandLine("set k 0 0 5 bogus", cmd).status,
            ParseStatus::kClientError);
  EXPECT_EQ(ParseCommandLine("delete", cmd).status, ParseStatus::kClientError);
  EXPECT_EQ(ParseCommandLine("frobnicate", cmd).status, ParseStatus::kError);
  EXPECT_EQ(ParseCommandLine("", cmd).status, ParseStatus::kError);
  // Key longer than 250 bytes.
  EXPECT_EQ(ParseCommandLine("get " + std::string(251, 'k'), cmd).status,
            ParseStatus::kClientError);
  // 65 keys (cap is 64).
  std::string many = "get";
  for (int i = 0; i < 65; ++i) many += " k" + std::to_string(i);
  EXPECT_EQ(ParseCommandLine(many, cmd).status, ParseStatus::kClientError);
}

TEST(ProtocolParseTest, ToleratesExtraSpaces) {
  Command cmd;
  ASSERT_EQ(ParseCommandLine("get  a   b", cmd).status, ParseStatus::kOk);
  EXPECT_EQ(cmd.num_keys, 2u);
}

// ---- Connection state machine ----

TEST(ConnectionTest, SetGetDeleteRoundTrip) {
  auto service = MakeService();
  Connection conn(*service);
  auto [out, open] = RunStream(
      conn,
      "set k 7 0 5\r\nhello\r\nget k\r\ndelete k\r\nget k\r\n");
  EXPECT_TRUE(open);
  EXPECT_EQ(out,
            "STORED\r\nVALUE k 7 5\r\nhello\r\nEND\r\nDELETED\r\nEND\r\n");
}

TEST(ConnectionTest, BinarySafeValues) {
  auto service = MakeService();
  Connection conn(*service);
  // Value contains CRLF and NUL — must ride the byte count, not framing.
  const std::string value("a\r\nb\0c", 6);
  std::string stream = "set bin 1 0 6\r\n" + value + "\r\nget bin\r\n";
  auto [out, open] = RunStream(conn, stream);
  EXPECT_TRUE(open);
  EXPECT_EQ(out, "STORED\r\nVALUE bin 1 6\r\n" + value + "\r\nEND\r\n");
}

TEST(ConnectionTest, ChunkingInvariance) {
  // The same request stream, fed 1..N bytes at a time, must produce the
  // identical response byte stream.
  const std::string stream =
      "set a 100 0 3\r\nxyz\r\nset b 200 0 2\r\npq\r\n"
      "get a b miss\r\ngets a\r\nstats\r\ndelete b\r\nversion\r\n";
  std::string reference;
  {
    auto service = MakeService();
    Connection conn(*service);
    reference = RunStream(conn, stream).first;
  }
  ASSERT_FALSE(reference.empty());
  Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    auto service = MakeService();
    Connection conn(*service);
    std::size_t pos = 0;
    bool open = true;
    while (pos < stream.size() && open) {
      const std::size_t n = 1 + rng.NextBounded(7);
      const std::size_t take = std::min(n, stream.size() - pos);
      open = conn.Ingest(stream.data() + pos, take);
      pos += take;
    }
    EXPECT_TRUE(open);
    EXPECT_EQ(std::string(conn.pending_output()), reference) << trial;
  }
}

TEST(ConnectionTest, QuitClosesAfterPipelinedCommands) {
  auto service = MakeService();
  Connection conn(*service);
  auto [out, open] = RunStream(conn, "version\r\nquit\r\nversion\r\n");
  EXPECT_FALSE(open);
  // The command after quit is never processed.
  EXPECT_EQ(out, "VERSION pamakv-0.2\r\n");
}

TEST(ConnectionTest, UnknownAndMalformedCommandsKeepConnection) {
  auto service = MakeService();
  Connection conn(*service);
  auto [out, open] =
      RunStream(conn, "bogus\r\nget\r\nset k zz 0 5\r\nversion\r\n");
  EXPECT_TRUE(open);
  EXPECT_EQ(out,
            "ERROR\r\nCLIENT_ERROR no keys\r\nCLIENT_ERROR bad flags\r\n"
            "VERSION pamakv-0.2\r\n");
}

TEST(ConnectionTest, BadDataChunkTerminatorCloses) {
  auto service = MakeService();
  Connection conn(*service);
  auto [out, open] = RunStream(conn, "set k 0 0 3\r\nabcXXget k\r\n");
  EXPECT_FALSE(open);
  EXPECT_EQ(out, "CLIENT_ERROR bad data chunk\r\n");
}

TEST(ConnectionTest, OversizedLineCloses) {
  auto service = MakeService();
  Connection conn(*service);
  const std::string huge(kMaxLineBytes + 10, 'a');  // no newline anywhere
  auto [out, open] = RunStream(conn, huge);
  EXPECT_FALSE(open);
  EXPECT_EQ(out, "CLIENT_ERROR line too long\r\n");
}

TEST(ConnectionTest, OversizedValueIsSwallowedAndConnectionSurvives) {
  auto service = MakeService();
  Connection conn(*service);
  const std::uint64_t huge = kMaxValueBytes + 100;
  std::string stream = "set big 0 0 " + std::to_string(huge) + "\r\n";
  stream += std::string(huge, 'x');
  stream += "\r\nversion\r\n";
  // Feed in chunks so the discard path (not one giant buffer) is used.
  std::size_t pos = 0;
  bool open = true;
  while (pos < stream.size() && open) {
    const std::size_t take = std::min<std::size_t>(8192, stream.size() - pos);
    open = conn.Ingest(stream.data() + pos, take);
    pos += take;
  }
  EXPECT_TRUE(open);
  EXPECT_EQ(std::string(conn.pending_output()),
            "SERVER_ERROR object too large for cache\r\nVERSION pamakv-0.2\r\n");
}

TEST(ConnectionTest, BareNewlinesAccepted) {
  auto service = MakeService();
  Connection conn(*service);
  auto [out, open] = RunStream(conn, "set k 1 0 2\nok\r\nget k\n");
  EXPECT_TRUE(open);
  EXPECT_EQ(out, "STORED\r\nVALUE k 1 2\r\nok\r\nEND\r\n");
}

TEST(ConnectionTest, GarbageFuzzNeverCrashes) {
  // Random bytes (with elevated \r, \n, space frequency so framing paths
  // trigger), interleaved with valid commands, in random chunk sizes.
  // The assertion is absence of crashes/UB (ASAN preset) and that the
  // connection either survives or closes cleanly.
  Rng rng(4242);
  static constexpr char kAlphabet[] =
      "abcdefghijklmnopqrstuvwxyz0123456789 \r\n\r\n\r\n  \0\x01\xff get set";
  for (int trial = 0; trial < 50; ++trial) {
    auto service = MakeService(1, 1024 * 1024);
    Connection conn(*service);
    std::string stream;
    for (int cmd = 0; cmd < 40; ++cmd) {
      if (rng.NextDouble() < 0.3) {
        stream += "set k" + std::to_string(rng.NextBounded(10)) +
                  " 5 0 3\r\nabc\r\n";
      } else if (rng.NextDouble() < 0.3) {
        stream += "get k" + std::to_string(rng.NextBounded(10)) + "\r\n";
      } else {
        const std::size_t len = rng.NextBounded(300);
        for (std::size_t i = 0; i < len; ++i) {
          stream += kAlphabet[rng.NextBounded(sizeof kAlphabet - 1)];
        }
        stream += "\r\n";
      }
    }
    std::size_t pos = 0;
    bool open = true;
    while (pos < stream.size() && open) {
      const std::size_t take =
          std::min<std::size_t>(1 + rng.NextBounded(333), stream.size() - pos);
      open = conn.Ingest(stream.data() + pos, take);
      pos += take;
    }
    // Drain output so the tx buffer exercises its reuse path too.
    conn.ConsumeOutput(conn.pending_output().size());
  }
}

TEST(ConnectionTest, EverySplitPositionProducesIdenticalOutput) {
  // Exhaustive two-fragment fuzz: a corpus stream exercising every verb,
  // binary payloads, pipelining, errors and noreply is cut at EVERY byte
  // position into two Ingest calls. Each cut must yield the exact
  // reference byte stream — a stronger guarantee than random chunking,
  // since boundary bugs live at specific offsets (mid-CRLF, mid-header,
  // last payload byte) that sampling can miss.
  const std::string binary("\r\nEND\r\n\0\xff\x01", 10);
  const std::string corpus =
      "set a 100 0 3\r\nxyz\r\n"
      "set bin 7 0 10\r\n" + binary + "\r\n"
      "set quiet 1 0 2 noreply\r\nqq\r\n"
      "get a bin quiet miss\r\n"
      "gets a\r\n"
      "bogus\r\n"
      "set k zz 0 5\r\n"
      "delete a\r\ndelete a\r\n"
      "version\r\n";
  std::string reference;
  {
    auto service = MakeService();
    Connection conn(*service);
    reference = RunStream(conn, corpus).first;
  }
  ASSERT_FALSE(reference.empty());
  for (std::size_t cut = 0; cut <= corpus.size(); ++cut) {
    auto service = MakeService();
    Connection conn(*service);
    bool open = conn.Ingest(corpus.data(), cut);
    ASSERT_TRUE(open) << "closed at cut " << cut;
    open = conn.Ingest(corpus.data() + cut, corpus.size() - cut);
    ASSERT_TRUE(open) << "closed at cut " << cut;
    ASSERT_EQ(std::string(conn.pending_output()), reference)
        << "divergence with split at byte " << cut;
  }
}

TEST(ConnectionTest, SeededMutationFuzzNeverCrashes) {
  // Start from a valid stream, then corrupt it: byte flips, insertions
  // and deletions at random positions, fed in random chunk sizes. Unlike
  // GarbageFuzzNeverCrashes this keeps the input *almost* well-formed, so
  // it lands in the narrow error paths (bad header fields, payload length
  // off by a few, truncated CRLF) rather than in the reject-everything
  // fast path. Assertion: no crash/UB, and the connection is either open
  // or was closed by an explicit error response.
  const std::string base =
      "set k1 10 0 4\r\nabcd\r\nset k2 20 0 6\r\nsixsix\r\n"
      "get k1 k2\r\ngets k1\r\ndelete k2\r\nstats\r\nversion\r\n";
  Rng rng(20'260'807);
  for (int trial = 0; trial < 200; ++trial) {
    std::string stream = base;
    const int mutations = 1 + static_cast<int>(rng.NextBounded(8));
    for (int m = 0; m < mutations; ++m) {
      if (stream.empty()) break;
      const std::size_t pos = rng.NextBounded(stream.size());
      switch (rng.NextBounded(3)) {
        case 0:  // flip
          stream[pos] = static_cast<char>(rng.NextBounded(256));
          break;
        case 1:  // insert
          stream.insert(pos, 1, static_cast<char>(rng.NextBounded(256)));
          break;
        default:  // delete
          stream.erase(pos, 1);
          break;
      }
    }
    auto service = MakeService(1, 1024 * 1024);
    Connection conn(*service);
    std::size_t pos = 0;
    bool open = true;
    while (pos < stream.size() && open) {
      const std::size_t take =
          std::min<std::size_t>(1 + rng.NextBounded(64), stream.size() - pos);
      open = conn.Ingest(stream.data() + pos, take);
      pos += take;
    }
    if (!open) {
      // A close must have been explained on the wire (or be quit-silent).
      const std::string out(conn.pending_output());
      EXPECT_TRUE(out.empty() || out.find("ERROR") != std::string::npos ||
                  out.find("END") != std::string::npos ||
                  out.find("STORED") != std::string::npos)
          << "trial " << trial << " closed silently with: " << out;
    }
    conn.ConsumeOutput(conn.pending_output().size());
  }
}

TEST(ConnectionTest, OversizedValueSwallowRegressionCorpus) {
  // Regression corpus for the discard path: an over-limit set must be
  // swallowed byte-exactly no matter where the stream fragments, and the
  // command after it must execute. The three splits pin the historical
  // hazard points: right after the header line, mid-discard, and between
  // the payload's trailing CR and LF.
  const std::uint64_t huge = kMaxValueBytes + 17;
  const std::string header = "set big 0 0 " + std::to_string(huge) + "\r\n";
  const std::string payload(huge, 'x');
  const std::string tail = "\r\nversion\r\n";
  const std::string expected =
      "SERVER_ERROR object too large for cache\r\nVERSION pamakv-0.2\r\n";

  const std::size_t splits[] = {
      header.size(),                          // exactly after the header
      header.size() + payload.size() / 2,     // mid-discard
      header.size() + payload.size() + 1,     // between \r and \n
  };
  const std::string stream = header + payload + tail;
  for (const std::size_t split : splits) {
    auto service = MakeService();
    Connection conn(*service);
    ASSERT_TRUE(conn.Ingest(stream.data(), split)) << "split " << split;
    ASSERT_TRUE(conn.Ingest(stream.data() + split, stream.size() - split))
        << "split " << split;
    EXPECT_EQ(std::string(conn.pending_output()), expected)
        << "split " << split;
  }
}

}  // namespace
}  // namespace pamakv::net
