#include "pamakv/util/fenwick.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "pamakv/util/rng.hpp"

namespace pamakv {
namespace {

TEST(FenwickTest, EmptyTreeSumsToZero) {
  FenwickTree t(16);
  EXPECT_EQ(t.PrefixSum(0), 0);
  EXPECT_EQ(t.PrefixSum(16), 0);
  EXPECT_EQ(t.Total(), 0);
}

TEST(FenwickTest, SingleUpdate) {
  FenwickTree t(8);
  t.Add(3, 5);
  EXPECT_EQ(t.PrefixSum(3), 0);
  EXPECT_EQ(t.PrefixSum(4), 5);
  EXPECT_EQ(t.PrefixSum(8), 5);
  EXPECT_EQ(t.RangeSum(3, 4), 5);
  EXPECT_EQ(t.RangeSum(0, 3), 0);
}

TEST(FenwickTest, NegativeDeltas) {
  FenwickTree t(8);
  t.Add(2, 3);
  t.Add(2, -1);
  EXPECT_EQ(t.RangeSum(2, 3), 2);
  t.Add(2, -2);
  EXPECT_EQ(t.Total(), 0);
}

TEST(FenwickTest, MatchesNaiveReferenceUnderRandomOps) {
  const std::size_t n = 64;
  FenwickTree t(n);
  std::vector<std::int64_t> ref(n, 0);
  Rng rng(99);
  for (int op = 0; op < 5000; ++op) {
    const std::size_t i = rng.NextBounded(n);
    const auto delta = static_cast<std::int64_t>(rng.NextBounded(21)) - 10;
    t.Add(i, delta);
    ref[i] += delta;
    // Verify a random range against the reference.
    std::size_t lo = rng.NextBounded(n + 1);
    std::size_t hi = rng.NextBounded(n + 1);
    if (lo > hi) std::swap(lo, hi);
    std::int64_t expect = 0;
    for (std::size_t k = lo; k < hi; ++k) expect += ref[k];
    ASSERT_EQ(t.RangeSum(lo, hi), expect) << "op " << op;
  }
}

TEST(FenwickTest, ResetClears) {
  FenwickTree t(8);
  t.Add(1, 10);
  t.Add(7, 2);
  t.Reset();
  EXPECT_EQ(t.Total(), 0);
  EXPECT_EQ(t.PrefixSum(8), 0);
}

TEST(FenwickTest, SizeReportsConstructedSize) {
  FenwickTree t(31);
  EXPECT_EQ(t.size(), 31u);
  FenwickTree empty;
  EXPECT_EQ(empty.size(), 0u);
}

}  // namespace
}  // namespace pamakv
