// Verifies the engine's steady-state hot path is allocation-free: once the
// cache has warmed up (item table, LRU node pools, ghost tables and hash
// index at their structural maxima), Get/Set/eviction cycles must not touch
// the heap. Guards against regressions like the node-allocating
// std::unordered_map the ghost lists used to carry.
//
// Allocation counting lives in alloc_count.cpp (shared with
// net_alloc_test, which extends the same discipline to the server's
// connection path).

#include <gtest/gtest.h>

#include <cstdint>

#include "alloc_count.hpp"
#include "pamakv/sim/experiment.hpp"
#include "pamakv/util/rng.hpp"

namespace pamakv {
namespace {

/// Drives `n` GET(+write-allocate SET) requests over a fixed key space whose
/// demand exceeds the cache, so hits, misses, evictions and ghost churn all
/// occur. Sizes and penalties are pure functions of the key.
void Drive(CacheEngine& engine, Rng& rng, std::uint64_t n) {
  constexpr KeyId kKeySpace = 20'000;
  for (std::uint64_t i = 0; i < n; ++i) {
    const KeyId key = rng.NextBounded(kKeySpace);
    const Bytes size = 64 + (Mix64(key) & 1023);
    const auto r = engine.Get(key, size, 1'000);
    if (!r.hit) engine.Set(key, size, 1'000);
  }
}

TEST(EngineAllocationTest, SteadyStateGetSetIsAllocationFree) {
  auto engine = MakeEngine("memcached", 8ULL * 1024 * 1024, SizeClassConfig{});
  Rng rng(7);
  // Warm until every pool reaches its structural maximum: the key space
  // oversubscribes the cache, so all classes saturate and the free lists,
  // node pools and index stop growing.
  Drive(*engine, rng, 400'000);

  const std::uint64_t before = test::AllocationCount();
  Drive(*engine, rng, 100'000);
  const std::uint64_t during =
      test::AllocationCount() - before;
  EXPECT_EQ(during, 0u)
      << "steady-state Get/Set allocated " << during << " times";
}

TEST(EngineAllocationTest, PamaAllocatesPerWindowNotPerRequest) {
  // PAMA rebuilds per-segment Bloom filters at window boundaries — that is
  // allowed. What must not happen is allocation scaling with requests.
  auto engine = MakeEngine("pama", 8ULL * 1024 * 1024, SizeClassConfig{});
  Rng rng(11);
  Drive(*engine, rng, 400'000);

  const std::uint64_t before = test::AllocationCount();
  constexpr std::uint64_t kRequests = 100'000;
  Drive(*engine, rng, kRequests);
  const std::uint64_t during =
      test::AllocationCount() - before;
  EXPECT_LT(during, kRequests / 100)
      << "PAMA hot path allocated " << during << " times in " << kRequests
      << " requests";
}

}  // namespace
}  // namespace pamakv
