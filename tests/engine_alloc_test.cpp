// Verifies the engine's steady-state hot path is allocation-free: once the
// cache has warmed up (item table, LRU node pools, ghost tables and hash
// index at their structural maxima), Get/Set/eviction cycles must not touch
// the heap. Guards against regressions like the node-allocating
// std::unordered_map the ghost lists used to carry.
//
// The global operator new/delete overrides below count every allocation in
// this test binary; they forward to malloc, so behavior is unchanged.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

#include "pamakv/sim/experiment.hpp"
#include "pamakv/util/rng.hpp"

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace pamakv {
namespace {

/// Drives `n` GET(+write-allocate SET) requests over a fixed key space whose
/// demand exceeds the cache, so hits, misses, evictions and ghost churn all
/// occur. Sizes and penalties are pure functions of the key.
void Drive(CacheEngine& engine, Rng& rng, std::uint64_t n) {
  constexpr KeyId kKeySpace = 20'000;
  for (std::uint64_t i = 0; i < n; ++i) {
    const KeyId key = rng.NextBounded(kKeySpace);
    const Bytes size = 64 + (Mix64(key) & 1023);
    const auto r = engine.Get(key, size, 1'000);
    if (!r.hit) engine.Set(key, size, 1'000);
  }
}

TEST(EngineAllocationTest, SteadyStateGetSetIsAllocationFree) {
  auto engine = MakeEngine("memcached", 8ULL * 1024 * 1024, SizeClassConfig{});
  Rng rng(7);
  // Warm until every pool reaches its structural maximum: the key space
  // oversubscribes the cache, so all classes saturate and the free lists,
  // node pools and index stop growing.
  Drive(*engine, rng, 400'000);

  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  Drive(*engine, rng, 100'000);
  const std::uint64_t during =
      g_allocations.load(std::memory_order_relaxed) - before;
  EXPECT_EQ(during, 0u)
      << "steady-state Get/Set allocated " << during << " times";
}

TEST(EngineAllocationTest, PamaAllocatesPerWindowNotPerRequest) {
  // PAMA rebuilds per-segment Bloom filters at window boundaries — that is
  // allowed. What must not happen is allocation scaling with requests.
  auto engine = MakeEngine("pama", 8ULL * 1024 * 1024, SizeClassConfig{});
  Rng rng(11);
  Drive(*engine, rng, 400'000);

  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  constexpr std::uint64_t kRequests = 100'000;
  Drive(*engine, rng, kRequests);
  const std::uint64_t during =
      g_allocations.load(std::memory_order_relaxed) - before;
  EXPECT_LT(during, kRequests / 100)
      << "PAMA hot path allocated " << during << " times in " << kRequests
      << " requests";
}

}  // namespace
}  // namespace pamakv
