// Facebook's slab re-balancer (Nishtala et al., NSDI'13; paper Sec. II):
// approximate one global LRU by balancing the age of each class's LRU item.
// If some class's LRU item is more than 20% younger than the average of the
// other classes' LRU ages, move a slab from the class with the oldest LRU
// item to the class with the youngest. Locality-only: size and penalty are
// ignored.
#pragma once

#include "pamakv/policy/policy.hpp"

namespace pamakv {

struct FacebookAgeConfig {
  /// Imbalance threshold (paper: 20%).
  double youth_threshold = 0.2;
  /// How often (in accesses) the balance check runs.
  AccessClock check_interval = 10'000;
};

class FacebookAgePolicy final : public AllocationPolicy {
 public:
  explicit FacebookAgePolicy(const FacebookAgeConfig& config = {})
      : config_(config) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return "facebook-age";
  }

  void OnTick(AccessClock now) override;
  [[nodiscard]] bool MakeRoom(ClassId cls, SubclassId sub) override;

 private:
  /// Runs one balance check; returns true if a slab moved.
  bool BalanceOnce(AccessClock now);

  FacebookAgeConfig config_;
  AccessClock last_check_ = 0;
};

}  // namespace pamakv
