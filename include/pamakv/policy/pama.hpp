// PAMA — Penalty Aware Memory Allocation (paper Sec. III).
//
// Every subclass's candidate (bottom) slab gets an *outgoing value*: the
// weighted miss penalty that would have materialized in the current access
// window had its near-bottom items not been cached (Eq. 1-2, weights
// 1/2^(i+1) over the candidate segment and m reference segments above it).
// Symmetrically, each subclass's ghost region yields an *incoming value*:
// the penalty a newly granted slab would have saved. On a miss that needs
// space, the globally cheapest candidate donates a slab to the requester —
// unless the requester's incoming value does not beat it (no migration;
// replace within) or the winner is the requester itself (evict one item).
//
// Two segment-attribution modes are provided:
//  * exact  — O(log n) stack ranks from the order-statistic LRU stacks
//             (ground truth; also what the tests verify against),
//  * bloom  — the paper's O(1) mechanism: per-segment Bloom filters plus a
//             removal filter, rebuilt at window boundaries.
//
// pre-PAMA (the paper's penalty-blind ablation) is this policy with
// penalty_aware = false (segment value = request count) and is normally run
// with a single penalty band.
#pragma once

#include <cstdint>
#include <memory>

#include "pamakv/policy/pama_value_tracker.hpp"
#include "pamakv/policy/policy.hpp"

namespace pamakv {

class PamaPolicy final : public AllocationPolicy {
 public:
  explicit PamaPolicy(const PamaConfig& config = {}) : config_(config) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return config_.penalty_aware ? "pama" : "pre-pama";
  }

  void Attach(CacheEngine& engine) override;
  void OnTick(AccessClock now) override;
  void OnHit(const Item& item) override;
  void OnMiss(KeyId key, Bytes size, MicroSecs penalty, ClassId cls,
              SubclassId sub) override;
  void OnEvict(const Item& item) override;
  [[nodiscard]] bool MakeRoom(ClassId cls, SubclassId sub) override;

  [[nodiscard]] const PamaConfig& config() const noexcept { return config_; }
  [[nodiscard]] const PamaValueTracker& tracker() const noexcept {
    return *tracker_;
  }

  /// Decision counters (tests + EXPERIMENTS diagnostics).
  struct Decisions {
    std::uint64_t migrations = 0;       ///< cross-class slab transfers
    std::uint64_t intra_class = 0;      ///< winner in same class, other subclass
    std::uint64_t self_evictions = 0;   ///< winner was the requester
    std::uint64_t suppressed = 0;       ///< incoming value too small
    std::uint64_t refusals = 0;         ///< empty low-value subclass; store refused
  };
  [[nodiscard]] const Decisions& decisions() const noexcept { return decisions_; }

  /// Running view of the value comparison at each MakeRoom decision —
  /// what the candidate donor's outgoing value was, what the requester's
  /// incoming value was, and (summed over *executed* migrations) the
  /// estimated penalty mass saved relative to not moving the slab. This
  /// is the live counterpart of the paper's penalty-saved argument; the
  /// metrics layer exports the sums and the last comparison as gauges.
  struct ValueFlow {
    std::uint64_t decisions = 0;         ///< MakeRoom calls with a donor
    double outgoing_sum = 0.0;           ///< Σ donor outgoing value
    double incoming_sum = 0.0;           ///< Σ requester incoming value
    /// Σ (incoming - outgoing) over migrations actually performed: the
    /// penalty-saved-vs-staying-put estimate, in weighted penalty µs.
    double migration_benefit_sum = 0.0;
    double last_outgoing = 0.0;
    double last_incoming = 0.0;
  };
  [[nodiscard]] const ValueFlow& value_flow() const noexcept {
    return value_flow_;
  }

  /// Slabs migrated from a donor in penalty band `from` to a requester in
  /// band `to` (bands collapse classes: the paper's Fig. 3/4 story is
  /// about penalty bands gaining space from low-penalty bands).
  [[nodiscard]] std::uint64_t MigrationFlow(SubclassId from,
                                            SubclassId to) const {
    return migration_flow_[static_cast<std::size_t>(from) * num_bands_ + to];
  }
  [[nodiscard]] std::uint32_t flow_bands() const noexcept { return num_bands_; }

 private:
  struct Candidate {
    ClassId cls = 0;
    SubclassId sub = 0;
    double value = 0.0;
  };
  [[nodiscard]] std::optional<Candidate> CheapestDonor() const;

  PamaConfig config_;
  std::unique_ptr<PamaValueTracker> tracker_;
  Decisions decisions_;
  ValueFlow value_flow_;
  /// band × band migration counts, row-major by source band.
  std::vector<std::uint64_t> migration_flow_;
  std::uint32_t num_bands_ = 0;
  AccessClock window_start_ = 0;
  AccessClock now_ = 0;
  /// Access clock of each subclass's most recent slab grant (grace period).
  std::vector<AccessClock> last_granted_;
};

}  // namespace pamakv
