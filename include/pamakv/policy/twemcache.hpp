// Twemcache random slab reassignment (Twitter; paper Sec. II): when a class
// misses with no free space, take a slab from a uniformly random class and
// give it to the missing class, spreading misses evenly regardless of how
// efficiently the donor was using the space.
#pragma once

#include "pamakv/policy/policy.hpp"
#include "pamakv/util/rng.hpp"

namespace pamakv {

class TwemcachePolicy final : public AllocationPolicy {
 public:
  explicit TwemcachePolicy(std::uint64_t seed = 0xdecafbadULL) : rng_(seed) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return "twemcache";
  }

  [[nodiscard]] bool MakeRoom(ClassId cls, SubclassId sub) override;

 private:
  Rng rng_;
};

}  // namespace pamakv
