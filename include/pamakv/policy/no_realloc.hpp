// Original Memcached (paper Sec. II, "earlier versions of Memcached"):
// slabs are assigned to classes on first demand while free memory lasts and
// never move afterwards. Once memory is exhausted a class replaces within
// itself (LRU); a class that owns no slab at that point can never store —
// exactly the under-utilization the paper motivates with.
#pragma once

#include "pamakv/policy/policy.hpp"

namespace pamakv {

class NoReallocPolicy final : public AllocationPolicy {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "memcached";
  }

  [[nodiscard]] bool MakeRoom(ClassId cls, SubclassId sub) override;
};

}  // namespace pamakv
