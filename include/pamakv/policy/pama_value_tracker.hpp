// PamaValueTracker: per-subclass segment-value bookkeeping for PAMA.
//
// For each (class, subclass) it maintains m+1 in-cache segment values (the
// candidate slab's segment plus the m reference segments above it) and m+1
// ghost segment values (the receiving segment plus m beneath). A request's
// contribution is its miss penalty (PAMA) or 1 (pre-PAMA). Values live in
// tumbling windows of `window_accesses` accesses; an optional exponential
// carry-over (`value_decay`) smooths window edges — 0 reproduces the paper.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "pamakv/bloom/segment_filters.hpp"
#include "pamakv/cache/cache_engine.hpp"
#include "pamakv/util/types.hpp"

namespace pamakv {

struct PamaConfig {
  /// m — reference segments beyond the candidate/receiving segment.
  std::size_t reference_segments = 2;
  /// Window length in accesses (the paper's logical time).
  AccessClock window_accesses = 100'000;
  /// false => pre-PAMA (value = request count, penalty ignored).
  bool penalty_aware = true;
  /// true => the paper's Bloom-filter attribution; false => exact ranks.
  bool use_bloom = true;
  double bloom_fpr = 0.01;
  /// Fraction of each value carried into the next window (0 = paper).
  /// Nonzero decay densifies the value signal at scaled-down slab sizes;
  /// see DESIGN.md resolution 4 and bench/ablation_window.
  double value_decay = 0.9;
  /// A subclass that received a slab within this many accesses cannot
  /// donate: its new slab has had no time to accumulate segment value, so
  /// without a grace period it is always the global minimum and bounces
  /// straight back out (slab thrashing, Sec. III). 0 disables.
  AccessClock donor_grace_accesses = 100'000;
};

class PamaValueTracker {
 public:
  PamaValueTracker(const PamaConfig& config, const CacheEngine& engine);

  /// Attribution of a hit to the bottom segments (called pre-promotion).
  void OnHit(const CacheEngine& engine, const Item& item);

  /// Eviction notification: in Bloom mode the key leaves the snapshot region.
  void OnEvict(const Item& item);

  /// A miss found its key in subclass (c,s)'s ghost list, inside ghost
  /// segment `ghost_segment` (0 == the receiving segment). Segments beyond
  /// the tracked range are ignored.
  void OnGhostHit(ClassId c, SubclassId s, std::size_t ghost_segment,
                  MicroSecs penalty);

  /// Window rotation: decays values and (in Bloom mode) rebuilds the
  /// segment filters from the current stack bottoms.
  void RotateWindow(CacheEngine& engine);

  /// Weighted outgoing value of the candidate slab (Eq. 2).
  [[nodiscard]] double OutgoingValue(ClassId c, SubclassId s) const;
  /// Weighted incoming value of a prospective new slab.
  [[nodiscard]] double IncomingValue(ClassId c, SubclassId s) const;

  // Raw per-segment sums, for tests and the fig. 4 diagnostics.
  [[nodiscard]] double SegmentValue(ClassId c, SubclassId s, std::size_t i) const;
  [[nodiscard]] double GhostSegmentValue(ClassId c, SubclassId s,
                                         std::size_t i) const;

  [[nodiscard]] std::size_t segments() const noexcept { return segments_; }

  /// Total Bloom-filter memory (space-overhead reporting); 0 in exact mode.
  [[nodiscard]] std::size_t FilterFootprintBytes() const noexcept;

 private:
  struct SubclassState {
    std::vector<double> seg_values;
    std::vector<double> ghost_values;
    std::unique_ptr<SegmentFilterSet> filters;  // bloom mode only
  };

  [[nodiscard]] std::size_t Index(ClassId c, SubclassId s) const noexcept {
    return static_cast<std::size_t>(c) * num_subclasses_ + s;
  }
  [[nodiscard]] double ValueOf(MicroSecs penalty) const noexcept {
    return config_.penalty_aware ? static_cast<double>(penalty) : 1.0;
  }
  [[nodiscard]] double Weighted(const std::vector<double>& values) const noexcept;

  PamaConfig config_;
  std::size_t segments_;  // m + 1
  std::uint32_t num_subclasses_;
  std::vector<SubclassState> state_;
};

}  // namespace pamakv
