// AllocationPolicy: the decision layer over CacheEngine's slab mechanics.
//
// The engine notifies the policy of every event it might base a decision
// on, then calls MakeRoom() when a store needs a slot that neither the
// class's free slots nor the global free-slab pool can provide. A policy
// answers MakeRoom by composing the engine's primitive moves (EvictBottom,
// EvictClassLru, MigrateSlab) until a slot in the requesting class is free.
//
// Callback contract (ordering matters for PAMA's rank bookkeeping):
//  * OnTick     — once per request, before the request is processed.
//  * OnHit      — before the item is promoted to the stack top, so the
//                 policy observes the pre-promotion stack position.
//  * OnMiss     — for a GET whose key is absent; ghost consultation happens
//                 here. The (size, penalty) are the trace's values for the
//                 key being re-fetched.
//  * OnInsert   — after a new item landed in its stack (top position).
//  * OnEvict    — before the item's metadata is recycled; the item is still
//                 intact but already off its stack.
#pragma once

#include <string_view>

#include "pamakv/cache/cache_engine.hpp"
#include "pamakv/util/types.hpp"

namespace pamakv {

class AllocationPolicy {
 public:
  virtual ~AllocationPolicy() = default;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// Called once, after the engine is fully constructed.
  virtual void Attach(CacheEngine& engine) { engine_ = &engine; }

  virtual void OnTick(AccessClock /*now*/) {}
  virtual void OnHit(const Item& /*item*/) {}
  virtual void OnMiss(KeyId /*key*/, Bytes /*size*/, MicroSecs /*penalty*/,
                      ClassId /*cls*/, SubclassId /*sub*/) {}
  virtual void OnInsert(const Item& /*item*/) {}
  virtual void OnEvict(const Item& /*item*/) {}

  /// Make at least one slot available in class `cls` (the store that
  /// triggered this targets subclass `sub`). Returns false to refuse the
  /// store (original Memcached does this when the class owns no slab and
  /// all memory is assigned elsewhere).
  [[nodiscard]] virtual bool MakeRoom(ClassId cls, SubclassId sub) = 0;

 protected:
  [[nodiscard]] CacheEngine& engine() noexcept { return *engine_; }
  [[nodiscard]] const CacheEngine& engine() const noexcept { return *engine_; }

 private:
  CacheEngine* engine_ = nullptr;
};

}  // namespace pamakv
