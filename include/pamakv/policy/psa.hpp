// PSA — Periodic Slab Allocation (Carra & Michiardi; paper Sec. II).
//
// Every M misses, one slab is relocated from the class with the lowest
// request density (requests per slab in the current observation window) to
// the class that recorded the most misses in that window. PSA normalizes
// requests by space, so item size participates in the decision, but miss
// penalty does not — the deficiency PAMA targets.
#pragma once

#include <cstdint>
#include <vector>

#include "pamakv/policy/policy.hpp"

namespace pamakv {

struct PsaConfig {
  /// Relocations are considered every `misses_per_relocation` misses (the
  /// paper's predefined constant M).
  std::uint64_t misses_per_relocation = 2000;
  /// Observation window (accesses) over which requests/misses are counted.
  AccessClock window_accesses = 100'000;
};

class PsaPolicy final : public AllocationPolicy {
 public:
  explicit PsaPolicy(const PsaConfig& config = {}) : config_(config) {}

  [[nodiscard]] std::string_view name() const noexcept override { return "psa"; }

  void Attach(CacheEngine& engine) override;
  void OnTick(AccessClock now) override;
  void OnHit(const Item& item) override;
  void OnMiss(KeyId key, Bytes size, MicroSecs penalty, ClassId cls,
              SubclassId sub) override;
  [[nodiscard]] bool MakeRoom(ClassId cls, SubclassId sub) override;

  // Introspection for tests.
  [[nodiscard]] std::uint64_t WindowRequests(ClassId c) const {
    return requests_.at(c);
  }
  [[nodiscard]] std::uint64_t WindowMisses(ClassId c) const {
    return misses_.at(c);
  }

 private:
  /// Performs the periodic relocation if one is due.
  void MaybeRelocate();
  [[nodiscard]] std::optional<ClassId> LowestDensityDonor() const;

  PsaConfig config_;
  std::vector<std::uint64_t> requests_;
  std::vector<std::uint64_t> misses_;
  std::uint64_t misses_since_relocation_ = 0;
  AccessClock window_start_ = 0;
};

}  // namespace pamakv
