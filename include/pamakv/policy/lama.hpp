// LAMA-style allocator (Hu et al., USENIX ATC'15 — the paper's related work
// [9]), provided as an extension comparator. It builds per-class miss-ratio
// curves from exact LRU stack depths (our order-statistic stacks make the
// Mattson histogram free) and periodically solves for the slab partition
// that maximizes either total hits (LAMA-HR) or total avoided miss penalty
// approximated with per-depth penalty mass (LAMA-ST) via dynamic
// programming at a configurable slab granularity. Slabs then drift toward
// the target: each MakeRoom pulls one slab from the most over-allocated
// donor when the requester is under target.
//
// Contrast with PAMA (Sec. II discussion): LAMA optimizes from whole-curve
// averages of the previous window, while PAMA prices individual slabs with
// their actual constituent penalties.
#pragma once

#include <cstdint>
#include <vector>

#include "pamakv/policy/policy.hpp"

namespace pamakv {

struct LamaConfig {
  AccessClock window_accesses = 200'000;
  /// DP granularity in slabs (LAMA's repartitioning unit).
  std::size_t granularity_slabs = 8;
  /// true: maximize penalty mass caught (LAMA-ST); false: maximize hits.
  bool penalty_weighted = true;
  /// Blend factor for histories across windows (1 = only last window).
  double history_alpha = 0.7;
};

class LamaPolicy final : public AllocationPolicy {
 public:
  explicit LamaPolicy(const LamaConfig& config = {}) : config_(config) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return config_.penalty_weighted ? "lama-st" : "lama-hr";
  }

  void Attach(CacheEngine& engine) override;
  void OnTick(AccessClock now) override;
  void OnHit(const Item& item) override;
  [[nodiscard]] bool MakeRoom(ClassId cls, SubclassId sub) override;

  /// Current DP target allocation (slabs per class); for tests/diagnostics.
  [[nodiscard]] const std::vector<std::size_t>& target() const noexcept {
    return target_;
  }

 private:
  void Repartition();

  LamaConfig config_;
  /// hist_[c][d]: value mass of hits at stack depth d slabs in class c.
  std::vector<std::vector<double>> hist_;
  std::vector<std::size_t> target_;
  AccessClock window_start_ = 0;
};

}  // namespace pamakv
