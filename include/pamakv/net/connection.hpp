// Connection: per-client protocol state machine with reusable buffers.
//
// The byte-level core is socket-free: Ingest() accepts whatever fragment
// of the request stream just arrived (any split, any garbage), consumes
// complete commands, and appends responses to the output buffer. The
// event loop wraps it with nonblocking read/write; tests drive Ingest()
// directly, which is also how the zero-allocation harness measures the
// read→parse→respond path without socket noise.
//
// Buffer discipline: one receive and one transmit vector per connection,
// trimmed by moving a consumed-offset and compacted by memmove — they
// grow to the connection's high-water mark once and are then reused, so
// steady-state request handling performs no heap allocation (the same
// rule PR 1 enforced inside the engine).
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "pamakv/net/protocol.hpp"
#include "pamakv/util/clock.hpp"
#include "pamakv/util/metrics.hpp"

namespace pamakv::net {

class CacheService;

/// Shared per-server instrumentation hooks a Connection records into.
/// All pointers may be null (that series is simply not recorded); the
/// whole struct is optional — a connection without one (the default, and
/// what the zero-allocation harness drives) takes no timestamps at all.
/// Histogram::Observe is wait-free, so one struct is safely shared by
/// every connection across all loop threads.
struct ConnectionMetrics {
  util::Clock* clock = nullptr;
  /// Service time per command verb, µs: command dispatch through response
  /// bytes appended (for `set`, payload completion through STORED).
  util::Histogram* service_us[kNumVerbs] = {};
};

/// Socket-facing result of OnReadable/FlushOutput.
enum class IoStatus : std::uint8_t {
  kOk,        ///< progress made, keep the connection
  kWouldBlock,///< kernel buffer empty/full, retry on the next event
  kClosed,    ///< peer closed or protocol demands close
};

class Connection {
 public:
  /// fd < 0 builds a detached connection (tests, alloc harness).
  explicit Connection(CacheService& service, int fd = -1);
  ~Connection();

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  /// Feeds raw bytes into the state machine. Returns false when the
  /// connection must close (quit, fatal protocol violation); pending
  /// output should still be flushed first.
  bool Ingest(const char* data, std::size_t n);

  /// Unsent response bytes (test access; the loop uses FlushOutput).
  [[nodiscard]] std::string_view pending_output() const noexcept {
    return {tx_.data() + tx_head_, tx_.size() - tx_head_};
  }
  /// Drops `n` bytes of pending output (tests; FlushOutput does this
  /// after write()).
  void ConsumeOutput(std::size_t n);

  // ---- socket plumbing (fd >= 0 only) ----
  [[nodiscard]] int fd() const noexcept { return fd_; }
  /// Reads until EAGAIN/EOF, ingesting as it goes. Stops early (returns
  /// kOk, bytes left in the kernel buffer) once the tx backlog reaches
  /// the pause threshold — backpressure starts inside a single read
  /// burst, not only between epoll rounds.
  IoStatus OnReadable();
  /// Writes pending output until EAGAIN or drained.
  IoStatus FlushOutput();
  [[nodiscard]] bool wants_write() const noexcept {
    return tx_head_ < tx_.size();
  }
  /// Unsent response bytes (the backpressure watermark input).
  [[nodiscard]] std::size_t tx_backlog() const noexcept {
    return tx_.size() - tx_head_;
  }
  /// True once Ingest decided the connection should close.
  [[nodiscard]] bool closing() const noexcept { return closing_; }

  // ---- lifecycle state (owned by the serving loop; see server.cpp) ----
  /// A request is in flight: a partial command line, a set awaiting its
  /// payload, or an oversized payload still being swallowed.
  [[nodiscard]] bool mid_request() const noexcept {
    return awaiting_data_ || discard_remaining_ > 0 || rx_head_ < rx_.size();
  }
  /// Records I/O activity at `now_ns` and tracks when the current
  /// in-flight request started (-1 when none is in flight; 0 is a valid
  /// timestamp under an injected clock).
  void Touch(std::int64_t now_ns) noexcept {
    last_activity_ns_ = now_ns;
    if (mid_request()) {
      if (request_start_ns_ < 0) request_start_ns_ = now_ns;
    } else {
      request_start_ns_ = -1;
    }
  }
  [[nodiscard]] std::int64_t last_activity_ns() const noexcept {
    return last_activity_ns_;
  }
  [[nodiscard]] std::int64_t request_start_ns() const noexcept {
    return request_start_ns_;
  }

  /// Backpressure: while paused the loop deregisters EPOLLIN and
  /// OnReadable refuses to ingest more, until the backlog drains below
  /// the low-water mark.
  [[nodiscard]] bool paused() const noexcept { return paused_; }
  void set_paused(bool paused) noexcept { paused_ = paused; }
  /// tx backlog at which OnReadable stops pulling bytes (0 = never).
  void set_pause_threshold(std::size_t bytes) noexcept {
    pause_threshold_ = bytes;
  }

  /// Wires the per-verb latency hooks (nullptr disables; the default).
  /// The struct must outlive the connection — the Server owns one.
  void set_metrics(const ConnectionMetrics* metrics) noexcept {
    metrics_ = metrics;
  }

  /// Scratch slots for the serving loop's per-connection lifecycle timer
  /// (the Connection itself never touches the loop).
  std::uint64_t lifecycle_timer = 0;
  std::int64_t armed_deadline_ns = 0;

 private:
  /// Consumes as many complete commands as the buffer holds.
  void ProcessBuffer();
  /// Executes one parsed command line; may switch to data mode for set.
  void ExecuteLine(const Command& cmd);
  void ExecuteRetrieval(const Command& cmd);
  void FinishSet(std::string_view data);
  /// Records `verb`'s service time from `start_ns` to now, when wired.
  void ObserveVerb(Verb verb, std::int64_t start_ns) noexcept;
  void ReleaseConsumed();
  void FatalClientError(std::string_view message);

  CacheService* service_;
  int fd_;
  std::vector<char> rx_;
  std::size_t rx_head_ = 0;   ///< first unconsumed byte in rx_
  std::size_t rx_scan_ = 0;   ///< resume offset for the newline scan
  std::vector<char> tx_;
  std::size_t tx_head_ = 0;   ///< first unsent byte in tx_

  // Pending `set`: command line seen, waiting for <bytes>CRLF of payload.
  // The key is copied out of rx_ because the buffer may grow/compact
  // while we wait for the rest of the payload.
  bool awaiting_data_ = false;
  char pending_key_[kMaxKeyBytes];
  std::size_t pending_key_len_ = 0;
  std::uint32_t pending_flags_ = 0;
  std::uint64_t pending_bytes_ = 0;
  bool pending_noreply_ = false;
  /// Oversized set: swallow this many raw bytes without buffering them.
  std::uint64_t discard_remaining_ = 0;
  bool closing_ = false;

  std::int64_t last_activity_ns_ = 0;
  std::int64_t request_start_ns_ = -1;  ///< -1: no request in flight
  bool paused_ = false;
  std::size_t pause_threshold_ = 0;
  const ConnectionMetrics* metrics_ = nullptr;
};

}  // namespace pamakv::net
