// Server: TCP front end binding CacheService to the memcached protocol.
//
// One nonblocking listen socket + N event-loop threads. The acceptor runs
// on loop 0 and hands each accepted connection to a loop round-robin (via
// EventLoop::Post, so every connection is owned and touched by exactly
// one loop thread); request handling then locks only the CacheService
// shard the key routes to. Start() with port 0 binds an ephemeral port —
// port() reports the real one, which is how the in-process integration
// tests run against real sockets without fixed-port collisions.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "pamakv/net/connection.hpp"
#include "pamakv/net/event_loop.hpp"

namespace pamakv::net {

class CacheService;

struct ServerConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 11211;  ///< 0 => ephemeral, see Server::port()
  std::size_t threads = 1;     ///< event-loop threads
};

class Server {
 public:
  Server(const ServerConfig& config, CacheService& service);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens and spawns the loop threads. Throws std::system_error
  /// on socket errors (e.g. port in use).
  void Start();
  /// Stops the loops, joins the threads, closes every connection. Safe to
  /// call twice; the destructor calls it.
  void Stop();

  /// Actual bound port (differs from config when config.port == 0).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  [[nodiscard]] std::uint64_t total_connections() const noexcept {
    return total_connections_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t curr_connections() const noexcept {
    return curr_connections_.load(std::memory_order_relaxed);
  }

 private:
  /// Per-loop world: the loop, its thread, and the connections it owns.
  struct Loop {
    EventLoop loop;
    std::thread thread;
    std::unordered_map<int, std::unique_ptr<Connection>> conns;
  };

  void Accept();
  void Register(Loop& loop, int fd);
  void HandleEvents(Loop& loop, Connection& conn, std::uint32_t events);
  void CloseConnection(Loop& loop, int fd);

  ServerConfig config_;
  CacheService* service_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  bool started_ = false;
  std::vector<std::unique_ptr<Loop>> loops_;
  std::atomic<std::size_t> next_loop_{0};
  std::atomic<std::uint64_t> total_connections_{0};
  std::atomic<std::uint64_t> curr_connections_{0};
};

}  // namespace pamakv::net
