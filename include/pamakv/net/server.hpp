// Server: TCP front end binding CacheService to the memcached protocol.
//
// One nonblocking listen socket + N event-loop threads. The acceptor runs
// on loop 0 and hands each accepted connection to a loop round-robin (via
// EventLoop::Post, so every connection is owned and touched by exactly
// one loop thread); request handling then locks only the CacheService
// shard the key routes to. Start() with port 0 binds an ephemeral port —
// port() reports the real one, which is how the in-process integration
// tests run against real sockets without fixed-port collisions.
//
// Connection lifecycle (all knobs in ServerConfig, all off by default
// except backpressure; every behavior is exercised under a FakeClock in
// tests/net_server_test.cpp):
//
//  * accept limits — at max_conns the acceptor sheds the new socket with
//    "SERVER_ERROR too many connections" before closing it;
//  * idle reaping — a per-connection timer closes a connection exactly
//    idle_timeout_ms after its last I/O activity;
//  * request deadline — a connection mid-request (partial command line or
//    a set awaiting payload) is closed request_timeout_ms after the
//    request's first byte, so a stalled sender cannot pin buffers;
//  * tx backpressure — once the unsent response backlog reaches
//    tx_pause_bytes the loop stops reading the client (EPOLLIN off) until
//    it drains to tx_resume_bytes; a backlog above tx_cap_bytes
//    hard-closes the connection;
//  * graceful drain — Shutdown(grace) stops accepting, lets in-flight
//    requests complete and tx buffers flush, then force-closes whatever
//    remains when the grace deadline (on the injected clock) expires.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "pamakv/net/connection.hpp"
#include "pamakv/net/event_loop.hpp"
#include "pamakv/util/clock.hpp"
#include "pamakv/util/metrics.hpp"

namespace pamakv::net {

class CacheService;

struct ServerConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 11211;  ///< 0 => ephemeral, see Server::port()
  std::size_t threads = 1;     ///< event-loop threads

  // ---- lifecycle knobs ----
  std::size_t max_conns = 0;          ///< shed accepts above this (0 = off)
  std::int64_t idle_timeout_ms = 0;   ///< reap idle connections (0 = off)
  std::int64_t request_timeout_ms = 0;  ///< in-flight request cap (0 = off)
  std::size_t tx_pause_bytes = 256 * 1024;   ///< stop reading above (0 = off)
  std::size_t tx_resume_bytes = 64 * 1024;   ///< resume reading below
  std::size_t tx_cap_bytes = 0;       ///< hard-close above (0 = off)
  /// How long the acceptor stays disarmed after an accept error that
  /// cannot be shed (fd/memory exhaustion) before retrying. See Accept().
  std::int64_t accept_retry_ms = 10;
  /// Clock for timers/timeouts; nullptr => the real SteadyClock. Tests
  /// inject a FakeClock and drive every timeout with Advance().
  util::Clock* clock = nullptr;
};

class Server {
 public:
  Server(const ServerConfig& config, CacheService& service);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Wires per-verb service-time histograms (pamakv_service_time_us{verb}),
  /// the tx-flush histogram (pamakv_tx_flush_us) and connection gauges
  /// into `registry`. Call before Start(); `registry` must outlive the
  /// server. Connections accepted afterwards record into the histograms.
  void EnableMetrics(util::MetricsRegistry& registry);

  /// Binds, listens and spawns the loop threads. Throws std::system_error
  /// on socket errors (e.g. port in use).
  void Start();
  /// Stops the loops, joins the threads, closes every connection
  /// immediately (in-flight requests are dropped). Safe to call twice;
  /// the destructor calls it.
  void Stop();
  /// Graceful drain: stops accepting, lets every connection finish its
  /// in-flight request and flush its tx buffer, closing each as it goes
  /// quiescent; connections still busy when `grace` expires (on the
  /// configured clock) are force-closed. Blocks until the loops are down
  /// and returns true when the drain completed without force-closing.
  bool Shutdown(std::chrono::milliseconds grace);
  /// True once Shutdown has marked every loop draining (and armed the
  /// grace deadline) — the point from which a test may Advance() a fake
  /// clock to trigger the forced path.
  [[nodiscard]] bool draining() const noexcept {
    return draining_.load(std::memory_order_acquire);
  }

  /// Actual bound port (differs from config when config.port == 0).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  [[nodiscard]] std::uint64_t total_connections() const noexcept {
    return total_connections_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t curr_connections() const noexcept {
    return curr_connections_.load(std::memory_order_relaxed);
  }
  /// Accepts shed with SERVER_ERROR because max_conns was reached.
  [[nodiscard]] std::uint64_t rejected_connections() const noexcept {
    return rejected_connections_.load(std::memory_order_relaxed);
  }
  /// Connections closed by the idle/request deadline timers.
  [[nodiscard]] std::uint64_t timed_out_connections() const noexcept {
    return timed_out_connections_.load(std::memory_order_relaxed);
  }
  /// Connections hard-closed for exceeding tx_cap_bytes.
  [[nodiscard]] std::uint64_t overflow_closes() const noexcept {
    return overflow_closes_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t backpressure_pauses() const noexcept {
    return backpressure_pauses_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t backpressure_resumes() const noexcept {
    return backpressure_resumes_.load(std::memory_order_relaxed);
  }
  /// Connections accepted through the reserved fd and shed with
  /// "SERVER_ERROR out of file descriptors" during EMFILE/ENFILE.
  [[nodiscard]] std::uint64_t emfile_sheds() const noexcept {
    return emfile_sheds_.load(std::memory_order_relaxed);
  }
  /// Times the acceptor disarmed itself (accept_retry_ms backoff) because
  /// an accept error could not be shed.
  [[nodiscard]] std::uint64_t accept_pauses() const noexcept {
    return accept_pauses_.load(std::memory_order_relaxed);
  }
  /// Connections dropped because their handler threw (bad_alloc during
  /// registration or request processing).
  [[nodiscard]] std::uint64_t error_closes() const noexcept {
    return error_closes_.load(std::memory_order_relaxed);
  }
  /// epoll_wait returns summed across the loop threads; a bounded delta
  /// while the server sits in an error state proves nothing busy-spins.
  /// Valid only while the server is running.
  [[nodiscard]] std::uint64_t LoopIterations() const;

  /// Connections currently mid-request, summed across loops (blocks on a
  /// round-trip through every loop thread; valid only while running).
  [[nodiscard]] std::size_t MidRequestConnections();

  /// Appends the server-level "STAT name value" lines (connection and
  /// lifecycle counters) — wired into the `stats` command via
  /// CacheService::SetExtraStats.
  void AppendServerStats(std::vector<char>& out) const;

 private:
  /// Per-loop world: the loop, its thread, and the connections it owns.
  struct Loop {
    explicit Loop(util::Clock& clock) : loop(clock) {}
    EventLoop loop;
    std::thread thread;
    std::unordered_map<int, std::unique_ptr<Connection>> conns;
    bool draining = false;  ///< loop-thread only
  };

  void Accept();
  /// EMFILE/ENFILE: momentarily releases the reserved fd so one accept
  /// can succeed, sheds that connection with an explanation, and retakes
  /// the reserve. Returns false when accept still failed (shedding is
  /// impossible; the caller must disarm instead).
  bool ShedOverflowAccept();
  /// Deregisters the listener and re-arms it accept_retry_ms later — a
  /// listener left readable under level-triggered epoll would otherwise
  /// spin the loop at 100% CPU until fds freed up.
  void PauseAccepting();
  void Register(Loop& loop, int fd);
  void HandleEvents(Loop& loop, Connection& conn, std::uint32_t events);
  void CloseConnection(Loop& loop, int fd);
  /// Earliest idle/request deadline for `conn`, 0 when none applies.
  [[nodiscard]] std::int64_t NextDeadlineNs(const Connection& conn) const;
  /// (Re)arms the per-connection lifecycle timer when the next deadline
  /// moved earlier than what is armed; timers are otherwise lazy — they
  /// fire, recheck against fresh timestamps, and re-arm.
  void ArmLifecycleTimer(Loop& loop, Connection& conn);
  void OnLifecycleTimer(Loop& loop, int fd);
  /// Joins loop threads and releases sockets/maps (Stop and Shutdown
  /// converge here).
  void Teardown();

  ServerConfig config_;
  CacheService* service_;
  util::Clock* clock_;
  /// Latency hooks shared by every connection; inert until EnableMetrics
  /// fills it (clock_ set <=> enabled).
  ConnectionMetrics conn_metrics_;
  util::Histogram* tx_flush_us_ = nullptr;
  int listen_fd_ = -1;
  /// Reserved fd (an open /dev/null) sacrificed during EMFILE so accept
  /// can momentarily succeed; -1 outside Start..Teardown.
  int spare_fd_ = -1;
  std::uint16_t port_ = 0;
  bool started_ = false;
  std::vector<std::unique_ptr<Loop>> loops_;
  std::atomic<std::size_t> next_loop_{0};
  std::atomic<bool> draining_{false};
  std::atomic<bool> drain_forced_{false};
  std::atomic<std::uint64_t> total_connections_{0};
  std::atomic<std::uint64_t> curr_connections_{0};
  std::atomic<std::uint64_t> rejected_connections_{0};
  std::atomic<std::uint64_t> timed_out_connections_{0};
  std::atomic<std::uint64_t> overflow_closes_{0};
  std::atomic<std::uint64_t> backpressure_pauses_{0};
  std::atomic<std::uint64_t> backpressure_resumes_{0};
  std::atomic<std::uint64_t> emfile_sheds_{0};
  std::atomic<std::uint64_t> accept_pauses_{0};
  std::atomic<std::uint64_t> error_closes_{0};
};

}  // namespace pamakv::net
