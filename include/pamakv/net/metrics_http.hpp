// MetricsHttpServer: a tiny HTTP/1.0 endpoint serving the metrics registry
// in Prometheus text exposition format (version 0.0.4), plus an optional
// periodic CSV dump of the same snapshot.
//
// It reuses the EventLoop reactor on its own single thread, deliberately
// separate from the cache server's loops: a scrape must never contend with
// request traffic, and a wedged exporter must never take down the data
// path. The protocol support is the minimum Prometheus needs — one GET per
// connection, response, close. `GET /metrics` (any query string) returns
// the exposition; any other target returns 404. Requests are bounded to
// kMaxRequestBytes and a malformed or oversized request closes the socket.
//
// Snapshots are taken on the loop thread at response- or dump-time; the
// registry's callback gauges therefore run on this thread and must take
// their own locks (CacheService registers gauges that lock the shard they
// read — see CacheService::RegisterMetrics).
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "pamakv/net/event_loop.hpp"
#include "pamakv/util/clock.hpp"
#include "pamakv/util/metrics.hpp"

namespace pamakv::net {

struct MetricsHttpConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 => ephemeral, see MetricsHttpServer::port()
  /// Period of the CSV dump timer; 0 disables dumping.
  std::int64_t dump_ms = 0;
  /// File the CSV rows are appended to (created with a header when absent).
  std::string dump_path = "results/metrics.csv";
  /// Clock for the dump timer and the CSV elapsed-ms column; nullptr =>
  /// the real SteadyClock. Tests inject a FakeClock and Advance() it.
  util::Clock* clock = nullptr;
};

class MetricsHttpServer {
 public:
  MetricsHttpServer(const MetricsHttpConfig& config,
                    util::MetricsRegistry& registry);
  ~MetricsHttpServer();

  MetricsHttpServer(const MetricsHttpServer&) = delete;
  MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

  /// Binds, listens, spawns the loop thread and arms the dump timer.
  /// Throws std::system_error on socket errors.
  void Start();
  /// Stops the loop, joins the thread, closes all sockets. Safe to call
  /// twice; the destructor calls it.
  void Stop();

  /// Actual bound port (differs from config when config.port == 0).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  /// Scrapes served with 200 (thread-safe; tests + ops visibility).
  [[nodiscard]] std::uint64_t scrapes() const noexcept {
    return scrapes_.load(std::memory_order_relaxed);
  }
  /// CSV dump rounds completed (thread-safe).
  [[nodiscard]] std::uint64_t dumps() const noexcept {
    return dumps_.load(std::memory_order_relaxed);
  }

  /// A request line larger than this closes the connection unanswered.
  static constexpr std::size_t kMaxRequestBytes = 4096;

 private:
  struct Conn {
    std::string rx;
    std::string tx;
    std::size_t tx_off = 0;
  };

  void Accept();
  void HandleConn(int fd, std::uint32_t events);
  /// True once rx holds a full request head; fills `target`.
  static bool ParseRequest(const std::string& rx, std::string& target);
  [[nodiscard]] std::string BuildResponse(const std::string& target);
  void CloseConn(int fd);
  void DumpCsv();

  MetricsHttpConfig config_;
  util::MetricsRegistry* registry_;
  util::Clock* clock_;
  std::unique_ptr<EventLoop> loop_;
  std::thread thread_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  bool started_ = false;
  std::int64_t start_ns_ = 0;
  std::unordered_map<int, Conn> conns_;
  std::atomic<std::uint64_t> scrapes_{0};
  std::atomic<std::uint64_t> dumps_{0};
};

}  // namespace pamakv::net
