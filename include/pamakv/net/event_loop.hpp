// EventLoop: a minimal epoll reactor.
//
// One loop runs on one thread. File descriptors are registered with a
// callback invoked with the ready-event mask; Post() marshals a closure
// onto the loop thread (used by the acceptor to hand new connections to
// another loop, and by Stop()), woken via an eventfd. All handler and fd
// bookkeeping is only touched from the loop thread, so handlers need no
// locks of their own; destruction of a handler that is mid-dispatch is
// deferred to the end of the dispatch round.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

namespace pamakv::net {

class EventLoop {
 public:
  using Handler = std::function<void(std::uint32_t events)>;

  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Registers `fd` for `events` (EPOLLIN/EPOLLOUT/...). Loop thread only
  /// (use Post from other threads).
  void Add(int fd, std::uint32_t events, Handler handler);
  /// Changes the interest mask of a registered fd. Loop thread only.
  void Mod(int fd, std::uint32_t events);
  /// Unregisters `fd`; safe to call from inside its own handler (the
  /// callback object is destroyed after the dispatch round). Does not
  /// close the fd. Loop thread only.
  void Del(int fd);

  /// Runs a closure on the loop thread (immediately when already on it).
  /// Thread-safe.
  void Post(std::function<void()> fn);

  /// Dispatches events until Stop(). Claims the calling thread as the
  /// loop thread.
  void Run();
  /// Thread-safe; Run() returns after the current dispatch round.
  void Stop();

 private:
  void Wake();
  void DrainPosted();

  int epoll_fd_;
  int wake_fd_;
  std::atomic<bool> running_{false};
  std::thread::id loop_thread_;

  std::unordered_map<int, std::unique_ptr<Handler>> handlers_;
  /// Handlers removed during dispatch live here until the round ends.
  std::vector<std::unique_ptr<Handler>> graveyard_;

  std::mutex posted_mu_;
  std::vector<std::function<void()>> posted_;
};

}  // namespace pamakv::net
