// EventLoop: a minimal epoll reactor with monotonic timers.
//
// One loop runs on one thread. File descriptors are registered with a
// callback invoked with the ready-event mask; Post() marshals a closure
// onto the loop thread (used by the acceptor to hand new connections to
// another loop, and by Stop()), woken via an eventfd. All handler and fd
// bookkeeping is only touched from the loop thread, so handlers need no
// locks of their own; destruction of a handler that is mid-dispatch is
// deferred to the end of the dispatch round.
//
// Timers are one-shot (re-arm from inside the callback for periodic
// behavior), ordered by deadline then arm order, and kept in a min-heap
// with lazy cancellation. Time is read through an injectable util::Clock:
// under the default SteadyClock the epoll_wait timeout makes timers fire
// on real time; under a FakeClock the loop parks until the clock's wake
// hook interrupts it, so tests drive every timer path by Advance() alone.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "pamakv/util/clock.hpp"

namespace pamakv::net {

/// Handle for cancelling a pending timer. 0 is never issued.
using TimerId = std::uint64_t;
inline constexpr TimerId kInvalidTimer = 0;

class EventLoop {
 public:
  using Handler = std::function<void(std::uint32_t events)>;

  explicit EventLoop(util::Clock& clock = util::SteadyClock::Instance());
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Registers `fd` for `events` (EPOLLIN/EPOLLOUT/...). Loop thread only
  /// (use Post from other threads).
  void Add(int fd, std::uint32_t events, Handler handler);
  /// Changes the interest mask of a registered fd. Loop thread only.
  void Mod(int fd, std::uint32_t events);
  /// Unregisters `fd`; safe to call from inside its own handler (the
  /// callback object is destroyed after the dispatch round). Does not
  /// close the fd. Loop thread only.
  void Del(int fd);

  /// Schedules `cb` to run on the loop thread once `delay` has elapsed on
  /// the loop's clock. One-shot; re-arming from inside the callback is
  /// supported (a re-arm with zero delay fires on the next round, never
  /// in the same one). Loop thread only (use Post from other threads).
  TimerId RunAfter(std::chrono::nanoseconds delay, std::function<void()> cb);
  /// Cancels a pending timer. Returns false when `id` already fired or
  /// was already cancelled. Loop thread only.
  bool Cancel(TimerId id);
  /// Pending (armed, not yet fired/cancelled) timers. Loop thread only.
  [[nodiscard]] std::size_t pending_timers() const noexcept {
    return timers_.size();
  }

  /// The clock this loop schedules against.
  [[nodiscard]] util::Clock& clock() const noexcept { return *clock_; }

  /// epoll_wait returns since Run() started. Thread-safe. A parked loop
  /// holds this steady, which is how tests prove an error path (e.g. an
  /// EMFILE'd listener) backs off instead of busy-spinning the reactor.
  [[nodiscard]] std::uint64_t cycles() const noexcept {
    return cycles_.load(std::memory_order_relaxed);
  }

  /// Runs a closure on the loop thread (immediately when already on it).
  /// Thread-safe.
  void Post(std::function<void()> fn);

  /// Dispatches events until Stop(). Claims the calling thread as the
  /// loop thread.
  void Run();
  /// Thread-safe; Run() returns after the current dispatch round.
  void Stop();

 private:
  void Wake();
  void DrainPosted();
  void FireExpiredTimers();
  /// epoll_wait timeout (ms) until the nearest timer deadline; -1 when no
  /// timer is armed.
  [[nodiscard]] int NextTimeoutMs();

  struct TimerEntry {
    std::int64_t deadline_ns;
    std::function<void()> cb;
  };

  util::Clock* clock_;
  int epoll_fd_;
  int wake_fd_;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> cycles_{0};
  std::thread::id loop_thread_;

  std::unordered_map<int, std::unique_ptr<Handler>> handlers_;
  /// Handlers removed during dispatch live here until the round ends.
  std::vector<std::unique_ptr<Handler>> graveyard_;

  /// Armed timers by id; the heap holds (deadline, id) pairs and is
  /// pruned lazily — a cancelled id is simply absent from the map when
  /// popped. Equal deadlines fire in arm order because ids ascend.
  std::unordered_map<TimerId, TimerEntry> timers_;
  std::vector<std::pair<std::int64_t, TimerId>> timer_heap_;
  TimerId next_timer_id_ = 1;

  std::mutex posted_mu_;
  std::vector<std::function<void()>> posted_;
};

}  // namespace pamakv::net
