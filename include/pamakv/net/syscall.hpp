// Thin syscall wrappers for the net/ layer, carrying the failpoint hooks.
//
// Production semantics are unchanged from the raw calls with one
// deliberate exception: Writev gathers through sendmsg(MSG_NOSIGNAL), so
// a write to a reset peer returns EPIPE instead of raising SIGPIPE (the
// server installs no process-wide handler — a library must not).
//
// With PAMAKV_FAILPOINTS off every wrapper is a direct inline forward —
// no extra symbols, no extra work (CI's nm check holds the line). With it
// on, each wrapper consults a named failpoint first: an errno hit fails
// the call before it reaches the kernel; a short-I/O hit truncates the
// transfer length, modeling partial reads/writes. Point names are listed
// in DESIGN.md §9.
#pragma once

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <cstddef>

#include "pamakv/util/failpoint.hpp"

namespace pamakv::net::sys {

#if PAMAKV_FAILPOINTS
namespace detail {

/// Errno-only sites: true => the caller should return -1 with errno set.
inline bool Inject(util::FailPoint& fp) {
  const auto hit = fp.Evaluate();
  if (hit && hit->action == util::FailPointSpec::Action::kErrno) {
    errno = hit->err;
    return true;
  }
  return false;
}

/// Transfer sites: additionally caps *len on a short-I/O hit.
inline bool Inject(util::FailPoint& fp, std::size_t* len) {
  const auto hit = fp.Evaluate();
  if (!hit) return false;
  if (hit->action == util::FailPointSpec::Action::kErrno) {
    errno = hit->err;
    return true;
  }
  if (hit->action == util::FailPointSpec::Action::kShortIo &&
      hit->cap < *len) {
    *len = static_cast<std::size_t>(hit->cap);
  }
  return false;
}

}  // namespace detail

#define PAMAKV_SYS_FAILPOINT(var, point_name)    \
  static ::pamakv::util::FailPoint& var =        \
      ::pamakv::util::FailPoints::Get(point_name)
#endif  // PAMAKV_FAILPOINTS

inline int Socket(int domain, int type, int protocol) {
#if PAMAKV_FAILPOINTS
  PAMAKV_SYS_FAILPOINT(fp, "net.socket");
  if (detail::Inject(fp)) return -1;
#endif
  return ::socket(domain, type, protocol);
}

inline int EventFd(unsigned int initval, int flags) {
#if PAMAKV_FAILPOINTS
  PAMAKV_SYS_FAILPOINT(fp, "net.eventfd");
  if (detail::Inject(fp)) return -1;
#endif
  return ::eventfd(initval, flags);
}

inline int Accept4(int fd, sockaddr* addr, socklen_t* addrlen, int flags) {
#if PAMAKV_FAILPOINTS
  PAMAKV_SYS_FAILPOINT(fp, "net.accept4");
  if (detail::Inject(fp)) return -1;
#endif
  return ::accept4(fd, addr, addrlen, flags);
}

inline int EpollWait(int epfd, epoll_event* events, int maxevents,
                     int timeout) {
#if PAMAKV_FAILPOINTS
  PAMAKV_SYS_FAILPOINT(fp, "net.epoll_wait");
  if (detail::Inject(fp)) return -1;
#endif
  return ::epoll_wait(epfd, events, maxevents, timeout);
}

inline ssize_t Read(int fd, void* buf, std::size_t len) {
#if PAMAKV_FAILPOINTS
  PAMAKV_SYS_FAILPOINT(fp, "net.read");
  if (detail::Inject(fp, &len)) return -1;
#endif
  return ::read(fd, buf, len);
}

/// Single-buffer write via sendmsg so MSG_NOSIGNAL applies (see header
/// comment); failpoint "net.writev" covers both Write and Writev — they
/// are the same seam to the caller.
inline ssize_t Write(int fd, const void* buf, std::size_t len) {
#if PAMAKV_FAILPOINTS
  PAMAKV_SYS_FAILPOINT(fp, "net.writev");
  if (detail::Inject(fp, &len)) return -1;
#endif
  iovec iov{const_cast<void*>(buf), len};
  msghdr msg{};
  msg.msg_iov = &iov;
  msg.msg_iovlen = 1;
  return ::sendmsg(fd, &msg, MSG_NOSIGNAL);
}

inline ssize_t Writev(int fd, const iovec* iov, int iovcnt) {
#if PAMAKV_FAILPOINTS
  PAMAKV_SYS_FAILPOINT(fp, "net.writev");
  {
    std::size_t cap = static_cast<std::size_t>(-1);
    if (detail::Inject(fp, &cap)) return -1;
    if (cap != static_cast<std::size_t>(-1) && iovcnt > 0) {
      // Short write: send a capped slice of the first buffer only.
      iovec first = iov[0];
      if (cap < first.iov_len) first.iov_len = cap;
      msghdr msg{};
      msg.msg_iov = &first;
      msg.msg_iovlen = 1;
      return ::sendmsg(fd, &msg, MSG_NOSIGNAL);
    }
  }
#endif
  msghdr msg{};
  msg.msg_iov = const_cast<iovec*>(iov);
  msg.msg_iovlen = static_cast<decltype(msg.msg_iovlen)>(iovcnt);
  return ::sendmsg(fd, &msg, MSG_NOSIGNAL);
}

inline ssize_t Send(int fd, const void* buf, std::size_t len, int flags) {
#if PAMAKV_FAILPOINTS
  PAMAKV_SYS_FAILPOINT(fp, "net.send");
  if (detail::Inject(fp, &len)) return -1;
#endif
  return ::send(fd, buf, len, flags);
}

inline ssize_t Recv(int fd, void* buf, std::size_t len, int flags) {
#if PAMAKV_FAILPOINTS
  PAMAKV_SYS_FAILPOINT(fp, "net.recv");
  if (detail::Inject(fp, &len)) return -1;
#endif
  return ::recv(fd, buf, len, flags);
}

}  // namespace pamakv::net::sys
