// Memcached ASCII protocol: command-line parsing and response formatting.
//
// The server speaks the classic text protocol (get/gets multi-key, set,
// delete, stats, flush_all, version, quit) so any memcached client — or
// `printf | nc` — can talk to the cache. Parsing is designed for the
// connection hot path: ParseCommandLine works on a string_view into the
// connection's receive buffer, the parsed keys alias that buffer, and the
// Append* formatters write into a caller-owned byte vector that is reused
// across requests. Nothing in this header allocates once buffers have
// reached their high-water capacity.
//
// Penalty-aware twist: the `flags` field of `set` (a 32-bit opaque in
// memcached) carries the key's miss penalty in microseconds. The server
// hands it to the engine as the item's penalty, so PAMA's penalty bands
// work end-to-end over the wire; clients that ignore the convention get
// flags=0 => the server's default penalty.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

namespace pamakv::net {

// Protocol limits (memcached's own where it has them).
inline constexpr std::size_t kMaxKeyBytes = 250;
inline constexpr std::size_t kMaxKeysPerGet = 64;
inline constexpr std::size_t kMaxValueBytes = 1024 * 1024;
/// Longest accepted command line: "gets" + 64 max-length keys.
inline constexpr std::size_t kMaxLineBytes = 32 * 1024;

enum class Verb : std::uint8_t {
  kGet,
  kGets,  ///< get + CAS unique id per value
  kSet,
  kDelete,
  kStats,
  kFlushAll,
  kVersion,
  kQuit,
};
inline constexpr std::size_t kNumVerbs = 8;

/// Wire spelling of a verb ("get", "flush_all", ...); metric labels.
[[nodiscard]] std::string_view VerbName(Verb v) noexcept;

/// One parsed command line. Keys are views into the buffer the line was
/// parsed from — valid only until that buffer is consumed or compacted.
struct Command {
  Verb verb = Verb::kGet;
  std::array<std::string_view, kMaxKeysPerGet> keys;
  std::size_t num_keys = 0;
  std::uint32_t flags = 0;     ///< set: miss penalty in µs (0 => default)
  std::uint64_t exptime = 0;   ///< parsed, unused (the engine has no TTLs)
  std::uint64_t value_bytes = 0;  ///< set: payload length that follows
  bool noreply = false;
  /// `stats detail`: append the metrics-registry series (per-class slab
  /// gauges, PAMA value flow, latency histograms) after the base stats.
  bool stats_detail = false;
};

enum class ParseStatus : std::uint8_t {
  kOk,           ///< `out` holds a complete command
  kError,        ///< unknown verb => "ERROR\r\n"
  kClientError,  ///< malformed arguments => "CLIENT_ERROR <message>\r\n"
};

struct ParseResult {
  ParseStatus status = ParseStatus::kOk;
  /// Message for kClientError; points at static storage.
  std::string_view error;
};

/// Parses one command line (trailing CRLF already stripped). Never
/// allocates; never reads outside `line`.
[[nodiscard]] ParseResult ParseCommandLine(std::string_view line, Command& out);

// ---- Response formatting: append into a reusable byte buffer ----

inline void AppendLiteral(std::vector<char>& out, std::string_view s) {
  out.insert(out.end(), s.begin(), s.end());
}

void AppendUInt(std::vector<char>& out, std::uint64_t v);

/// "VALUE <key> <flags> <bytes>[ <cas>]\r\n<data>\r\n"
void AppendValueBlock(std::vector<char>& out, std::string_view key,
                      std::uint32_t flags, std::string_view data,
                      std::uint64_t cas, bool with_cas);

/// "STAT <name> <value>\r\n"
void AppendStat(std::vector<char>& out, std::string_view name,
                std::uint64_t value);

}  // namespace pamakv::net
