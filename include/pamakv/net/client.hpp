// BlockingClient: a small synchronous memcached-ASCII client.
//
// Used by the load generator and the integration tests — deliberately
// independent of the server's parsing code so the two ends of the wire
// don't share bugs. One buffered TCP connection, blocking closed-loop
// request/response.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace pamakv::net {

/// Typed failure surfaced by BlockingClient, so callers (soak tests, the
/// load generator) can tell an orderly close from a reset from a protocol
/// violation — instead of pattern-matching what() strings.
class ClientError : public std::runtime_error {
 public:
  enum class Kind : std::uint8_t {
    kConnectionClosed,  ///< orderly EOF between responses
    kConnectionReset,   ///< ECONNRESET/EPIPE mid-operation
    kShortRead,         ///< EOF with a partial response buffered
    kProtocol,          ///< the response violated the protocol
    kServerError,       ///< the server answered "SERVER_ERROR <msg>"
  };

  ClientError(Kind kind, const std::string& what)
      : std::runtime_error(what), kind_(kind) {}

  [[nodiscard]] Kind kind() const noexcept { return kind_; }

 private:
  Kind kind_;
};

class BlockingClient {
 public:
  BlockingClient() = default;
  ~BlockingClient();

  BlockingClient(const BlockingClient&) = delete;
  BlockingClient& operator=(const BlockingClient&) = delete;
  BlockingClient(BlockingClient&& other) noexcept;
  BlockingClient& operator=(BlockingClient&& other) noexcept;

  /// Connects (IPv4). Throws std::system_error on failure.
  void Connect(const std::string& host, std::uint16_t port);
  void Close();
  [[nodiscard]] bool connected() const noexcept { return fd_ >= 0; }

  // ---- typed operations (one blocking round trip each) ----
  /// flags carries the miss penalty in µs (see protocol.hpp).
  bool Set(std::string_view key, std::uint32_t flags, std::string_view value);
  /// True on hit; fills value (and flags when non-null).
  bool Get(std::string_view key, std::string& value,
           std::uint32_t* flags = nullptr);
  bool Delete(std::string_view key);
  /// STAT name->value pairs from the `stats` command.
  std::vector<std::pair<std::string, std::uint64_t>> Stats();
  std::string Version();
  void FlushAll();

  // ---- raw access (tests) ----
  /// Sends bytes verbatim.
  void SendRaw(std::string_view data);
  /// Reads one CRLF-terminated line (returned without the CRLF).
  std::string ReadLine();
  /// Reads exactly n bytes into out; throws ClientError(kShortRead) when
  /// the connection ends first.
  void ReadExact(std::string& out, std::size_t n);

 private:
  /// Pulls more bytes into rxbuf_. Returns false on EOF; throws
  /// ClientError(kConnectionReset) on a reset, std::system_error on other
  /// socket failures.
  bool ReadMore();
  /// Throws ClientError(kServerError) when `line` is a SERVER_ERROR
  /// response; returns `line` otherwise.
  const std::string& CheckServerError(const std::string& line);

  int fd_ = -1;
  std::string rxbuf_;
  std::size_t rxpos_ = 0;
  std::string txline_;  ///< reused scratch for request assembly
};

}  // namespace pamakv::net
