// BlockingClient: a small synchronous memcached-ASCII client.
//
// Used by the load generator and the integration tests — deliberately
// independent of the server's parsing code so the two ends of the wire
// don't share bugs. One buffered TCP connection, blocking closed-loop
// request/response.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace pamakv::net {

class BlockingClient {
 public:
  BlockingClient() = default;
  ~BlockingClient();

  BlockingClient(const BlockingClient&) = delete;
  BlockingClient& operator=(const BlockingClient&) = delete;
  BlockingClient(BlockingClient&& other) noexcept;
  BlockingClient& operator=(BlockingClient&& other) noexcept;

  /// Connects (IPv4). Throws std::system_error on failure.
  void Connect(const std::string& host, std::uint16_t port);
  void Close();
  [[nodiscard]] bool connected() const noexcept { return fd_ >= 0; }

  // ---- typed operations (one blocking round trip each) ----
  /// flags carries the miss penalty in µs (see protocol.hpp).
  bool Set(std::string_view key, std::uint32_t flags, std::string_view value);
  /// True on hit; fills value (and flags when non-null).
  bool Get(std::string_view key, std::string& value,
           std::uint32_t* flags = nullptr);
  bool Delete(std::string_view key);
  /// STAT name->value pairs from the `stats` command.
  std::vector<std::pair<std::string, std::uint64_t>> Stats();
  std::string Version();
  void FlushAll();

  // ---- raw access (tests) ----
  /// Sends bytes verbatim.
  void SendRaw(std::string_view data);
  /// Reads one CRLF-terminated line (returned without the CRLF).
  std::string ReadLine();

 private:
  void ReadMore();
  /// Reads exactly n bytes into out.
  void ReadExact(std::string& out, std::size_t n);

  int fd_ = -1;
  std::string rxbuf_;
  std::size_t rxpos_ = 0;
  std::string txline_;  ///< reused scratch for request assembly
};

}  // namespace pamakv::net
