// BlockingClient: a small synchronous memcached-ASCII client.
//
// Used by the load generator and the integration tests — deliberately
// independent of the server's parsing code so the two ends of the wire
// don't share bugs. One buffered TCP connection, blocking closed-loop
// request/response.
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "pamakv/util/rng.hpp"

namespace pamakv::net {

/// Optional reconnect/retry behavior for Connect and the typed
/// operations. Delays grow exponentially from backoff_base with a
/// uniform ±jitter fraction (seeded util::Rng, so tests replay exactly);
/// a fleet of clients retrying a recovering server therefore doesn't
/// stampede it in lockstep.
struct RetryPolicy {
  int attempts = 3;  ///< total tries per operation (1 = no retrying)
  std::chrono::milliseconds backoff_base{10};  ///< doubles per retry
  double jitter = 0.5;       ///< delay scaled by uniform [1-j, 1+j]
  std::uint64_t seed = 0x5eed;  ///< jitter stream seed
};

/// Typed failure surfaced by BlockingClient, so callers (soak tests, the
/// load generator) can tell an orderly close from a reset from a protocol
/// violation — instead of pattern-matching what() strings.
class ClientError : public std::runtime_error {
 public:
  enum class Kind : std::uint8_t {
    kConnectionClosed,  ///< orderly EOF between responses
    kConnectionReset,   ///< ECONNRESET/EPIPE mid-operation
    kShortRead,         ///< EOF with a partial response buffered
    kProtocol,          ///< the response violated the protocol
    kServerError,       ///< the server answered "SERVER_ERROR <msg>"
  };

  ClientError(Kind kind, const std::string& what)
      : std::runtime_error(what), kind_(kind) {}

  [[nodiscard]] Kind kind() const noexcept { return kind_; }

 private:
  Kind kind_;
};

class BlockingClient {
 public:
  BlockingClient() = default;
  ~BlockingClient();

  BlockingClient(const BlockingClient&) = delete;
  BlockingClient& operator=(const BlockingClient&) = delete;
  BlockingClient(BlockingClient&& other) noexcept;
  BlockingClient& operator=(BlockingClient&& other) noexcept;

  /// Connects (IPv4). Throws std::system_error on failure. With a retry
  /// policy set, failed connects are retried with backoff first.
  void Connect(const std::string& host, std::uint16_t port);
  void Close();
  [[nodiscard]] bool connected() const noexcept { return fd_ >= 0; }

  /// Arms retrying: Connect retries failed connects, and the typed
  /// operations transparently reconnect-and-retry on transient transport
  /// failures (orderly close, reset, short read). Protocol violations and
  /// SERVER_ERROR responses are answers, not outages — never retried.
  /// Note a retried op may execute twice server-side (e.g. a Delete whose
  /// response was lost reports NOT_FOUND on the retry).
  void set_retry_policy(const RetryPolicy& policy);
  void clear_retry_policy() { retry_.reset(); }

  // ---- typed operations (one blocking round trip each) ----
  /// flags carries the miss penalty in µs (see protocol.hpp).
  bool Set(std::string_view key, std::uint32_t flags, std::string_view value);
  /// True on hit; fills value (and flags when non-null).
  bool Get(std::string_view key, std::string& value,
           std::uint32_t* flags = nullptr);
  bool Delete(std::string_view key);
  /// STAT name->value pairs from the `stats` command.
  std::vector<std::pair<std::string, std::uint64_t>> Stats();
  std::string Version();
  void FlushAll();

  // ---- raw access (tests) ----
  /// Sends bytes verbatim.
  void SendRaw(std::string_view data);
  /// Reads one CRLF-terminated line (returned without the CRLF).
  std::string ReadLine();
  /// Reads exactly n bytes into out; throws ClientError(kShortRead) when
  /// the connection ends first.
  void ReadExact(std::string& out, std::size_t n);

 private:
  /// Pulls more bytes into rxbuf_. Returns false on EOF; throws
  /// ClientError(kConnectionReset) on a reset, std::system_error on other
  /// socket failures.
  bool ReadMore();
  /// Throws ClientError(kServerError) when `line` is a SERVER_ERROR
  /// response; returns `line` otherwise.
  const std::string& CheckServerError(const std::string& line);
  /// One connect attempt (no retrying).
  void ConnectOnce(const std::string& host, std::uint16_t port);
  /// One get round trip (no retrying).
  bool GetOnce(std::string_view key, std::string& value,
               std::uint32_t* flags);
  /// Sleeps the policy's backoff delay for the given zero-based attempt.
  void BackoffSleep(int attempt);
  /// Runs `fn`, reconnecting and retrying per the policy on transient
  /// transport failures. Defined in client.cpp (used only there).
  template <typename Fn>
  auto WithRetry(Fn&& fn) -> decltype(fn());

  int fd_ = -1;
  std::string rxbuf_;
  std::size_t rxpos_ = 0;
  std::string txline_;  ///< reused scratch for request assembly
  std::string host_;    ///< remembered for retry reconnects
  std::uint16_t port_ = 0;
  std::optional<RetryPolicy> retry_;
  Rng retry_rng_{0};
};

}  // namespace pamakv::net
