// CacheService: the server-side bridge from wire requests to CacheEngines.
//
// Topology mirrors ShardedCache — N independent single-threaded engines,
// keys routed by ShardedCache::ShardIndexFor over the string key's 64-bit
// hash — but adds what a real server needs on top of the simulator's
// metadata-only engines:
//
//  * a per-shard mutex (engines are single-threaded by design; the event
//    loop threads serialize per shard, different shards proceed in
//    parallel);
//  * actual payload bytes. The engine decides *whether* a key is cached;
//    the shard's entry table holds the value, flags and CAS stamp, plus
//    the exact key string for collision verification (same discipline as
//    StringKeyCache: a 64-bit id collision is detected and resolved as a
//    miss rather than served as a wrong value).
//
// Entries are never erased, only marked dead, so steady-state traffic over
// a stable key population does zero heap allocation: dead entries keep
// their string capacity and are overwritten in place on the next store,
// and they remember the key's last size/penalty so a GET miss is routed to
// the ghost list of the right class/subclass — exactly what value-gated
// policies (PAMA) need to earn the key space back. Table growth is
// bounded by the number of distinct keys ever seen, as in StringKeyCache.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "pamakv/cache/cache_engine.hpp"
#include "pamakv/cache/sharded_cache.hpp"
#include "pamakv/util/metrics.hpp"

namespace pamakv::net {

struct CacheServiceConfig {
  std::size_t shards = 4;
  Bytes capacity_bytes = 256ULL * 1024 * 1024;
  /// Penalty charged to a GET miss for a key the server has never seen
  /// (known keys reuse their stored penalty).
  MicroSecs default_penalty_us = 1'000;
  /// Size used to route a never-seen key's miss to a ghost list.
  Bytes default_size = 64;
};

class CacheService {
 public:
  using EngineFactory = std::function<std::unique_ptr<CacheEngine>(Bytes)>;

  /// Builds `shards` engines, each given capacity/shards via the factory.
  CacheService(const CacheServiceConfig& config, const EngineFactory& factory);

  /// GET/GETS one key: on a verified hit appends a "VALUE ..." block to
  /// `out` (under the shard lock, so value and stats stay consistent) and
  /// returns true; on a miss appends nothing, charges the engine the
  /// key's penalty, and returns false.
  bool Get(std::string_view key, std::vector<char>& out, bool with_cas);

  /// SET: stores value bytes + flags; `flags` is the miss penalty in µs
  /// (0 => the configured default). False when the engine refused space.
  bool Set(std::string_view key, std::uint32_t flags, std::string_view value);

  /// DELETE. True if the key was cached.
  bool Del(std::string_view key);

  /// Deletes every live entry; returns how many were dropped.
  std::uint64_t FlushAll();

  /// Appends the full "STAT name value\r\n"* + "END\r\n" payload for the
  /// `stats` command: CacheStats::Snapshot() totals plus service gauges
  /// and, when registered, the extra appender's lines (the Server wires
  /// its connection/lifecycle counters in here). With detail=true (the
  /// `stats detail` command) and a registry wired via RegisterMetrics,
  /// every metrics-registry series is appended as a STAT line, rendered
  /// from the same snapshot type the Prometheus endpoint serves.
  void AppendStats(std::vector<char>& out, bool detail = false) const;

  /// Wires the service's introspection into `registry` as callback
  /// gauges, evaluated under the shard locks at snapshot time so the
  /// request hot path never touches a metric it does not already own:
  ///   pamakv_slabs{class,band}            per-subclass slab count
  ///   pamakv_subclass_items{class,band}   items per subclass
  ///   pamakv_ghost_hits{class,band}       ghost receiving-segment hits
  ///   pamakv_free_slabs / pamakv_total_slabs
  ///   pamakv_<stat> for every CacheStats counter (summed over shards)
  /// and, when the shards run PamaPolicy, the value-flow telemetry:
  ///   pamakv_pama_decisions_total{shard}, pamakv_pama_outgoing_value_sum,
  ///   pamakv_pama_incoming_value_sum, pamakv_pama_migration_benefit_sum,
  ///   pamakv_pama_last_{outgoing,incoming}_value{shard} and the
  ///   band-to-band matrix pamakv_pama_migration_flow_total{from,to}.
  /// Keeps a pointer to `registry` for `stats detail`.
  void RegisterMetrics(util::MetricsRegistry& registry);

  /// Registers (or clears, with nullptr) an extra "STAT ..." appender run
  /// inside AppendStats before the END line. Thread-safe.
  void SetExtraStats(std::function<void(std::vector<char>&)> appender);

  /// Aggregated engine stats across shards (locks each shard briefly).
  [[nodiscard]] CacheStats TotalStats() const;
  /// Live items across shards (= memcached curr_items).
  [[nodiscard]] std::uint64_t ItemCount() const;
  /// Hash collisions resolved across shards (expected 0 in real runs).
  [[nodiscard]] std::uint64_t CollisionsResolved() const;

  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }

 private:
  struct Entry {
    std::string key;    ///< exact key string (collision verification)
    std::string value;  ///< payload bytes
    std::uint32_t flags = 0;
    std::uint64_t cas = 0;
    bool live = false;  ///< engine-backed as of the last touch
  };

  struct Shard {
    mutable std::mutex mu;
    std::unique_ptr<CacheEngine> engine;
    std::unordered_map<KeyId, Entry> entries;
    std::uint64_t cas_counter = 0;
    std::uint64_t collisions = 0;
  };

  [[nodiscard]] Shard& ShardFor(KeyId id) {
    return *shards_[ShardedCache::ShardIndexFor(id, shards_.size())];
  }
  [[nodiscard]] MicroSecs PenaltyOf(std::uint32_t flags) const noexcept {
    return flags != 0 ? static_cast<MicroSecs>(flags) : default_penalty_us_;
  }
  /// Resolves the entry for (id, key) under the shard lock, handling the
  /// stale-entry and collision cases. Returns the entry when it is live
  /// and verified, nullptr otherwise.
  Entry* VerifiedLive(Shard& shard, KeyId id, std::string_view key);

  /// Per-subclass sum of a counter across shards, under each shard's lock.
  template <typename Fn>
  [[nodiscard]] double SumOverShards(Fn fn) const {
    double total = 0.0;
    for (const auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mu);
      total += fn(*shard->engine);
    }
    return total;
  }

  std::vector<std::unique_ptr<Shard>> shards_;
  MicroSecs default_penalty_us_;
  Bytes default_size_;
  util::MetricsRegistry* metrics_ = nullptr;  ///< set by RegisterMetrics

  mutable std::mutex extra_stats_mu_;
  std::function<void(std::vector<char>&)> extra_stats_;
};

}  // namespace pamakv::net
