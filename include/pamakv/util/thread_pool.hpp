// Fixed-size worker pool used by the experiment runner to execute the
// scheme x cache-size grid in parallel. Deliberately simple: tasks are
// type-erased thunks; there is no work stealing because experiment cells
// are coarse (minutes each) and few.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

namespace pamakv {

class ThreadPool {
 public:
  /// threads == 0 picks the hardware concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; the returned future yields the task's result.
  /// Throws std::runtime_error after Shutdown() — a task accepted then
  /// would silently never run and its future would block forever.
  template <typename F>
  [[nodiscard]] auto Submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> future = task->get_future();
    {
      const std::lock_guard lock(mutex_);
      if (stop_) {
        throw std::runtime_error("ThreadPool: Submit after shutdown");
      }
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return future;
  }

  /// Drains already-queued tasks, joins the workers and rejects further
  /// Submits. Idempotent; the destructor calls it.
  void Shutdown();

  [[nodiscard]] std::size_t thread_count() const noexcept { return workers_.size(); }

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool stop_ = false;
};

/// Runs fn(i) for i in [0, n) across the pool and blocks until all finish.
/// If any invocation throws, the first exception (in index order) is
/// re-thrown here — but only after every task has completed, so `fn` and any
/// state it captures are guaranteed dead before the caller unwinds.
void ParallelFor(ThreadPool& pool, std::size_t n,
                 const std::function<void(std::size_t)>& fn);

}  // namespace pamakv
