// Common scalar types and strong aliases used across the pamakv library.
#pragma once

#include <cstdint>
#include <limits>

namespace pamakv {

/// 64-bit key identifier. String front-ends hash into this space; the
/// simulator's synthetic traces draw keys from it directly.
using KeyId = std::uint64_t;

/// Byte counts (item sizes, slab sizes, cache capacities).
using Bytes = std::uint64_t;

/// Durations in microseconds. Miss penalties in the paper span 1 ms .. 5 s,
/// so a signed 64-bit microsecond count is ample.
using MicroSecs = std::int64_t;

/// Logical cache time: the number of requests served so far. The paper
/// defines PAMA's time windows in accesses, not wall-clock time (Sec. III).
using AccessClock = std::uint64_t;

/// Index of a size class (Memcached "slab class").
using ClassId = std::uint32_t;

/// Index of a penalty-band subclass within a class.
using SubclassId = std::uint32_t;

/// Handle into the engine's item table. 32 bits bounds the table at ~4B
/// items, far beyond any simulated cache.
using ItemHandle = std::uint32_t;

inline constexpr ItemHandle kInvalidHandle =
    std::numeric_limits<ItemHandle>::max();

/// Request verbs understood by the simulator (the Memcached primitives the
/// paper's Sec. I lists, with REPLACE folded into SET).
enum class Op : std::uint8_t {
  kGet = 0,
  kSet = 1,
  kDel = 2,
};

}  // namespace pamakv
