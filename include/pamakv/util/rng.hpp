// Deterministic, seedable random number generation.
//
// Experiments must be bit-reproducible across runs and platforms, so the
// library never touches std::random_device or the global C RNG. All
// randomness flows from explicitly seeded xoshiro256** streams, split with
// splitmix64 (the standard seeding recipe from Blackman & Vigna).
#pragma once

#include <cstdint>

namespace pamakv {

/// splitmix64 step: used for seed expansion and as a cheap mixing hash.
[[nodiscard]] constexpr std::uint64_t SplitMix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Stateless mix of a 64-bit value; good avalanche, used for hashing keys.
[[nodiscard]] constexpr std::uint64_t Mix64(std::uint64_t x) noexcept {
  std::uint64_t s = x;
  return SplitMix64(s);
}

/// xoshiro256** 1.0 — fast, high-quality 64-bit PRNG.
class Rng {
 public:
  /// Seeds the four words of state via splitmix64, per the reference seeding.
  explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = SplitMix64(sm);
  }

  /// Next raw 64-bit draw.
  [[nodiscard]] std::uint64_t NextU64() noexcept {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 bits of precision.
  [[nodiscard]] double NextDouble() noexcept {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound). bound must be > 0. Uses Lemire's
  /// multiply-shift rejection method to avoid modulo bias.
  [[nodiscard]] std::uint64_t NextBounded(std::uint64_t bound) noexcept;

  /// Standard-normal draw (Marsaglia polar method, cached spare).
  [[nodiscard]] double NextGaussian() noexcept;

  /// Derives an independent child stream; children with distinct tags are
  /// statistically independent of the parent and each other.
  [[nodiscard]] Rng Split(std::uint64_t tag) noexcept {
    return Rng(NextU64() ^ Mix64(tag));
  }

 private:
  [[nodiscard]] static constexpr std::uint64_t Rotl(std::uint64_t x,
                                                    int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
  double spare_gaussian_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace pamakv
