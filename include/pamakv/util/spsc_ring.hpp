// SpscRing: bounded lock-free single-producer/single-consumer ring buffer.
//
// The parallel simulator moves request batches from one producer thread to
// one worker per shard; each (producer, worker) pair gets its own ring, so
// the SPSC restriction — exactly one thread calls the producer side, exactly
// one the consumer side — holds by construction and no CAS loops or mutexes
// are needed. Head and tail are plain atomics with acquire/release pairing
// (Lamport's classic queue); each side additionally caches the other's index
// so the common case touches no shared cache line at all.
//
// Capacity is rounded up to a power of two. One slot is kept empty to
// distinguish full from empty, so a ring constructed with capacity C holds
// up to RoundUpPow2(C) - 1 elements.
#pragma once

#include <atomic>
#include <cstddef>
#include <thread>
#include <utility>
#include <vector>

namespace pamakv {

// 64 covers x86-64 and most AArch64 parts; a fixed value keeps the layout
// ABI-stable (std::hardware_destructive_interference_size warns that it
// varies with tuning flags).
inline constexpr std::size_t kCacheLineBytes = 64;

template <typename T>
class SpscRing {
 public:
  explicit SpscRing(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity + 1) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Producer side. Returns false when the ring is full.
  bool TryPush(T&& value) {
    const std::size_t tail = tail_.index.load(std::memory_order_relaxed);
    const std::size_t next = (tail + 1) & mask_;
    if (next == tail_.cached_other) {
      tail_.cached_other = head_.index.load(std::memory_order_acquire);
      if (next == tail_.cached_other) return false;
    }
    slots_[tail] = std::move(value);
    tail_.index.store(next, std::memory_order_release);
    return true;
  }

  /// Producer side: spins (with yields) until the value is accepted.
  void Push(T&& value) {
    while (!TryPush(std::move(value))) std::this_thread::yield();
  }

  /// Consumer side. Returns false when the ring is empty.
  bool TryPop(T& out) {
    const std::size_t head = head_.index.load(std::memory_order_relaxed);
    if (head == head_.cached_other) {
      head_.cached_other = tail_.index.load(std::memory_order_acquire);
      if (head == head_.cached_other) return false;
    }
    out = std::move(slots_[head]);
    head_.index.store((head + 1) & mask_, std::memory_order_release);
    return true;
  }

  /// Consumer side: blocks (spinning with yields) until an element arrives
  /// or the producer has closed the ring and it drained. Returns false only
  /// in the closed-and-empty case.
  bool PopBlocking(T& out) {
    for (;;) {
      if (TryPop(out)) return true;
      if (closed_.load(std::memory_order_acquire)) {
        // Re-check: elements pushed before Close() must still drain.
        return TryPop(out);
      }
      std::this_thread::yield();
    }
  }

  /// Producer side: signals end-of-stream. Elements already pushed remain
  /// poppable.
  void Close() noexcept { closed_.store(true, std::memory_order_release); }

  [[nodiscard]] bool closed() const noexcept {
    return closed_.load(std::memory_order_acquire);
  }

  /// Snapshot; exact only when called from one of the two owning threads.
  [[nodiscard]] std::size_t SizeApprox() const noexcept {
    const std::size_t tail = tail_.index.load(std::memory_order_acquire);
    const std::size_t head = head_.index.load(std::memory_order_acquire);
    return (tail - head) & mask_;
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return mask_; }

 private:
  // Each side's own index plus its cached copy of the other side's index,
  // padded so producer and consumer never share a cache line.
  struct alignas(kCacheLineBytes) Side {
    std::atomic<std::size_t> index{0};
    std::size_t cached_other = 0;
  };

  std::vector<T> slots_;
  std::size_t mask_ = 0;
  Side head_;  // consumer
  Side tail_;  // producer
  std::atomic<bool> closed_{false};
};

}  // namespace pamakv
