// Distribution samplers used by the synthetic workload generators.
#pragma once

#include <cstdint>
#include <vector>

#include "pamakv/util/rng.hpp"

namespace pamakv {

/// Zipf(α) sampler over ranks {0, 1, ..., n-1} where rank 0 is the most
/// popular. Uses the rejection-inversion method of Hörmann & Derflinger,
/// which is O(1) per sample and exact for any α > 0, so key spaces of tens
/// of millions cost no table space.
class ZipfSampler {
 public:
  /// n: number of distinct ranks; alpha: skew (Facebook KV workloads are
  /// commonly fit with α in [0.9, 1.2]).
  ZipfSampler(std::uint64_t n, double alpha);

  [[nodiscard]] std::uint64_t Sample(Rng& rng) const;

  [[nodiscard]] std::uint64_t n() const noexcept { return n_; }
  [[nodiscard]] double alpha() const noexcept { return alpha_; }

 private:
  [[nodiscard]] double H(double x) const;
  [[nodiscard]] double HInverse(double x) const;

  std::uint64_t n_;
  double alpha_;
  double h_x1_;
  double h_n_;
  double s_;
};

/// Lognormal sampler clipped to [min, max]; parameterized by the mean and
/// sigma of the underlying normal in log-space.
class LognormalSampler {
 public:
  LognormalSampler(double mu_log, double sigma_log, double min_value,
                   double max_value) noexcept
      : mu_(mu_log), sigma_(sigma_log), min_(min_value), max_(max_value) {}

  [[nodiscard]] double Sample(Rng& rng) const;

 private:
  double mu_;
  double sigma_;
  double min_;
  double max_;
};

/// Samples an index according to a fixed discrete weight vector.
/// O(log n) per draw via the cumulative table; fine for small tables
/// (size-class mixes have ~a dozen entries).
class DiscreteSampler {
 public:
  explicit DiscreteSampler(std::vector<double> weights);

  [[nodiscard]] std::size_t Sample(Rng& rng) const;

  [[nodiscard]] std::size_t size() const noexcept { return cumulative_.size(); }

 private:
  std::vector<double> cumulative_;
};

}  // namespace pamakv
