// Failpoints: compile-gated fault injection for syscall and allocation
// seams.
//
// A failpoint is a named site in production code that, when armed, makes
// the operation there fail the way the kernel or the allocator would:
// return an errno, truncate an I/O to a byte cap, or throw
// std::bad_alloc. Tests (and the chaos soak) arm points by name with a
// spec string; the registry counts every trip so `stats` can report what
// the storm actually did.
//
// Spec grammar — `what[@when]`:
//
//   what:  an errno name (EINTR, EMFILE, ECONNRESET, ...) |
//          short:<cap>   (truncate the I/O to <cap> bytes) |
//          oom           (throw std::bad_alloc)
//   when:  once | x<N> (fire N times) | nth:<N> (every Nth evaluation) |
//          p:<P>[:<seed>] (probability P per evaluation, seeded stream);
//          omitted => every evaluation
//
//   examples: "EMFILE@once"  "EINTR@p:0.1:7"  "short:1"  "oom@x3"
//
// Zero overhead when off: with PAMAKV_FAILPOINTS unset/0 the macros are
// empty statements, none of these classes exist, and src/util/failpoint.cpp
// is not even compiled into the library (CI verifies the default build
// carries no failpoint symbols). When on, a disarmed point costs one
// relaxed atomic load.
#pragma once

#include <cstdint>

#if PAMAKV_FAILPOINTS

#include <atomic>
#include <mutex>
#include <new>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "pamakv/util/rng.hpp"

namespace pamakv::util {

struct FailPointSpec {
  enum class Trigger : std::uint8_t {
    kAlways,       ///< every evaluation (x0 / no `when` clause)
    kTimes,        ///< first `times` evaluations, then self-disarm
    kEveryNth,     ///< evaluations where count % period == 0
    kProbability,  ///< independent draw per evaluation
  };
  enum class Action : std::uint8_t {
    kErrno,     ///< fail the call with `err`
    kShortIo,   ///< let the call proceed, capped to `cap` bytes
    kBadAlloc,  ///< throw std::bad_alloc
  };

  Trigger trigger = Trigger::kAlways;
  Action action = Action::kErrno;
  int err = 0;                ///< kErrno payload
  std::uint64_t times = 0;    ///< kTimes budget
  std::uint64_t period = 1;   ///< kEveryNth period
  double probability = 0.0;   ///< kProbability chance
  std::uint64_t cap = 1;      ///< kShortIo byte cap
  std::uint64_t seed = 0x5eed;  ///< kProbability stream seed

  /// Parses the spec grammar above; nullopt on malformed input.
  static std::optional<FailPointSpec> Parse(std::string_view text);
};

/// What an armed point decided for one evaluation.
struct FailPointHit {
  FailPointSpec::Action action;
  int err;
  std::uint64_t cap;
};

/// One named injection site. Evaluate() is called on the production hot
/// path; everything else is test/configuration plumbing.
class FailPoint {
 public:
  explicit FailPoint(std::string name) : name_(std::move(name)) {}

  FailPoint(const FailPoint&) = delete;
  FailPoint& operator=(const FailPoint&) = delete;

  /// Consults the point. nullopt when disarmed (the common case: one
  /// relaxed load) or when the trigger decided not to fire this time.
  std::optional<FailPointHit> Evaluate();

  void Arm(const FailPointSpec& spec);
  void Disarm();

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  /// Times this point actually fired (injected a fault) since process
  /// start. Survives Disarm — the chaos soak reads it after the storm.
  [[nodiscard]] std::uint64_t trips() const noexcept {
    return trips_.load(std::memory_order_relaxed);
  }

 private:
  const std::string name_;
  std::atomic<bool> armed_{false};
  std::atomic<std::uint64_t> trips_{0};
  std::mutex mu_;            ///< guards everything below
  FailPointSpec spec_;
  Rng rng_{0};
  std::uint64_t fired_ = 0;  ///< fires under the current spec
  std::uint64_t calls_ = 0;  ///< evaluations under the current spec
};

/// Process-wide registry, keyed by point name. Points are created on
/// first use and live until process exit, so the `static FailPoint&`
/// references cached at the injection sites never dangle.
class FailPoints {
 public:
  static FailPoint& Get(std::string_view name);
  /// Parses and arms. Returns false (point untouched) on a malformed spec.
  static bool Arm(std::string_view name, std::string_view spec_text);
  static void Arm(std::string_view name, const FailPointSpec& spec);
  static void DisableAll();
  /// Arms every `name=spec` pair (';'-separated) in the environment
  /// variable; returns how many points were armed. Malformed pairs are
  /// skipped. Default variable: PAMAKV_FAILPOINTS_CFG.
  static std::size_t ConfigureFromEnv(
      const char* var = "PAMAKV_FAILPOINTS_CFG");
  /// (name, trips) for every point that ever fired, name-sorted — the
  /// `stats` command exports these as `failpoint.<name>` lines.
  static std::vector<std::pair<std::string, std::uint64_t>> TripCounts();
  static std::uint64_t Trips(std::string_view name);
};

}  // namespace pamakv::util

/// Injection site for allocation seams: throws std::bad_alloc when the
/// named point fires with the oom action.
#define PAMAKV_FAILPOINT_OOM(point_name)                                   \
  do {                                                                     \
    static ::pamakv::util::FailPoint& pamakv_fp_ =                         \
        ::pamakv::util::FailPoints::Get(point_name);                       \
    const auto pamakv_hit_ = pamakv_fp_.Evaluate();                        \
    if (pamakv_hit_ &&                                                     \
        pamakv_hit_->action ==                                             \
            ::pamakv::util::FailPointSpec::Action::kBadAlloc) {            \
      throw std::bad_alloc();                                              \
    }                                                                      \
  } while (0)

#else  // !PAMAKV_FAILPOINTS

#define PAMAKV_FAILPOINT_OOM(point_name) \
  do {                                   \
  } while (0)

#endif  // PAMAKV_FAILPOINTS
