// util/metrics: a lock-cheap metrics registry for live observability.
//
// Three instrument kinds, all safe to update from any thread with no lock
// on the hot path:
//
//  * Counter   — monotonic; increments go to one of a fixed set of
//                cache-line-padded stripes picked by thread id, so
//                concurrent writers do not bounce a shared line.
//  * Gauge     — a level (may go down). Two flavors: a settable atomic,
//                and a callback evaluated at snapshot time (for values
//                derived from state behind existing locks, e.g. per-shard
//                engine introspection — the hot path never touches them).
//  * Histogram — log-spaced buckets over [min, max] (same bucket math as
//                util/histogram.hpp's LogHistogram) with one relaxed
//                atomic per bucket plus count/sum, built for latency
//                recording: Observe() is two relaxed fetch_adds and never
//                allocates, which keeps the zero-steady-state-alloc
//                harness green.
//
// Instruments are registered once at startup (registration allocates and
// takes the registry mutex; lookups by the hot path are done via the
// returned reference, never by name). A snapshot merges every stripe /
// bucket into plain structs; renderers produce Prometheus text exposition
// (RenderPrometheus) and CSV rows (AppendCsv) from the same snapshot, so
// every export surface reports identical values by construction.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace pamakv::util {

/// Stripes per counter. Power of two; 8 × 64B = one line per stripe,
/// enough that a handful of loop threads rarely share one.
inline constexpr std::size_t kCounterStripes = 8;

/// Monotonic counter, striped by thread. Inc is wait-free and allocation-
/// free; Value() sums the stripes (racy reads are fine — each stripe is
/// monotone, so the sum never goes backwards between calls).
class Counter {
 public:
  void Inc(std::uint64_t n = 1) noexcept {
    stripes_[StripeIndex()].v.fetch_add(n, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t Value() const noexcept {
    std::uint64_t sum = 0;
    for (const auto& s : stripes_) sum += s.v.load(std::memory_order_relaxed);
    return sum;
  }

 private:
  static std::size_t StripeIndex() noexcept;

  struct alignas(64) Stripe {
    std::atomic<std::uint64_t> v{0};
  };
  Stripe stripes_[kCounterStripes];
};

/// Settable level. Updates are expected to happen under the owner's own
/// serialization (e.g. a shard lock); the atomic only makes snapshot reads
/// well-defined.
class Gauge {
 public:
  void Set(std::int64_t v) noexcept { v_.store(v, std::memory_order_relaxed); }
  void Add(std::int64_t d) noexcept { v_.fetch_add(d, std::memory_order_relaxed); }
  [[nodiscard]] std::int64_t Value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Plain-struct view of one histogram, merged across writers. Buckets are
/// non-cumulative counts; `bounds[i]` is bucket i's inclusive upper edge.
struct HistogramSnapshot {
  std::vector<double> bounds;
  std::vector<std::uint64_t> counts;
  std::uint64_t total = 0;
  double sum = 0.0;  ///< sum of observed values

  /// Quantile by bucket midpoint against the same edge conventions the
  /// LogHistogram fix locked in: empty => 0, q clamps to [0,1], the
  /// target rank is max(1, ceil(q * total)).
  [[nodiscard]] double Quantile(double q) const;

  /// Accumulates `other` into this snapshot. Identical bucket layouts add
  /// directly; mismatched layouts are re-binned by bucket midpoint (same
  /// policy as LogHistogram::Merge) so a p999 over merged data is never
  /// computed against the wrong edges.
  void Merge(const HistogramSnapshot& other);
};

/// Log-bucketed histogram with atomic buckets. Bucket index math is
/// identical to LogHistogram's (values outside [min, max] clamp into the
/// edge buckets); counts and sum are relaxed atomics so Observe() is safe
/// from any thread and allocation-free.
class Histogram {
 public:
  Histogram(double min_value, double max_value, std::size_t buckets);

  void Observe(double value) noexcept {
    counts_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    total_.fetch_add(1, std::memory_order_relaxed);
    // Fixed-point micro-units: atomic<double> fetch_add is not lock-free
    // everywhere, and latencies are microseconds-scale doubles — 1e-6
    // resolution loses nothing we report.
    sum_fp_.fetch_add(static_cast<std::uint64_t>(value * 1e6),
                      std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t total() const noexcept {
    return total_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t bucket_count() const noexcept {
    return counts_.size();
  }
  [[nodiscard]] double BucketHigh(std::size_t i) const;

  [[nodiscard]] HistogramSnapshot Snapshot() const;

 private:
  [[nodiscard]] std::size_t BucketIndex(double value) const noexcept;

  double log_min_;
  double log_max_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_storage_;
  // span view over counts_storage_ (atomics are not movable/copyable, so
  // a vector cannot hold them directly).
  struct {
    std::atomic<std::uint64_t>* data_;
    std::size_t size_;
    std::atomic<std::uint64_t>& operator[](std::size_t i) const {
      return data_[i];
    }
    [[nodiscard]] std::size_t size() const noexcept { return size_; }
  } counts_;
  std::atomic<std::uint64_t> total_{0};
  std::atomic<std::uint64_t> sum_fp_{0};
};

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

/// One instrument's merged value at snapshot time.
struct MetricSample {
  std::string name;    ///< family name, e.g. "pamakv_ops_total"
  std::string labels;  ///< preformatted label set, e.g. {verb="get"} ("" = none)
  MetricKind kind = MetricKind::kCounter;
  double value = 0.0;            ///< counter/gauge value
  HistogramSnapshot histogram;   ///< kind == kHistogram only
};

/// Full registry snapshot; what every renderer consumes.
struct MetricsSnapshot {
  std::vector<MetricSample> samples;

  /// Prometheus text exposition format 0.0.4 (# HELP/# TYPE + series).
  [[nodiscard]] std::string RenderPrometheus() const;
  /// One CSV row per series: <elapsed_ms>,<name><labels>,<value>.
  /// Histograms emit _count, _sum and per-quantile rows.
  void AppendCsv(std::string& out, std::int64_t elapsed_ms) const;
  /// One "STAT <name><labels> <value>\r\n" line per series (the `stats
  /// detail` spelling); histograms emit the same _count/_sum/quantile
  /// rows as AppendCsv. Values go through the same formatter as
  /// RenderPrometheus, so the ASCII and HTTP surfaces agree byte-for-byte
  /// on every number.
  void AppendStatLines(std::vector<char>& out) const;
};

class MetricsRegistry {
 public:
  /// Registers (or fetches, when the same name+labels was registered
  /// before) an instrument. Registration locks and may allocate — do it
  /// at startup and keep the reference; the reference stays valid for the
  /// registry's lifetime (instruments are never removed).
  Counter& GetCounter(const std::string& name, const std::string& labels = "",
                      const std::string& help = "");
  Gauge& GetGauge(const std::string& name, const std::string& labels = "",
                  const std::string& help = "");
  Histogram& GetHistogram(const std::string& name, double min_value,
                          double max_value, std::size_t buckets,
                          const std::string& labels = "",
                          const std::string& help = "");

  /// Callback gauge: `fn` is evaluated inside Snapshot(), with whatever
  /// locks it takes internally. For values derived from state the hot
  /// path already maintains (per-shard slab counts, tracker values).
  void RegisterCallbackGauge(const std::string& name,
                             const std::string& labels,
                             std::function<double()> fn,
                             const std::string& help = "");

  /// Merges every instrument into plain values. Thread-safe.
  [[nodiscard]] MetricsSnapshot Snapshot() const;

 private:
  struct Entry {
    std::string name;
    std::string labels;
    std::string help;
    MetricKind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
    std::function<double()> callback;  ///< callback gauges only
  };

  Entry* Find(const std::string& name, const std::string& labels,
              MetricKind kind);

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Entry>> entries_;
};

}  // namespace pamakv::util
