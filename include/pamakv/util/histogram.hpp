// Lightweight statistics helpers: streaming moments, log-spaced histograms,
// and exact quantiles over retained samples. Used by trace analysis, the
// penalty model validation, and the metrics reporters.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace pamakv {

/// Streaming mean / variance / min / max (Welford).
class RunningStats {
 public:
  void Add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return count_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return count_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return sum_; }

  void Reset() noexcept { *this = RunningStats{}; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Histogram with logarithmically spaced buckets over [min, max]; values
/// outside are clamped into the edge buckets. Suited to item sizes (bytes,
/// spanning 5 decades) and miss penalties (sub-ms .. seconds).
class LogHistogram {
 public:
  LogHistogram(double min_value, double max_value, std::size_t buckets);

  void Add(double value, std::uint64_t weight = 1) noexcept;

  [[nodiscard]] std::size_t bucket_count() const noexcept { return counts_.size(); }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const { return counts_.at(i); }
  /// Geometric midpoint of bucket i (representative value).
  [[nodiscard]] double BucketMid(std::size_t i) const;
  [[nodiscard]] double BucketLow(std::size_t i) const;
  [[nodiscard]] double BucketHigh(std::size_t i) const;
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }

  /// Approximate quantile q in [0,1] using bucket interpolation. The
  /// target rank is max(1, ceil(q * total)) — 1-based like a sorted
  /// vector — so leading empty buckets can never answer for a nonzero
  /// population and q=1.0 lands in the last occupied bucket. Empty
  /// histogram => 0.
  [[nodiscard]] double Quantile(double q) const;

  /// Accumulates `other` into this histogram. Identical layouts (same
  /// range and bucket count) add bucket-wise; mismatched layouts re-bin
  /// each foreign bucket at its geometric midpoint into this histogram's
  /// buckets — bounded error of one bucket width instead of the silently
  /// wrong tail a positional copy would produce.
  void Merge(const LogHistogram& other);

  void Reset() noexcept;

 private:
  [[nodiscard]] std::size_t BucketIndex(double value) const noexcept;

  double log_min_;
  double log_max_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Exact quantiles from a retained sample vector (for tests and small runs).
[[nodiscard]] double ExactQuantile(std::vector<double> values, double q);

}  // namespace pamakv
