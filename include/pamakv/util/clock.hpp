// Clock: the time seam for everything that waits.
//
// Production code reads monotonic time through the Clock interface so
// tests can substitute FakeClock and advance time manually — timer and
// timeout behavior is then exercised deterministically, without a single
// wall-clock sleep. FakeClock additionally carries wake hooks: a blocked
// waiter (e.g. an EventLoop parked in epoll_wait) registers a hook and is
// interrupted whenever Advance() jumps the clock, so a test's Advance()
// is all it takes to make due timers fire. The real SteadyClock ignores
// hooks — real time never jumps.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <unordered_map>

namespace pamakv::util {

class Clock {
 public:
  virtual ~Clock() = default;

  /// Monotonic nanoseconds since an arbitrary epoch. Thread-safe.
  [[nodiscard]] virtual std::int64_t NowNanos() = 0;

  /// Registers a hook (keyed by `token`) to be invoked when the clock
  /// jumps. Only manual clocks jump; the default implementations are
  /// no-ops. Thread-safe.
  virtual void RegisterWake(void* /*token*/, std::function<void()> /*hook*/) {}
  virtual void UnregisterWake(void* /*token*/) {}
};

/// The real clock: std::chrono::steady_clock behind the seam.
class SteadyClock final : public Clock {
 public:
  /// Process-wide instance (the default for every Clock consumer).
  static SteadyClock& Instance();

  std::int64_t NowNanos() override;
};

/// Manually advanced clock for deterministic tests. NowNanos() is an
/// atomic read, so waiter threads may poll it freely; Advance() bumps the
/// time and then fires every registered wake hook.
class FakeClock final : public Clock {
 public:
  explicit FakeClock(std::int64_t start_ns = 0) : now_ns_(start_ns) {}

  std::int64_t NowNanos() override {
    return now_ns_.load(std::memory_order_acquire);
  }

  /// Jumps the clock forward and wakes every registered waiter.
  void Advance(std::chrono::nanoseconds d);

  void RegisterWake(void* token, std::function<void()> hook) override;
  void UnregisterWake(void* token) override;

 private:
  std::atomic<std::int64_t> now_ns_;
  std::mutex mu_;
  std::unordered_map<void*, std::function<void()>> hooks_;
};

}  // namespace pamakv::util
