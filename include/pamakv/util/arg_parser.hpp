// Tiny command-line flag parser shared by benches and examples.
// Supports --name=value and --name value forms plus boolean switches.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace pamakv {

class ArgParser {
 public:
  ArgParser(int argc, const char* const* argv);

  [[nodiscard]] bool Has(const std::string& name) const;
  [[nodiscard]] std::string GetString(const std::string& name,
                                      const std::string& fallback) const;
  [[nodiscard]] std::int64_t GetInt(const std::string& name,
                                    std::int64_t fallback) const;
  [[nodiscard]] double GetDouble(const std::string& name, double fallback) const;
  [[nodiscard]] bool GetBool(const std::string& name, bool fallback) const;

  /// Non-flag positional arguments in order.
  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

 private:
  [[nodiscard]] std::optional<std::string> Find(const std::string& name) const;

  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

/// Reads a positive scale factor from the PAMA_BENCH_SCALE environment
/// variable (default fallback when unset/invalid). Benches multiply their
/// request counts by this so CI can run them quickly while full paper-scale
/// runs remain one env var away.
[[nodiscard]] double BenchScaleFromEnv(double fallback = 0.5);

}  // namespace pamakv
