// Tiny command-line flag parser shared by benches, examples, the server
// and the load generator. Supports --name=value and --name value forms
// plus boolean switches. GetInt/GetDouble reject malformed values with an
// error naming the offending flag; binaries can register per-flag help
// text via Describe() and print it when --help is present.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace pamakv {

class ArgParser {
 public:
  ArgParser(int argc, const char* const* argv);

  [[nodiscard]] bool Has(const std::string& name) const;
  [[nodiscard]] std::string GetString(const std::string& name,
                                      const std::string& fallback) const;
  /// Throws std::runtime_error naming the flag when the value is present
  /// but not a full valid integer (e.g. --port=80x0).
  [[nodiscard]] std::int64_t GetInt(const std::string& name,
                                    std::int64_t fallback) const;
  /// Throws std::runtime_error naming the flag when the value is present
  /// but not a full valid number.
  [[nodiscard]] double GetDouble(const std::string& name, double fallback) const;
  [[nodiscard]] bool GetBool(const std::string& name, bool fallback) const;

  /// Non-flag positional arguments in order.
  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  // ---- --help support ----
  /// Registers help text for --<flag> (shown by PrintHelp in registration
  /// order). Returns *this so registrations chain.
  ArgParser& Describe(std::string flag, std::string help);
  /// True when the user passed --help.
  [[nodiscard]] bool HelpRequested() const { return Has("help"); }
  /// Prints "usage: <program> ..." + the Describe()d flags.
  void PrintHelp(std::ostream& out, const std::string& program,
                 const std::string& summary) const;

 private:
  [[nodiscard]] std::optional<std::string> Find(const std::string& name) const;

  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
  std::vector<std::pair<std::string, std::string>> help_;
};

/// Reads a positive scale factor from the PAMA_BENCH_SCALE environment
/// variable (default fallback when unset/invalid). Benches multiply their
/// request counts by this so CI can run them quickly while full paper-scale
/// runs remain one env var away.
[[nodiscard]] double BenchScaleFromEnv(double fallback = 0.5);

}  // namespace pamakv
