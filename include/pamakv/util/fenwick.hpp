// Fenwick (binary indexed) tree over a fixed-size array of signed counts.
// Used by GhostList to answer "how many live entries sit between two ring
// positions" in O(log n), which turns eviction-order sequence numbers into
// exact ghost-stack ranks.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace pamakv {

class FenwickTree {
 public:
  FenwickTree() = default;
  explicit FenwickTree(std::size_t size) : tree_(size + 1, 0) {}

  [[nodiscard]] std::size_t size() const noexcept { return tree_.empty() ? 0 : tree_.size() - 1; }

  /// Adds delta at 0-based position i.
  void Add(std::size_t i, std::int64_t delta) {
    assert(i < size());
    for (std::size_t p = i + 1; p < tree_.size(); p += p & (~p + 1)) {
      tree_[p] += delta;
    }
  }

  /// Sum of positions [0, i) (0-based, exclusive upper bound).
  [[nodiscard]] std::int64_t PrefixSum(std::size_t i) const {
    assert(i <= size());
    std::int64_t sum = 0;
    for (std::size_t p = i; p > 0; p -= p & (~p + 1)) {
      sum += tree_[p];
    }
    return sum;
  }

  /// Sum of positions [lo, hi) (0-based, half-open).
  [[nodiscard]] std::int64_t RangeSum(std::size_t lo, std::size_t hi) const {
    assert(lo <= hi);
    return PrefixSum(hi) - PrefixSum(lo);
  }

  /// Total over the whole array.
  [[nodiscard]] std::int64_t Total() const { return PrefixSum(size()); }

  void Reset() { tree_.assign(tree_.size(), 0); }

 private:
  std::vector<std::int64_t> tree_;
};

}  // namespace pamakv
