// Minimal CSV emission used by benches and the experiment runner to print
// figure series in a machine-readable, plot-ready form.
#pragma once

#include <initializer_list>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace pamakv {

/// Writes rows of a CSV table to a stream. Fields containing separators or
/// quotes are quoted per RFC 4180.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out, char sep = ',') : out_(&out), sep_(sep) {}

  void WriteHeader(std::initializer_list<std::string_view> cols) { WriteRowImpl(cols); }

  template <typename... Fields>
  void WriteRow(const Fields&... fields) {
    std::vector<std::string> row;
    row.reserve(sizeof...(fields));
    (row.push_back(ToField(fields)), ...);
    WriteRowStrings(row);
  }

  void WriteRowStrings(const std::vector<std::string>& row);

 private:
  template <typename Range>
  void WriteRowImpl(const Range& row) {
    std::vector<std::string> fields;
    for (const auto& f : row) fields.emplace_back(f);
    WriteRowStrings(fields);
  }

  [[nodiscard]] static std::string ToField(const std::string& s) { return s; }
  [[nodiscard]] static std::string ToField(std::string_view s) { return std::string(s); }
  [[nodiscard]] static std::string ToField(const char* s) { return s; }
  [[nodiscard]] static std::string ToField(double v);
  [[nodiscard]] static std::string ToField(float v) { return ToField(static_cast<double>(v)); }
  template <typename Int>
  [[nodiscard]] static std::string ToField(Int v)
    requires std::is_integral_v<Int>
  {
    return std::to_string(v);
  }

  [[nodiscard]] static std::string Escape(const std::string& field, char sep);

  std::ostream* out_;
  char sep_;
};

}  // namespace pamakv
