// Open-addressing hash index: KeyId -> ItemHandle.
//
// Linear probing with backward-shift deletion (no tombstones), power-of-two
// capacity, and splitmix finalizer hashing so that sequential synthetic key
// ids spread uniformly. This is the cache's single point of key lookup and
// sits on the hot path of every request, hence a purpose-built flat table
// rather than std::unordered_map.
#pragma once

#include <cstddef>
#include <vector>

#include "pamakv/util/rng.hpp"
#include "pamakv/util/types.hpp"

namespace pamakv {

class HashIndex {
 public:
  explicit HashIndex(std::size_t initial_capacity = 1024);

  /// Inserts or overwrites the mapping for `key`.
  void Upsert(KeyId key, ItemHandle handle);

  /// Returns the handle for `key`, or kInvalidHandle.
  [[nodiscard]] ItemHandle Find(KeyId key) const noexcept;

  /// Removes the mapping; returns false if absent.
  bool Erase(KeyId key) noexcept;

  /// Grows the table (never shrinks) so `expected_keys` entries fit without
  /// triggering a load-factor rehash. Called once up front (the engine sizes
  /// it from its slot budget) to avoid rehash storms during warmup.
  void Reserve(std::size_t expected_keys);

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return slots_.size(); }

 private:
  struct Slot {
    KeyId key = 0;
    ItemHandle handle = kInvalidHandle;  // kInvalidHandle marks "empty"
  };
  static constexpr std::size_t kSlotsPerCacheLine = 64 / sizeof(Slot);

  [[nodiscard]] std::size_t IdealSlot(KeyId key) const noexcept {
    return static_cast<std::size_t>(Mix64(key)) & mask_;
  }
  /// Software prefetch of the slot's cache line: the mixed hash makes every
  /// probe start a random access, so issuing the prefetch as soon as the
  /// position is known overlaps the memory latency with the remaining
  /// address arithmetic. Clusters are short (load < 0.7), so prefetching
  /// one line ahead of the probe covers almost every chain.
  void PrefetchSlot(std::size_t pos) const noexcept {
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(&slots_[pos], 0 /*read*/, 1 /*low temporal locality*/);
#else
    (void)pos;
#endif
  }
  [[nodiscard]] std::size_t ProbeDistance(std::size_t pos) const noexcept {
    return (pos - IdealSlot(slots_[pos].key)) & mask_;
  }
  void Grow();
  void Rehash(std::size_t new_capacity);
  static std::size_t RoundUpPow2(std::size_t n) noexcept;

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
};

}  // namespace pamakv
