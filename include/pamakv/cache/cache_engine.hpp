// CacheEngine: the Memcached-style slab cache the paper's schemes manage.
//
// The engine owns the mechanics — size classes, penalty-band subclasses,
// per-subclass LRU stacks and ghost lists, the item table, the hash index,
// and slab/slot accounting — and delegates every *allocation decision* to a
// pluggable AllocationPolicy. The division of labor mirrors the paper:
// Sec. II's schemes (original Memcached, PSA, Twemcache, Facebook
// age-balancing) and Sec. III's PAMA are all policies over the same
// substrate, differing only in when and where slabs move.
//
// Semantics:
//  * Get(key): hit promotes the item to the top of its subclass stack.
//    A miss returns the caller the responsibility to fetch + Set — the
//    simulator write-allocates, matching the paper's assumption that a GET
//    miss is immediately followed by a SET of the same key.
//  * Set(key, size, penalty): routes to class = size class of `size`,
//    subclass = penalty band of `penalty`. If the class has no free slot
//    the engine asks the free pool first and the policy second (MakeRoom).
//    Memcached-compatible: a SET whose space cannot be found fails.
//  * Del(key): removes the item (and any ghost entry).
//
// Logical time is the count of requests processed ("accesses"), which is
// how the paper defines PAMA's windows.
#pragma once

#include <deque>
#include <memory>
#include <vector>

#include "pamakv/cache/hash_index.hpp"
#include "pamakv/cache/item.hpp"
#include "pamakv/cache/penalty_bands.hpp"
#include "pamakv/cache/stats.hpp"
#include "pamakv/ds/ghost_list.hpp"
#include "pamakv/ds/lru_stack.hpp"
#include "pamakv/slab/slab_pool.hpp"
#include "pamakv/util/types.hpp"

namespace pamakv {

class AllocationPolicy;

struct EngineConfig {
  SizeClassConfig size_classes;
  /// Penalty-band bounds (µs). Empty => single subclass per class.
  std::vector<MicroSecs> penalty_band_bounds;
  Bytes capacity_bytes = 64ULL * 1024 * 1024;
  /// Service time charged to a hit (µs); the paper treats hits as free
  /// relative to multi-millisecond misses.
  MicroSecs hit_time_us = 0;
  /// Ghost list length per subclass, in units of that class's slots-per-
  /// slab. PAMA with m reference segments needs at least m + 1.
  std::uint32_t ghost_segments = 4;
  /// Seed for the engine's internal randomized structures.
  std::uint64_t seed = 42;
};

struct GetResult {
  bool hit = false;
  /// Service time charged for this request (hit cost or miss penalty), µs.
  MicroSecs service_time_us = 0;
};

struct SetResult {
  bool stored = false;
  bool updated = false;  ///< overwrote an existing entry for the key
};

class CacheEngine {
 public:
  CacheEngine(const EngineConfig& config, std::unique_ptr<AllocationPolicy> policy);
  ~CacheEngine();

  CacheEngine(const CacheEngine&) = delete;
  CacheEngine& operator=(const CacheEngine&) = delete;

  /// GET. On a miss, `miss_penalty` (from the trace / penalty model) is the
  /// service time the user experiences; it is charged to the stats. `size`
  /// is the size of the value being requested — the trace knows it, and the
  /// engine needs it to route the miss to the ghost list of the class/
  /// subclass the item would occupy.
  GetResult Get(KeyId key, Bytes size, MicroSecs miss_penalty);

  /// SET of an item with the given size and per-key miss penalty.
  SetResult Set(KeyId key, Bytes size, MicroSecs penalty);

  /// DELETE. Returns true if the key was cached.
  bool Del(KeyId key);

  [[nodiscard]] bool Contains(KeyId key) const noexcept {
    return index_.Find(key) != kInvalidHandle;
  }

  // ---- Introspection (stats, figures, tests) ----
  [[nodiscard]] const CacheStats& stats() const noexcept { return stats_; }
  [[nodiscard]] AccessClock clock() const noexcept { return clock_; }
  [[nodiscard]] const SlabPool& pool() const noexcept { return pool_; }
  [[nodiscard]] const SizeClassTable& classes() const noexcept { return classes_; }
  [[nodiscard]] const PenaltyBandTable& bands() const noexcept { return bands_; }
  [[nodiscard]] std::uint32_t num_subclasses() const noexcept { return bands_.num_bands(); }
  [[nodiscard]] std::size_t item_count() const noexcept { return index_.size(); }
  [[nodiscard]] MicroSecs hit_time_us() const noexcept { return hit_time_us_; }

  /// Items currently in subclass (c, s) — fig. 4's per-subclass share.
  [[nodiscard]] std::size_t SubclassItemCount(ClassId c, SubclassId s) const {
    return StackOf(c, s).size();
  }

  /// GET misses whose key was found in (c, s)'s ghost list — the
  /// per-subclass breakdown of stats().ghost_hits (the metrics layer
  /// exports these as pamakv_ghost_hits{class,band} counters).
  [[nodiscard]] std::uint64_t GhostHitCount(ClassId c, SubclassId s) const {
    return ghost_hits_by_stack_[StackIndex(c, s)];
  }

  // ---- Policy-facing mechanics ----
  // These are the primitive moves policies compose. They are public rather
  // than friend-scoped so user-defined policies (examples/custom_policy)
  // can build on them too.

  [[nodiscard]] LruStack& StackOf(ClassId c, SubclassId s) {
    return stacks_[StackIndex(c, s)];
  }
  [[nodiscard]] const LruStack& StackOf(ClassId c, SubclassId s) const {
    return stacks_[StackIndex(c, s)];
  }
  [[nodiscard]] GhostList& GhostOf(ClassId c, SubclassId s) {
    return ghosts_[StackIndex(c, s)];
  }
  [[nodiscard]] const GhostList& GhostOf(ClassId c, SubclassId s) const {
    return ghosts_[StackIndex(c, s)];
  }
  [[nodiscard]] const Item& ItemAt(ItemHandle h) const { return items_[h]; }

  /// Evicts the LRU item of subclass (c, s). The key goes to the subclass
  /// ghost list. Returns false if the stack is empty.
  bool EvictBottom(ClassId c, SubclassId s);

  /// Evicts the class-wide LRU item (oldest last_access across subclass
  /// bottoms). Returns false if the class holds no item.
  bool EvictClassLru(ClassId c);

  /// Evicts items from (from_c, from_s)'s bottom until that subclass can
  /// release a whole slab, then transfers the slab to (to_c, to_s).
  /// Returns false if the subclass cannot supply enough items.
  bool MigrateSlab(ClassId from_c, SubclassId from_s, ClassId to_c,
                   SubclassId to_s);

  /// Class-granular variant of MigrateSlab for single-stack policies:
  /// evicts class-wide LRU items from from_c until some subclass of it can
  /// release a slab, then transfers it to (to_c, to_s). Returns false if
  /// from_c cannot supply one. With one penalty band (how all non-PAMA
  /// policies run) this is exactly per-class migration.
  bool MigrateSlabClassLru(ClassId from_c, ClassId to_c, SubclassId to_s = 0);

  /// last_access of the class-wide LRU item; nullopt when the class is empty.
  [[nodiscard]] std::optional<AccessClock> OldestAccess(ClassId c) const;

  /// Number of items that must leave subclass (c, s) so class c can free a
  /// slab, or nullopt if (c, s) cannot supply them.
  [[nodiscard]] std::optional<std::size_t> EvictionsToFreeSlab(ClassId c,
                                                               SubclassId s) const;

  [[nodiscard]] AllocationPolicy& policy() noexcept { return *policy_; }
  [[nodiscard]] const AllocationPolicy& policy() const noexcept { return *policy_; }

 private:
  [[nodiscard]] std::size_t StackIndex(ClassId c, SubclassId s) const noexcept {
    return static_cast<std::size_t>(c) * bands_.num_bands() + s;
  }
  ItemHandle AllocateItem();
  void ReleaseItem(ItemHandle h) noexcept;
  /// Grows the item table so the next AllocateItem cannot throw. Called
  /// first thing in Set: any allocation failure (real or injected through
  /// the engine.item_alloc failpoint) surfaces before a single byte of
  /// engine state has changed.
  void ReserveItemCapacity();
  /// Removes an item from index/stack/slots. ghost=true records it in the
  /// subclass ghost list (evictions do; explicit DELs do not).
  void RemoveItem(ItemHandle h, bool to_ghost);
  /// Obtains a free slot in class c, invoking the policy when needed.
  [[nodiscard]] bool ObtainSlot(ClassId c, SubclassId s);

  SizeClassTable classes_;
  PenaltyBandTable bands_;
  SlabPool pool_;
  HashIndex index_;
  std::deque<Item> items_;
  std::vector<ItemHandle> free_items_;
  std::vector<LruStack> stacks_;
  std::vector<GhostList> ghosts_;
  /// Ghost hits per (class, subclass), indexed like stacks_.
  std::vector<std::uint64_t> ghost_hits_by_stack_;
  std::unique_ptr<AllocationPolicy> policy_;
  CacheStats stats_;
  AccessClock clock_ = 0;
  MicroSecs hit_time_us_;
};

}  // namespace pamakv
