// ShardedCache: hash-partitioned pool of independent CacheEngines.
//
// Production Memcached deployments spread keys across many server
// instances with consistent hashing; each instance manages its own memory
// independently (the paper's schemes run per server). This wrapper
// reproduces that topology in-process: N engines, each with capacity/N and
// its own policy instance, keys routed by hash. It demonstrates — and the
// sharding test quantifies — that PAMA's benefit is per-shard and survives
// partitioning, and it gives multi-threaded simulations a safe unit of
// parallelism (one shard per thread; engines are single-threaded by
// design).
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "pamakv/cache/cache_engine.hpp"
#include "pamakv/util/rng.hpp"

namespace pamakv {

class ShardedCache {
 public:
  using EngineFactory = std::function<std::unique_ptr<CacheEngine>(Bytes)>;

  /// Builds `shards` engines, each given capacity_bytes / shards via the
  /// factory (which attaches the policy).
  ShardedCache(std::size_t shards, Bytes capacity_bytes,
               const EngineFactory& factory);

  GetResult Get(KeyId key, Bytes size, MicroSecs miss_penalty) {
    return ShardFor(key).Get(key, size, miss_penalty);
  }
  SetResult Set(KeyId key, Bytes size, MicroSecs penalty) {
    return ShardFor(key).Set(key, size, penalty);
  }
  bool Del(KeyId key) { return ShardFor(key).Del(key); }
  [[nodiscard]] bool Contains(KeyId key) const {
    return ShardFor(key).Contains(key);
  }

  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }
  [[nodiscard]] CacheEngine& shard(std::size_t i) { return *shards_.at(i); }
  [[nodiscard]] const CacheEngine& shard(std::size_t i) const {
    return *shards_.at(i);
  }
  [[nodiscard]] std::size_t ShardIndexFor(KeyId key) const noexcept {
    return ShardIndexFor(key, shards_.size());
  }
  /// Routing function shared with ParallelSimulator: mixes with a distinct
  /// salt so shard routing is independent of the engines' internal hashing.
  [[nodiscard]] static std::size_t ShardIndexFor(
      KeyId key, std::size_t shard_count) noexcept {
    return static_cast<std::size_t>(Mix64(key ^ kShardSalt) % shard_count);
  }

  /// Aggregated statistics across shards.
  [[nodiscard]] CacheStats TotalStats() const;

 private:
  [[nodiscard]] CacheEngine& ShardFor(KeyId key) {
    return *shards_[ShardIndexFor(key)];
  }
  [[nodiscard]] const CacheEngine& ShardFor(KeyId key) const {
    return *shards_[ShardIndexFor(key)];
  }

  static constexpr std::uint64_t kShardSalt = 0x51a2d5a17e5a17edULL;
  std::vector<std::unique_ptr<CacheEngine>> shards_;
};

}  // namespace pamakv
