// Penalty-band table: maps a miss penalty to the subclass index within a
// size class. The paper's evaluation divides every class into five
// subclasses covering (0,1ms], (1,10ms], (10,100ms], (100,1000ms], (1s,5s]
// (Sec. IV). Penalties beyond the last bound fall into the last band.
// A single-band table collapses subclasses entirely, which is how the
// non-penalty-aware policies (and pre-PAMA) are configured.
#pragma once

#include <algorithm>
#include <vector>

#include "pamakv/util/types.hpp"

namespace pamakv {

class PenaltyBandTable {
 public:
  /// upper_bounds: ascending exclusive-lower/inclusive-upper bounds in
  /// microseconds. Empty vector => one band (subclasses disabled).
  explicit PenaltyBandTable(std::vector<MicroSecs> upper_bounds = {})
      : bounds_(std::move(upper_bounds)) {}

  /// The paper's five bands.
  [[nodiscard]] static PenaltyBandTable PaperDefault() {
    return PenaltyBandTable({1'000, 10'000, 100'000, 1'000'000, 5'000'000});
  }

  [[nodiscard]] SubclassId BandFor(MicroSecs penalty) const noexcept {
    const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), penalty);
    if (it == bounds_.end()) {
      return bounds_.empty() ? 0 : static_cast<SubclassId>(bounds_.size() - 1);
    }
    return static_cast<SubclassId>(it - bounds_.begin());
  }

  [[nodiscard]] std::uint32_t num_bands() const noexcept {
    return bounds_.empty() ? 1 : static_cast<std::uint32_t>(bounds_.size());
  }

  [[nodiscard]] const std::vector<MicroSecs>& bounds() const noexcept {
    return bounds_;
  }

 private:
  std::vector<MicroSecs> bounds_;
};

}  // namespace pamakv
