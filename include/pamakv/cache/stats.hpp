// Lifetime counters maintained by the cache engine. The simulator snapshots
// these at window boundaries and differences consecutive snapshots to get
// the per-window hit ratio and average service time series the paper plots.
#pragma once

#include <array>
#include <cstdint>

#include "pamakv/util/types.hpp"

namespace pamakv {

/// One named counter of a StatsSnapshot. `name` has static storage.
struct StatEntry {
  const char* name;
  std::uint64_t value;
};

/// Fixed-size list of (name, value) pairs in memcached `stats` spelling;
/// built by CacheStats::Snapshot(). An array (not a map) so producing a
/// snapshot never allocates.
inline constexpr std::size_t kStatsSnapshotEntries = 13;
using StatsSnapshot = std::array<StatEntry, kStatsSnapshotEntries>;

struct CacheStats {
  std::uint64_t gets = 0;
  std::uint64_t get_hits = 0;
  std::uint64_t get_misses = 0;
  std::uint64_t sets = 0;
  std::uint64_t set_updates = 0;     ///< SETs that overwrote an existing key
  std::uint64_t set_failures = 0;    ///< stores refused (no space obtainable)
  std::uint64_t dels = 0;
  std::uint64_t evictions = 0;
  std::uint64_t slab_migrations = 0; ///< cross-class slab transfers
  std::uint64_t ghost_hits = 0;      ///< misses whose key was in a ghost list
  /// Sum of miss penalties charged to GET misses, in microseconds. Average
  /// GET service time = (penalty_total + hits * hit_time) / gets.
  std::uint64_t miss_penalty_total_us = 0;
  /// Sum over GET hits of the hit item's stored miss penalty (µs): the
  /// penalty the cache avoided by holding the item. Together with
  /// miss_penalty_total_us this is the live penalty-saved estimate the
  /// metrics layer exports (a penalty-blind LRU baseline saves the same
  /// hit count but not the same penalty mass).
  std::uint64_t hit_penalty_saved_us = 0;
  /// Gauge (not a monotonic counter): bytes of item payload currently
  /// stored, maintained by the engine on insert/overwrite/removal. Under
  /// Since() it diffs to the net change over the window; under operator+=
  /// it sums across shards, which is what the server's `stats` command
  /// reports as memcached's `bytes`.
  std::uint64_t bytes_stored = 0;

  [[nodiscard]] double HitRatio() const noexcept {
    return gets ? static_cast<double>(get_hits) / static_cast<double>(gets) : 0.0;
  }

  /// Average GET service time in microseconds given a fixed hit cost.
  [[nodiscard]] double AvgServiceTimeUs(MicroSecs hit_time_us) const noexcept {
    if (gets == 0) return 0.0;
    const double total = static_cast<double>(miss_penalty_total_us) +
                         static_cast<double>(get_hits) *
                             static_cast<double>(hit_time_us);
    return total / static_cast<double>(gets);
  }

  /// Component-wise difference (this - earlier); used for window metrics.
  [[nodiscard]] CacheStats Since(const CacheStats& earlier) const noexcept;

  /// Component-wise accumulation; used to aggregate per-shard stats.
  CacheStats& operator+=(const CacheStats& other) noexcept;

  /// The counters the server's `stats` command reports, under memcached's
  /// stat names (cmd_get, get_hits, bytes, evictions, ...); pamakv-only
  /// counters keep their own names. Snapshot(a += b) equals entry-wise
  /// Snapshot(a) + Snapshot(b) — the stats_test locks this in.
  [[nodiscard]] StatsSnapshot Snapshot() const noexcept;
};

}  // namespace pamakv
