// Cached item metadata.
//
// The simulator caches metadata, not payload bytes: every policy in the
// paper decides on (key recurrence, size class, miss penalty) alone, and
// memory use is accounted at slab/slot granularity by SlabPool. `size` is
// the item's true byte size (used for class routing); `penalty` is the
// per-key miss penalty the trace attributes to it (GET-miss -> SET gap).
#pragma once

#include "pamakv/ds/lru_stack.hpp"
#include "pamakv/util/types.hpp"

namespace pamakv {

struct Item {
  KeyId key = 0;
  Bytes size = 0;
  MicroSecs penalty = 0;
  ClassId cls = 0;
  SubclassId sub = 0;
  /// Position of this item in its subclass LRU stack.
  LruStack::Node* node = nullptr;
  /// Logical time (access count) of the last touch; used by the Facebook
  /// age-balancing policy and for LRU-age diagnostics.
  AccessClock last_access = 0;
};

}  // namespace pamakv
