// StringKeyCache: a string-keyed front end over CacheEngine.
//
// The engine works on 64-bit key ids for speed; real Memcached clients use
// byte-string keys (up to 250 bytes). This adapter hashes strings into the
// 64-bit id space with a strong 128->64-bit mix. Collisions would make the
// cache answer a GET with the wrong key's metadata, so the adapter keeps a
// verification table of the exact key strings and treats a mismatch as a
// miss (and evicts the squatting entry) — correctness is preserved even in
// the astronomically unlikely collision case.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>

#include "pamakv/cache/cache_engine.hpp"

namespace pamakv {

/// 64-bit hash of a byte string (FNV-1a core + splitmix finalizer).
[[nodiscard]] KeyId HashStringKey(std::string_view key) noexcept;

class StringKeyCache {
 public:
  /// Takes ownership of a fully configured engine.
  explicit StringKeyCache(std::unique_ptr<CacheEngine> engine)
      : engine_(std::move(engine)) {}

  GetResult Get(std::string_view key, Bytes size, MicroSecs miss_penalty);
  SetResult Set(std::string_view key, Bytes size, MicroSecs penalty);
  bool Del(std::string_view key);
  [[nodiscard]] bool Contains(std::string_view key) const;

  [[nodiscard]] CacheEngine& engine() noexcept { return *engine_; }
  [[nodiscard]] const CacheEngine& engine() const noexcept { return *engine_; }
  [[nodiscard]] const CacheStats& stats() const noexcept {
    return engine_->stats();
  }

  /// Number of hash collisions resolved (expected: 0 in any real run).
  [[nodiscard]] std::uint64_t collisions_resolved() const noexcept {
    return collisions_;
  }

 private:
  /// True when `id` is cached and its stored string matches `key`.
  [[nodiscard]] bool VerifiedHit(KeyId id, std::string_view key) const;

  std::unique_ptr<CacheEngine> engine_;
  /// id -> exact key string for entries currently cached.
  std::unordered_map<KeyId, std::string> names_;
  std::uint64_t collisions_ = 0;
};

}  // namespace pamakv
