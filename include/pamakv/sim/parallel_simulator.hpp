// ParallelSimulator: sharded trace replay with one worker thread per shard.
//
// Topology (see DESIGN.md, "Threading model"): the calling thread acts as
// the producer — it reads the trace in order, routes every request to its
// owning shard with the same salted hash ShardedCache uses, and hands the
// requests over in fixed-size batches through one bounded SPSC ring per
// worker. Each worker owns a private CacheEngine (capacity/N, its own
// policy instance) and replays its sub-stream through the ordinary serial
// Simulator, so per-shard semantics — write-allocate, window sampling,
// stats — are byte-identical to replaying that shard's sub-trace serially.
// A final merge step reduces the per-shard window series into one aggregate
// SimResult (MergeWindows in sim/metrics).
//
// Engines stay single-threaded by design; the shard is the unit of
// parallelism and nothing mutable is shared between workers. Determinism:
// the producer preserves trace order per shard and the rings are FIFO, so
// every run (any thread interleaving) produces the same per-shard results.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "pamakv/cache/cache_engine.hpp"
#include "pamakv/sim/metrics.hpp"
#include "pamakv/sim/simulator.hpp"
#include "pamakv/trace/request.hpp"

namespace pamakv {

struct ParallelSimConfig {
  /// Per-shard simulator settings. window_gets counts each shard's own GETs;
  /// to mirror an aggregate window of W GETs across N shards, pass W / N.
  SimConfig sim;
  std::size_t shards = 1;
  /// Requests per batch handed through a ring (amortizes synchronization).
  std::size_t batch_requests = 1024;
  /// Ring capacity per shard, in batches (bounds producer run-ahead).
  std::size_t ring_batches = 64;
};

struct ParallelSimResult {
  /// Cross-shard reduction: summed stats, gets-weighted window series.
  SimResult aggregate;
  /// One serial-equivalent SimResult per shard, in shard order.
  std::vector<SimResult> per_shard;
};

class ParallelSimulator {
 public:
  /// Same shape as ShardedCache::EngineFactory: builds one engine of the
  /// given capacity with its policy attached.
  using EngineFactory = std::function<std::unique_ptr<CacheEngine>(Bytes)>;

  explicit ParallelSimulator(const ParallelSimConfig& config);

  /// Replays `trace` to exhaustion across config().shards workers. Each
  /// engine is built as factory(total_capacity_bytes / shards). Worker
  /// exceptions are re-thrown here after all threads join.
  ParallelSimResult Run(const EngineFactory& factory,
                        Bytes total_capacity_bytes, TraceSource& trace,
                        const std::string& workload = "");

  /// The shard a key routes to; identical to ShardedCache's routing.
  [[nodiscard]] std::size_t ShardIndexFor(KeyId key) const noexcept;

  [[nodiscard]] const ParallelSimConfig& config() const noexcept {
    return config_;
  }

 private:
  ParallelSimConfig config_;
};

}  // namespace pamakv
