// Trace-driven simulator.
//
// Replays a TraceSource through a CacheEngine with the paper's request
// semantics: a GET miss is immediately followed by a SET of the same key
// (write-allocate — the paper assumes "a GET request miss immediately
// follows a retrieval ... and a SET request for caching the corresponding
// KV item", Sec. I). Metrics are sampled per window of GETs.
#pragma once

#include <cstdint>

#include "pamakv/cache/cache_engine.hpp"
#include "pamakv/sim/metrics.hpp"
#include "pamakv/trace/request.hpp"

namespace pamakv {

struct SimConfig {
  /// Metrics window in GETs (the paper uses 10^6 at 8x10^8 total; scaled
  /// runs shrink both together).
  std::uint64_t window_gets = 100'000;
  /// Re-insert missed values (Memcached semantics). Disable to model a
  /// read-only scan.
  bool write_allocate = true;
  /// Capture per-class slab counts in every window sample (Fig. 3).
  bool capture_class_slabs = true;
  /// Capture per-subclass item counts in every window sample (Fig. 4).
  bool capture_subclass_items = false;
};

class Simulator {
 public:
  explicit Simulator(const SimConfig& config = {}) : config_(config) {}

  /// Replays `trace` (already positioned at its start) to exhaustion.
  SimResult Run(CacheEngine& engine, TraceSource& trace);

  [[nodiscard]] const SimConfig& config() const noexcept { return config_; }

 private:
  void SampleWindow(const CacheEngine& engine, const CacheStats& window_delta,
                    SimResult& result, std::uint64_t window_index) const;

  SimConfig config_;
};

}  // namespace pamakv
