// Experiment harness: builds named scheme configurations and runs
// scheme x cache-size grids in parallel. Every bench binary (one per paper
// figure) is a thin wrapper over this.
//
// Recognized scheme names:
//  * "memcached"    — original Memcached, no slab reallocation (Sec. II)
//  * "psa"          — periodic slab allocation [Carra & Michiardi]
//  * "twemcache"    — Twitter's random slab reassignment
//  * "facebook-age" — Facebook's LRU-age balancer [Nishtala et al.]
//  * "pre-pama"     — PAMA without penalties (value = request count)
//  * "pama"         — full PAMA (Bloom-filter attribution, paper default)
//  * "pama-exact"   — PAMA with exact-rank attribution (ablation)
//  * "lama-hr"/"lama-st" — MRC+DP allocator from related work [9]
//
// Non-penalty-aware schemes run with a single penalty band (one LRU per
// class, as in their original systems); the PAMA family gets the paper's
// five bands unless overridden.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "pamakv/cache/cache_engine.hpp"
#include "pamakv/policy/facebook_age.hpp"
#include "pamakv/policy/lama.hpp"
#include "pamakv/policy/pama.hpp"
#include "pamakv/policy/psa.hpp"
#include "pamakv/sim/simulator.hpp"
#include "pamakv/trace/request.hpp"

namespace pamakv {

struct SchemeOptions {
  PamaConfig pama;
  PsaConfig psa;
  FacebookAgeConfig facebook;
  LamaConfig lama;
  /// Penalty-band bounds for the PAMA family; empty selects the paper's
  /// five bands.
  std::vector<MicroSecs> pama_bands;
  MicroSecs hit_time_us = 0;
  std::uint64_t engine_seed = 42;
};

/// True if `scheme` is a recognized name.
[[nodiscard]] bool IsKnownScheme(std::string_view scheme);

/// All scheme names, in the order the paper's figures present them.
[[nodiscard]] std::vector<std::string> AllSchemeNames();

/// Builds a ready-to-run engine for the named scheme.
[[nodiscard]] std::unique_ptr<CacheEngine> MakeEngine(
    std::string_view scheme, Bytes capacity_bytes,
    const SizeClassConfig& geometry, const SchemeOptions& options = {});

struct ExperimentCell {
  std::string scheme;
  Bytes cache_bytes = 0;
};

class ExperimentRunner {
 public:
  using TraceFactory = std::function<std::unique_ptr<TraceSource>()>;

  ExperimentRunner(SizeClassConfig geometry, SchemeOptions options,
                   SimConfig sim_config)
      : geometry_(geometry), options_(options), sim_config_(sim_config) {}

  /// Runs every cell (its own engine + its own trace instance) using up to
  /// `threads` workers; results are returned in cell order. `workload`
  /// labels the SimResults.
  [[nodiscard]] std::vector<SimResult> RunGrid(
      const std::vector<ExperimentCell>& cells, const TraceFactory& make_trace,
      const std::string& workload, std::size_t threads = 0) const;

  /// Convenience: one scheme, one cache size.
  [[nodiscard]] SimResult RunOne(const std::string& scheme, Bytes cache_bytes,
                                 TraceSource& trace,
                                 const std::string& workload) const;

 private:
  SizeClassConfig geometry_;
  SchemeOptions options_;
  SimConfig sim_config_;
};

}  // namespace pamakv
