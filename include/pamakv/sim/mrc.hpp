// MattsonProfiler: exact miss-ratio curves in one pass.
//
// Feeds every GET of a trace through an order-statistic LRU stack and
// histograms the exact reuse depths (Mattson's classic single-pass method,
// O(log n) per access here). The resulting curve answers "what would the
// miss ratio / total miss penalty be at ANY cache size" for a pure-LRU
// cache — the analysis backbone of the related-work LAMA scheme [9], and a
// useful workload-characterization tool on its own (examples/mrc_explorer,
// tools for sizing caches before running full simulations).
//
// Two curves are tracked: by request count (miss *ratio*) and by penalty
// mass (miss *cost*), since the paper's whole point is that the two
// disagree.
#pragma once

#include <cstdint>
#include <vector>

#include "pamakv/cache/hash_index.hpp"
#include "pamakv/ds/lru_stack.hpp"
#include "pamakv/trace/request.hpp"
#include "pamakv/util/types.hpp"

namespace pamakv {

class MattsonProfiler {
 public:
  /// bucket_bytes: depth-histogram granularity in bytes of stack depth
  /// (item sizes are accumulated, so the curve's x-axis is cache bytes).
  explicit MattsonProfiler(Bytes bucket_bytes = 1024 * 1024);

  /// Records one GET. SET/DEL records can be passed too: SETs touch the
  /// stack like GETs (without counting toward the curves); DELs remove.
  void Record(const Request& request);

  /// Drains a source to exhaustion (GETs/SETs/DELs).
  void Profile(TraceSource& trace);

  struct Curve {
    /// x[i] = (i+1) * bucket_bytes of cache; y[i] = miss ratio (or miss
    /// penalty per request, µs) with that much cache under pure LRU.
    std::vector<double> miss_ratio;
    std::vector<double> miss_penalty_per_get_us;
    Bytes bucket_bytes = 0;
    std::uint64_t gets = 0;
    std::uint64_t cold_misses = 0;
  };

  /// Builds the curves from everything recorded so far.
  [[nodiscard]] Curve Build() const;

  [[nodiscard]] std::uint64_t gets() const noexcept { return gets_; }
  [[nodiscard]] std::size_t unique_keys() const noexcept {
    return stack_.size();
  }

 private:
  struct Tracked {
    KeyId key = 0;
    Bytes size = 0;
    LruStack::Node* node = nullptr;
  };

  /// Byte depth of a node: sum of sizes of items above it. Approximated as
  /// rank * mean item size, which is exact for fixed-size items and keeps
  /// the profiler O(log n); the approximation error is reported by tests.
  [[nodiscard]] Bytes DepthBytes(std::size_t rank) const;
  void Touch(KeyId key, Bytes size, MicroSecs penalty, bool count);

  Bytes bucket_bytes_;
  LruStack stack_;
  HashIndex index_;
  std::vector<Tracked> items_;
  std::vector<ItemHandle> free_items_;
  std::vector<std::uint64_t> depth_hits_;
  std::vector<double> depth_penalty_us_;
  std::uint64_t gets_ = 0;
  std::uint64_t cold_misses_ = 0;
  double penalty_cold_us_ = 0.0;
  Bytes total_bytes_ = 0;  // bytes currently on the stack
};

}  // namespace pamakv
