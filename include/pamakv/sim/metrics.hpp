// Windowed simulation metrics.
//
// The paper reports hit ratio and average GET service time per window of
// 10^6 GETs, plus per-class slab allocations (Fig. 3) and per-subclass
// shares (Fig. 4) over time. WindowSample captures all of that at each
// window boundary; SimResult aggregates the run.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "pamakv/cache/stats.hpp"
#include "pamakv/util/types.hpp"

namespace pamakv {

struct WindowSample {
  std::uint64_t window_index = 0;
  /// GETs served since run start at the window's end.
  std::uint64_t gets_total = 0;
  double hit_ratio = 0.0;          ///< within this window
  double avg_service_time_us = 0.0;///< within this window
  std::uint64_t evictions = 0;     ///< within this window
  std::uint64_t slab_migrations = 0;
  /// Slabs per class at the window boundary (Fig. 3 series).
  std::vector<std::size_t> class_slabs;
  /// Items per (class, subclass), row-major by class (Fig. 4 series).
  std::vector<std::size_t> subclass_items;
  /// Slabs owned per (class, subclass), row-major by class (Fig. 4).
  std::vector<std::size_t> subclass_slabs;
};

struct SimResult {
  std::string scheme;
  std::string workload;
  Bytes cache_bytes = 0;
  CacheStats final_stats;
  double overall_hit_ratio = 0.0;
  double overall_avg_service_time_us = 0.0;
  double wall_seconds = 0.0;
  std::uint64_t requests_replayed = 0;
  std::vector<WindowSample> windows;
};

/// Reduces per-shard window series into one aggregate series. Window w of
/// the result combines window w of every shard that reached it: counters
/// (evictions, migrations, class_slabs, ...) are summed, ratio metrics
/// (hit_ratio, avg_service_time_us) are weighted by each shard's GETs in
/// that window, and gets_total sums every shard's cumulative GETs (shards
/// that finished earlier contribute their final total). The result is as
/// long as the longest shard series.
[[nodiscard]] std::vector<WindowSample> MergeWindows(
    const std::vector<SimResult>& shards);

/// Writes a SimResult's window series as CSV:
/// scheme,workload,cache_mb,window,gets,hit_ratio,avg_service_us,...
void WriteWindowCsv(std::ostream& out, const SimResult& result,
                    bool include_header);

/// Writes per-class slab series: scheme,window,class,slabs.
void WriteClassSlabCsv(std::ostream& out, const SimResult& result,
                       bool include_header);

/// Writes per-subclass item series for one class:
/// scheme,window,class,subclass,items.
void WriteSubclassCsv(std::ostream& out, const SimResult& result, ClassId cls,
                      std::uint32_t num_subclasses, bool include_header);

}  // namespace pamakv
