// Standard Bloom filter with double hashing (Kirsch & Mitzenmacher):
// h_i(x) = h1(x) + i * h2(x), which preserves the asymptotic false-positive
// rate while requiring only two 64-bit hashes per operation.
//
// PAMA uses one filter per reference segment plus a shared "removal filter"
// (paper Sec. III, third challenge) so that segment membership tests cost
// O(1) instead of scanning LRU-stack segments.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "pamakv/util/types.hpp"

namespace pamakv {

class BloomFilter {
 public:
  /// Sizes the filter for the target capacity and false-positive rate.
  /// bits = -n ln(p) / (ln 2)^2 rounded up to a power of two (probes reduce
  /// with a mask, not a divide), k = (bits/n) ln 2, both clamped to sane
  /// minimums so tiny segments still get a working filter.
  BloomFilter(std::size_t expected_items, double false_positive_rate);

  void Add(KeyId key) noexcept;
  [[nodiscard]] bool MayContain(KeyId key) const noexcept;

  void Clear() noexcept;

  [[nodiscard]] std::size_t bit_count() const noexcept { return bit_count_; }
  [[nodiscard]] std::size_t hash_count() const noexcept { return hash_count_; }
  [[nodiscard]] std::size_t added_count() const noexcept { return added_; }

  /// Memory footprint of the bit array in bytes (space-overhead reporting).
  [[nodiscard]] std::size_t footprint_bytes() const noexcept {
    return words_.size() * sizeof(std::uint64_t);
  }

 private:
  struct HashPair {
    std::uint64_t h1;
    std::uint64_t h2;
  };
  [[nodiscard]] static HashPair HashKey(KeyId key) noexcept;

  std::size_t bit_count_;
  std::uint64_t bit_mask_ = 0;
  std::size_t hash_count_;
  std::size_t added_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace pamakv
