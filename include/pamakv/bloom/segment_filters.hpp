// SegmentFilterSet: the paper's per-reference-segment Bloom filters plus the
// shared removal filter (Sec. III, third challenge).
//
// Lifecycle: at each time-window boundary the PAMA value tracker rebuilds
// the set from a scan of the bottom (m+1) stack segments; between rebuilds
// the stack keeps shifting, so the filters are a deliberately stale snapshot.
// Items that leave the snapshot region mid-window (promoted on access, or
// evicted) are recorded in the removal filter; a membership answer is
// "in segment i" only if segment i's filter says yes AND the removal filter
// says no. This mirrors the paper's rule that the removal filter tracks
// "items that have been recently removed out of the segments".
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "pamakv/bloom/bloom_filter.hpp"
#include "pamakv/util/types.hpp"

namespace pamakv {

class SegmentFilterSet {
 public:
  /// segments: number of reference segments tracked (m + 1 in the paper);
  /// items_per_segment: slots per slab of the owning class;
  /// fpr: per-filter false positive rate target.
  SegmentFilterSet(std::size_t segments, std::size_t items_per_segment,
                   double fpr = 0.01);

  /// Begins a rebuild: clears every segment filter and the removal filter.
  void BeginRebuild() noexcept;

  /// Registers `key` as a member of segment `seg` during a rebuild scan.
  void AddToSegment(std::size_t seg, KeyId key) noexcept;

  /// Marks a key as having left the snapshot region (accessed/evicted).
  void MarkRemoved(KeyId key) noexcept;

  /// Returns the segment index the key (approximately) belongs to, or
  /// nullopt if it is in no tracked segment / was removed since the last
  /// rebuild. Segments are probed bottom-up, so a (rare) double false
  /// positive resolves to the lower segment, which only overweights the
  /// candidate slab slightly.
  [[nodiscard]] std::optional<std::size_t> FindSegment(KeyId key) const noexcept;

  [[nodiscard]] std::size_t segment_count() const noexcept { return filters_.size(); }
  [[nodiscard]] std::size_t footprint_bytes() const noexcept;

 private:
  std::vector<BloomFilter> filters_;
  BloomFilter removal_filter_;
};

}  // namespace pamakv
