// SlabPool: accounting for the cache's slab-granular memory.
//
// Ownership is tracked per (class, subclass): a slab belongs to exactly one
// penalty-band subclass of one size class, and its slots can only hold that
// subclass's items. This matters for PAMA — a slab migrated to a high-
// penalty subclass must serve *that* subclass's items ("it will be used to
// cache items in the segment right beneath the candidate slab", Sec. III);
// were slots class-shared, the class's highest-miss-rate band would absorb
// the space regardless of who earned it. Policies that don't use penalty
// bands run with one subclass per class, where this reduces to Memcached's
// per-class accounting.
//
// The simulator tracks ownership and occupancy rather than real payload
// bytes — every scheme the paper studies decides purely on this accounting
// state. Physical compaction of a donated virtual slab (Sec. III) is
// modeled as: evicting one slab's worth of items frees one slab's worth of
// slots, after which a whole slab can leave the subclass.
#pragma once

#include <cstddef>
#include <vector>

#include "pamakv/slab/size_classes.hpp"
#include "pamakv/util/types.hpp"

namespace pamakv {

class SlabPool {
 public:
  /// num_subclasses: penalty bands per class (1 disables subclassing).
  SlabPool(Bytes capacity_bytes, const SizeClassTable& classes,
           std::uint32_t num_subclasses = 1);

  /// Tries to hand a never-assigned (or released) slab to subclass (c, s).
  [[nodiscard]] bool GrantFreeSlab(ClassId c, SubclassId s);

  /// Moves one slab between subclasses (possibly across classes). The
  /// caller must already have ensured the donor can spare a full slab.
  void TransferSlab(ClassId from_c, SubclassId from_s, ClassId to_c,
                    SubclassId to_s);

  /// Marks one of (c, s)'s slots occupied; fails if no free slot.
  [[nodiscard]] bool AcquireSlot(ClassId c, SubclassId s);

  /// Releases one occupied slot of (c, s).
  void ReleaseSlot(ClassId c, SubclassId s);

  [[nodiscard]] std::size_t total_slabs() const noexcept { return total_slabs_; }
  [[nodiscard]] std::size_t free_slabs() const noexcept { return free_slabs_; }

  // ---- per-subclass accounting ----
  [[nodiscard]] std::size_t SlabCount(ClassId c, SubclassId s) const {
    return slab_count_.at(Index(c, s));
  }
  [[nodiscard]] std::size_t SlotsInUse(ClassId c, SubclassId s) const {
    return slots_in_use_.at(Index(c, s));
  }
  [[nodiscard]] std::size_t FreeSlots(ClassId c, SubclassId s) const {
    return SlabCount(c, s) * classes_->SlotsPerSlab(c) - SlotsInUse(c, s);
  }
  /// True when, evicting nothing further, (c, s) could give up a slab.
  [[nodiscard]] bool CanReleaseSlab(ClassId c, SubclassId s) const {
    return SlabCount(c, s) > 0 && FreeSlots(c, s) >= classes_->SlotsPerSlab(c);
  }
  /// Items that must be evicted from (c, s) before a slab can leave it.
  [[nodiscard]] std::size_t EvictionsNeededToFreeSlab(ClassId c,
                                                      SubclassId s) const;

  // ---- class-level sums (Fig. 3 reporting, single-band policies) ----
  [[nodiscard]] std::size_t ClassSlabCount(ClassId c) const;
  [[nodiscard]] std::size_t ClassSlotsInUse(ClassId c) const;

  [[nodiscard]] const SizeClassTable& classes() const noexcept { return *classes_; }
  [[nodiscard]] std::uint32_t num_subclasses() const noexcept {
    return num_subclasses_;
  }

 private:
  [[nodiscard]] std::size_t Index(ClassId c, SubclassId s) const {
    return static_cast<std::size_t>(c) * num_subclasses_ + s;
  }

  const SizeClassTable* classes_;
  std::uint32_t num_subclasses_;
  std::size_t total_slabs_;
  std::size_t free_slabs_;
  std::vector<std::size_t> slab_count_;
  std::vector<std::size_t> slots_in_use_;
};

}  // namespace pamakv
