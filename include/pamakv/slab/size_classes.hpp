// Memcached-style size-class geometry.
//
// The paper (Sec. IV) follows Memcached's class definition: the first class
// stores items of at most 64 bytes and every class doubles the previous
// class's maximum. Memory is carved into fixed-size slabs; a slab assigned
// to class c is divided into slab_bytes / slot_size(c) equal slots, and one
// slot holds one item. The "items per slab" quantity (slots-per-slab, spp)
// also defines PAMA's segment length for that class.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "pamakv/util/types.hpp"

namespace pamakv {

struct SizeClassConfig {
  /// Slab size in bytes. The paper uses Memcached's 1 MiB; the scaled
  /// default keeps slab *counts* paper-equivalent at laptop-size caches.
  Bytes slab_bytes = 64 * 1024;
  /// Slot size of class 0 (the smallest items).
  Bytes min_slot_bytes = 16;
  /// Multiplier between consecutive classes (Memcached default factor 2
  /// per the paper's Sec. IV description).
  double growth_factor = 2.0;
  /// Number of classes. 12 matches the paper's figures (classes 0..11).
  std::uint32_t num_classes = 12;
};

class SizeClassTable {
 public:
  explicit SizeClassTable(const SizeClassConfig& config);

  /// Smallest class whose slot fits `size` bytes; nullopt when the item is
  /// larger than the biggest slot (Memcached refuses such stores).
  [[nodiscard]] std::optional<ClassId> ClassForSize(Bytes size) const noexcept;

  [[nodiscard]] Bytes SlotBytes(ClassId c) const { return slot_bytes_.at(c); }
  [[nodiscard]] std::size_t SlotsPerSlab(ClassId c) const {
    return slots_per_slab_.at(c);
  }
  [[nodiscard]] std::uint32_t num_classes() const noexcept {
    return static_cast<std::uint32_t>(slot_bytes_.size());
  }
  [[nodiscard]] Bytes slab_bytes() const noexcept { return slab_bytes_; }
  [[nodiscard]] Bytes max_item_bytes() const { return slot_bytes_.back(); }

 private:
  Bytes slab_bytes_;
  std::vector<Bytes> slot_bytes_;
  std::vector<std::size_t> slots_per_slab_;
};

}  // namespace pamakv
