// Trace file I/O.
//
// Two interchangeable formats:
//  * binary (.pkvt): 16-byte header ("PKVT" magic, version, record count),
//    then fixed 24-byte little-endian records — compact and fast to replay;
//  * CSV: "op,key,size,penalty_us" with op in {GET,SET,DEL} — easy to
//    produce from external traces (e.g. converted Twitter/Memcached logs).
//
// Readers implement TraceSource, so files replay through the simulator
// exactly like synthetic workloads.
#pragma once

#include <cstdio>
#include <memory>
#include <string>

#include "pamakv/trace/request.hpp"

namespace pamakv {

/// On-disk record layout (binary format). Kept explicit so the format is a
/// stable contract rather than an accident of struct padding.
struct BinaryTraceRecord {
  std::uint64_t key;
  std::uint64_t timestamp_us;
  std::uint32_t size;
  std::uint32_t penalty_us;  // penalties are capped at 5 s, fits in 32 bits
  std::uint8_t op;           // Op enum value
  std::uint8_t reserved[7];  // explicit padding, zeroed on write
};
static_assert(sizeof(BinaryTraceRecord) == 32);

class BinaryTraceWriter {
 public:
  explicit BinaryTraceWriter(const std::string& path);
  ~BinaryTraceWriter();

  BinaryTraceWriter(const BinaryTraceWriter&) = delete;
  BinaryTraceWriter& operator=(const BinaryTraceWriter&) = delete;

  void Write(const Request& request);
  /// Flushes, back-patches the record count into the header and closes.
  void Close();

  [[nodiscard]] std::uint64_t written() const noexcept { return written_; }

 private:
  std::FILE* file_ = nullptr;
  std::uint64_t written_ = 0;
};

class BinaryTraceReader final : public TraceSource {
 public:
  explicit BinaryTraceReader(const std::string& path);
  ~BinaryTraceReader() override;

  bool Next(Request& out) override;
  void Reset() override;
  [[nodiscard]] std::uint64_t TotalRequests() const noexcept override {
    return total_;
  }

 private:
  std::FILE* file_ = nullptr;
  std::uint64_t total_ = 0;
  std::uint64_t read_ = 0;
};

class CsvTraceWriter {
 public:
  explicit CsvTraceWriter(const std::string& path);
  ~CsvTraceWriter();

  CsvTraceWriter(const CsvTraceWriter&) = delete;
  CsvTraceWriter& operator=(const CsvTraceWriter&) = delete;

  void Write(const Request& request);
  void Close();

 private:
  std::FILE* file_ = nullptr;
};

class CsvTraceReader final : public TraceSource {
 public:
  explicit CsvTraceReader(const std::string& path);
  ~CsvTraceReader() override;

  bool Next(Request& out) override;
  void Reset() override;

 private:
  std::FILE* file_ = nullptr;
  bool header_skipped_ = false;
};

/// Drains `source` into a binary trace file; returns records written.
std::uint64_t DumpTrace(TraceSource& source, const std::string& path);

}  // namespace pamakv
