// Request records and the pull-based trace source interface.
//
// A trace is a stream of (op, key, size, penalty) records. Sizes and
// penalties ride along with every request because that is exactly the
// information the paper reconstructs from the Facebook traces: the value
// size determines the slab class, and the penalty is estimated from the
// GET-miss -> SET gap of the same key (capped at 5 s, defaulting to 100 ms
// when unknown — Sec. IV).
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "pamakv/util/types.hpp"

namespace pamakv {

struct Request {
  MicroSecs timestamp_us = 0;
  Op op = Op::kGet;
  KeyId key = 0;
  Bytes size = 0;
  MicroSecs penalty_us = 0;
};

/// Pull-based request stream. Generators synthesize on demand (a 20M-request
/// workload costs no memory), readers stream from files; both can Reset()
/// so the simulator can replay a trace — the paper repeats APP's trace in
/// the second half of its experiment (Sec. IV-B).
class TraceSource {
 public:
  virtual ~TraceSource() = default;

  /// Fills `out` with the next request; false at end-of-stream.
  virtual bool Next(Request& out) = 0;

  /// Restarts the stream from the first request.
  virtual void Reset() = 0;

  /// Total requests per pass, or 0 when unknown.
  [[nodiscard]] virtual std::uint64_t TotalRequests() const noexcept { return 0; }
};

/// In-memory trace over a pre-materialized request vector. Benchmarks replay
/// through it so generation cost stays out of the timed region; tests use it
/// to replay hand-built or filtered request sequences.
class VectorTrace final : public TraceSource {
 public:
  VectorTrace() = default;
  explicit VectorTrace(std::vector<Request> requests)
      : requests_(std::move(requests)) {}

  /// Drains `source` into memory (one pass; `source` is left exhausted).
  static VectorTrace Materialize(TraceSource& source) {
    std::vector<Request> all;
    all.reserve(static_cast<std::size_t>(source.TotalRequests()));
    Request r;
    while (source.Next(r)) all.push_back(r);
    return VectorTrace(std::move(all));
  }

  bool Next(Request& out) override {
    if (next_ >= requests_.size()) return false;
    out = requests_[next_++];
    return true;
  }
  void Reset() override { next_ = 0; }
  [[nodiscard]] std::uint64_t TotalRequests() const noexcept override {
    return requests_.size();
  }

  [[nodiscard]] const std::vector<Request>& requests() const noexcept {
    return requests_;
  }
  std::vector<Request>& requests() noexcept { return requests_; }

 private:
  std::vector<Request> requests_;
  std::size_t next_ = 0;
};

}  // namespace pamakv
