// Per-key miss-penalty model.
//
// Fig. 1 of the paper shows Facebook miss penalties spreading from a few
// milliseconds to several seconds at *every* item size, with only a mild
// upward trend for larger items. Sec. IV adds two estimation rules: gaps
// above 5 s are discarded, and keys with unknown penalty get the observed
// mean, roughly 100 ms.
//
// The model reproduces that: each key draws a lognormal penalty (heavy
// right tail), optionally shifted upward with the key's size class, clipped
// to [min, max]; a configurable fraction of keys gets the flat 100 ms
// default instead. Penalties are a pure function of (key, seed), so every
// occurrence of a key carries the same penalty without storing state.
#pragma once

#include <cstdint>

#include "pamakv/util/rng.hpp"
#include "pamakv/util/types.hpp"

namespace pamakv {

struct PenaltyModelConfig {
  /// Median penalty (µs) of the lognormal at class 0. exp(mu_log).
  MicroSecs median_us = 20'000;
  /// Log-space sigma; 1.8 spreads the bulk across ~3 decades with a
  /// visible multi-second tail, matching Fig. 1's scatter.
  double sigma_log = 1.8;
  /// Additive shift of mu_log per size class (mild size correlation).
  double per_class_log_shift = 0.08;
  /// Clip range (the paper discards > 5 s gaps; sub-0.2 ms misses are
  /// indistinguishable from hits in the traces).
  MicroSecs min_us = 200;
  MicroSecs max_us = 5'000'000;
  /// Fraction of keys with unknown penalty, assigned `default_us`.
  double default_fraction = 0.15;
  MicroSecs default_us = 100'000;
  /// Popularity-penalty correlation: log-mu boost applied per decade of
  /// key popularity (popular keys draw larger penalties). Expensive values
  /// in KV caches are typically results of heavy back-end computations
  /// that many clients request, so a mild positive correlation is the
  /// realistic default; 0 makes penalty independent of popularity.
  double popularity_log_boost = 0.0;
  std::uint64_t seed = 0x9e11a17e;
};

class PenaltyModel {
 public:
  explicit PenaltyModel(const PenaltyModelConfig& config = {})
      : config_(config) {}

  /// Deterministic penalty for a key that lives in size class `cls`.
  /// `popularity_percentile` in (0, 1]: the key's rank divided by the key
  /// population (small == popular); 1.0 disables the popularity boost
  /// (one-shot keys and callers without rank information use that).
  [[nodiscard]] MicroSecs PenaltyFor(KeyId key, ClassId cls,
                                     double popularity_percentile = 1.0) const;

  [[nodiscard]] const PenaltyModelConfig& config() const noexcept {
    return config_;
  }

 private:
  PenaltyModelConfig config_;
};

}  // namespace pamakv
