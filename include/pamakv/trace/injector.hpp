// ColdBurstInjector: the Sec. IV-C experiment's unpopular-item burst.
//
// Wraps a trace and, once the underlying stream has served a configured
// number of GETs, splices in a burst of requests "accessing and adding new
// KV items": each injected key arrives as a GET (which misses and charges
// its penalty) followed by its write-allocating SET — that is how the
// paper's impacted classes "receive the cold misses in a short time period
// and produce many misses", which is exactly what bait-takes PSA's
// miss-count-driven relocation. Injected bytes total a fraction of the
// cache (the paper uses 10%), confined to a few adjacent size classes
// ("impacted classes" — bursty requests usually come from one application
// and share characteristics). The injected keys are never requested again,
// so a well-behaved allocator should cede their space quickly.
#pragma once

#include <memory>
#include <vector>

#include "pamakv/slab/size_classes.hpp"
#include "pamakv/trace/request.hpp"
#include "pamakv/util/rng.hpp"

namespace pamakv {

struct ColdBurstConfig {
  /// GETs served before the burst starts (paper: 0.35x10^8 of 8x10^8).
  std::uint64_t after_gets = 350'000;
  /// Total injected bytes (paper: 10% of the cache size).
  Bytes total_bytes = 0;
  /// Size classes the burst lands in (paper: three adjacent classes).
  std::vector<ClassId> impacted_classes = {2, 3, 4};
  /// Miss penalty attached to injected items.
  MicroSecs penalty_us = 100'000;
  std::uint64_t seed = 0xc01db125ULL;
};

class ColdBurstInjector final : public TraceSource {
 public:
  ColdBurstInjector(std::unique_ptr<TraceSource> inner,
                    const ColdBurstConfig& config,
                    const SizeClassConfig& geometry);

  bool Next(Request& out) override;
  void Reset() override;
  [[nodiscard]] std::uint64_t TotalRequests() const noexcept override {
    return inner_->TotalRequests();  // injected SETs are extra
  }

  [[nodiscard]] std::uint64_t injected_count() const noexcept {
    return injected_count_;
  }
  [[nodiscard]] Bytes injected_bytes() const noexcept { return injected_bytes_; }

 private:
  [[nodiscard]] bool EmitBurstRequest(Request& out);

  std::unique_ptr<TraceSource> inner_;
  ColdBurstConfig config_;
  SizeClassTable classes_;
  Rng rng_;
  std::uint64_t gets_seen_ = 0;
  Bytes injected_bytes_ = 0;
  std::uint64_t injected_count_ = 0;
  bool bursting_ = false;
  bool burst_done_ = false;
  bool pending_set_ = false;
  Request pending_request_;
};

}  // namespace pamakv
