// Synthetic Facebook-like Memcached workloads.
//
// The paper evaluates on proprietary Facebook traces characterized in
// Atikoglu et al. (SIGMETRICS'12): Zipf-like key popularity, sizes spanning
// bytes..~1 MB with class-specific request shares, diurnal load/working-set
// drift, and (for APP) a large population of keys touched exactly once
// (~40% of misses are cold). These generators reproduce the marginal and
// joint distributions those schemes actually react to; DESIGN.md records
// the substitution rationale.
//
// Determinism: a key's size class, exact size and miss penalty are pure
// functions of (key, seed) — no per-key state is stored, so 10^7-request
// streams cost O(1) memory and replay bit-identically after Reset().
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "pamakv/slab/size_classes.hpp"
#include "pamakv/trace/penalty_model.hpp"
#include "pamakv/trace/request.hpp"
#include "pamakv/util/rng.hpp"
#include "pamakv/util/zipf.hpp"

namespace pamakv {

struct WorkloadConfig {
  std::string name = "custom";
  std::uint64_t seed = 1;
  std::uint64_t num_requests = 1'000'000;
  /// Recurring key population (cold one-shot keys are drawn elsewhere).
  std::uint64_t key_space = 500'000;
  double zipf_alpha = 1.0;
  /// Request mass per size class; keys are assigned a class by hashing, so
  /// popularity and size stay independent (small/popular and large/popular
  /// keys both exist, as the paper stresses).
  std::vector<double> class_weights;
  /// Op mix; the remainder after get+set is DELs.
  double get_fraction = 0.96;
  double set_fraction = 0.03;
  /// Probability a GET targets a brand-new never-repeated key (APP's cold
  /// misses). The key leaves the recurring population forever.
  double cold_fraction = 0.0;
  /// Working-set drift: fraction of the key space the hot set slides across
  /// over one diurnal period (0 disables).
  double diurnal_amplitude = 0.0;
  std::uint64_t diurnal_period_requests = 2'000'000;
  /// Mean request interarrival time for synthetic timestamps.
  MicroSecs interarrival_us = 100;
  PenaltyModelConfig penalty;
  SizeClassConfig geometry;
};

/// The ETC-like preset: "the most representative of large-scale,
/// general-purpose KV stores" — small items dominate (class 0 receives the
/// large majority of requests), mild drift.
[[nodiscard]] WorkloadConfig EtcWorkload(std::uint64_t num_requests,
                                         std::uint64_t seed = 1);

/// The APP-like preset: larger items, a big one-shot key population
/// (~40% of misses are cold on the first pass), stronger class spread.
[[nodiscard]] WorkloadConfig AppWorkload(std::uint64_t num_requests,
                                         std::uint64_t seed = 2);

/// USR-like: two tiny key sizes, essentially one value size (the paper
/// excludes it for that reason; provided for completeness).
[[nodiscard]] WorkloadConfig UsrWorkload(std::uint64_t num_requests,
                                         std::uint64_t seed = 3);

/// SYS-like: very small data set (a small cache already yields ~100% hits).
[[nodiscard]] WorkloadConfig SysWorkload(std::uint64_t num_requests,
                                         std::uint64_t seed = 4);

/// VAR-like: dominated by updates (SET/REPLACE), few GETs.
[[nodiscard]] WorkloadConfig VarWorkload(std::uint64_t num_requests,
                                         std::uint64_t seed = 5);

class SyntheticTrace final : public TraceSource {
 public:
  explicit SyntheticTrace(const WorkloadConfig& config);

  bool Next(Request& out) override;
  void Reset() override;
  [[nodiscard]] std::uint64_t TotalRequests() const noexcept override {
    return config_.num_requests;
  }

  /// Size class / exact size / penalty assigned to a key (also used by the
  /// simulator's write-allocate path and by tests).
  [[nodiscard]] ClassId ClassOfKey(KeyId key) const;
  [[nodiscard]] Bytes SizeOfKey(KeyId key) const;
  [[nodiscard]] MicroSecs PenaltyOfKey(KeyId key) const;

  [[nodiscard]] const WorkloadConfig& config() const noexcept { return config_; }

 private:
  [[nodiscard]] KeyId DrawRecurringKey();

  WorkloadConfig config_;
  SizeClassTable classes_;
  ZipfSampler zipf_;
  DiscreteSampler class_sampler_;
  PenaltyModel penalty_;
  Rng rng_;
  std::uint64_t emitted_ = 0;
  std::uint64_t cold_counter_ = 0;
  MicroSecs now_us_ = 0;
};

/// Concatenates `passes` replays of an underlying source (the paper's
/// "repeat the same trace in the second half" setup for APP).
class RepeatedTrace final : public TraceSource {
 public:
  RepeatedTrace(std::unique_ptr<TraceSource> inner, std::uint64_t passes);

  bool Next(Request& out) override;
  void Reset() override;
  [[nodiscard]] std::uint64_t TotalRequests() const noexcept override {
    return inner_->TotalRequests() * passes_;
  }

 private:
  std::unique_ptr<TraceSource> inner_;
  std::uint64_t passes_;
  std::uint64_t done_passes_ = 0;
};

}  // namespace pamakv
