// GhostList: the paper's "extended section" of a subclass LRU stack
// (Sec. III, second challenge). It remembers the keys and miss penalties —
// never the values — of the most recently evicted items, ordered by
// eviction recency: rank 0 sits "right beneath the candidate slab", i.e. it
// is the first item a newly granted slab would re-cache (the receiving
// segment), rank spp..2*spp-1 is the next ghost segment, and so on.
//
// Implementation: a ring buffer keyed by eviction sequence number. A live
// entry's rank is the count of live entries evicted after it, answered
// exactly in O(log capacity) by a Fenwick tree over ring slots. Removals
// (ghost hits whose item is re-fetched, or key deletions) leave holes that
// the Fenwick tree skips, so ranks stay exact without compaction.
//
// The key -> sequence map is a pre-sized open-addressing table rather than
// std::unordered_map: Push sits on the eviction hot path of every worker,
// and the node allocation a std::unordered_map insert performs was the last
// per-request heap allocation in the engine's steady state. Live entries
// are bounded by the ring capacity, so the table is sized once at
// construction (load <= 0.5) and never rehashes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "pamakv/util/fenwick.hpp"
#include "pamakv/util/rng.hpp"
#include "pamakv/util/types.hpp"

namespace pamakv {

class GhostList {
 public:
  struct Hit {
    MicroSecs penalty;
    std::size_t rank;  ///< 0 == most recently evicted
  };

  explicit GhostList(std::size_t capacity);

  /// Records an eviction. If the key already has a ghost entry, the stale
  /// entry is dropped first. The oldest entry is overwritten once the ring
  /// wraps, bounding memory at `capacity` entries.
  void Push(KeyId key, MicroSecs penalty);

  /// Looks up a key without modifying the list.
  [[nodiscard]] std::optional<Hit> Lookup(KeyId key) const;

  /// Removes a key (the item was re-inserted into the cache, or deleted).
  /// Returns true if it was present.
  bool Remove(KeyId key);

  [[nodiscard]] std::size_t size() const noexcept { return map_size_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return entries_.size(); }
  [[nodiscard]] bool Contains(KeyId key) const noexcept {
    return MapFind(key) != nullptr;
  }

 private:
  struct Entry {
    KeyId key = 0;
    MicroSecs penalty = 0;
    std::uint64_t seq = 0;
    bool live = false;
  };

  /// Open-addressing slot of the key -> seq map; seq == kNoSeq marks empty
  /// (sequence numbers are a live counter that can never reach 2^64 - 1).
  struct MapSlot {
    KeyId key = 0;
    std::uint64_t seq = kNoSeq;
  };
  static constexpr std::uint64_t kNoSeq = ~0ULL;

  [[nodiscard]] std::size_t SlotOf(std::uint64_t seq) const noexcept {
    return static_cast<std::size_t>(seq % entries_.size());
  }
  void Expire(std::size_t slot);
  /// Count of live entries with sequence numbers in (seq, next_seq_).
  [[nodiscard]] std::size_t LiveNewerThan(std::uint64_t seq) const;

  [[nodiscard]] std::size_t MapIdeal(KeyId key) const noexcept {
    return static_cast<std::size_t>(Mix64(key)) & map_mask_;
  }
  /// Pointer to the slot holding `key`, or nullptr when absent.
  [[nodiscard]] const MapSlot* MapFind(KeyId key) const noexcept;
  [[nodiscard]] MapSlot* MapFind(KeyId key) noexcept {
    return const_cast<MapSlot*>(
        static_cast<const GhostList*>(this)->MapFind(key));
  }
  void MapUpsert(KeyId key, std::uint64_t seq) noexcept;
  /// Backward-shift removal of the slot (obtained via MapFind).
  void MapEraseSlot(MapSlot* slot) noexcept;

  std::vector<Entry> entries_;
  FenwickTree live_counts_;
  std::vector<MapSlot> map_slots_;  // key -> seq, fixed size, never rehashes
  std::size_t map_mask_ = 0;
  std::size_t map_size_ = 0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace pamakv
