// LruStack: an LRU stack with O(log n) exact rank queries.
//
// PAMA needs to know, on every hit, whether the touched item lies in one of
// the bottom (m+1) segments of its subclass stack and in which segment
// (paper Sec. III). A plain doubly-linked LRU list cannot answer positional
// queries, so the stack is a randomized order-statistic treap ordered by
// recency: in-order position 0 is the MRU top, position size()-1 is the LRU
// bottom. Subtree sizes give rank-of-node and k-th-node in O(log n).
//
// This exact-rank structure serves three roles:
//  * ground truth for the Bloom-filter approximation (ablation + tests),
//  * the eviction order for every policy (bottom() is the LRU victim),
//  * per-window rebuild scans for the Bloom mode (bottom-up iteration).
//
// Nodes are pool-allocated and pointer-stable; each cache item stores its
// node pointer for O(1) access on hit.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

#include "pamakv/util/rng.hpp"
#include "pamakv/util/types.hpp"

namespace pamakv {

class LruStack {
 public:
  struct Node {
    Node* left = nullptr;
    Node* right = nullptr;
    Node* parent = nullptr;
    std::size_t subtree_size = 1;
    std::uint64_t priority = 0;
    ItemHandle value = kInvalidHandle;
  };

  /// seed: deterministic priority stream (experiments are reproducible).
  explicit LruStack(std::uint64_t seed = 1) noexcept : rng_(seed) {}

  LruStack(const LruStack&) = delete;
  LruStack& operator=(const LruStack&) = delete;
  LruStack(LruStack&&) = default;
  LruStack& operator=(LruStack&&) = default;

  /// Pushes a new item at the MRU top. Returns its stable node.
  Node* PushTop(ItemHandle value);

  /// Removes the node from the stack and recycles it.
  void Erase(Node* node) noexcept;

  /// Moves an existing node to the MRU top (the LRU "touch" operation).
  /// The node pointer remains valid.
  void MoveToTop(Node* node) noexcept;

  /// 0-based distance from the MRU top.
  [[nodiscard]] std::size_t RankFromTop(const Node* node) const noexcept;

  /// 0-based distance from the LRU bottom (0 == next eviction victim).
  [[nodiscard]] std::size_t RankFromBottom(const Node* node) const noexcept {
    return size_ - 1 - RankFromTop(node);
  }

  /// k-th node counting from the LRU bottom (k == 0 is the bottom).
  /// Returns nullptr when k >= size().
  [[nodiscard]] Node* KthFromBottom(std::size_t k) const noexcept;

  /// The LRU victim, or nullptr when empty.
  [[nodiscard]] Node* Bottom() const noexcept {
    return size_ ? KthFromBottom(0) : nullptr;
  }

  /// Neighbour one position closer to the top (nullptr at the top).
  [[nodiscard]] static Node* TowardTop(Node* node) noexcept;

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  /// Invariant checker used by tests: heap order on priorities, correct
  /// subtree sizes and parent pointers. O(n).
  [[nodiscard]] bool CheckInvariants() const noexcept;

 private:
  [[nodiscard]] static std::size_t SizeOf(const Node* n) noexcept {
    return n ? n->subtree_size : 0;
  }
  static void Update(Node* n) noexcept {
    n->subtree_size = 1 + SizeOf(n->left) + SizeOf(n->right);
  }
  /// Rotates `n` above its parent, preserving in-order sequence.
  void RotateUp(Node* n) noexcept;
  /// Detaches a node from the tree without recycling it.
  void Unlink(Node* node) noexcept;
  /// Inserts an existing (detached) node at the top position.
  void LinkTop(Node* node) noexcept;

  Node* AllocateNode(ItemHandle value);
  void RecycleNode(Node* node) noexcept;
  [[nodiscard]] bool CheckSubtree(const Node* n, const Node* parent) const noexcept;

  Node* root_ = nullptr;
  std::size_t size_ = 0;
  std::deque<Node> pool_;
  std::vector<Node*> free_nodes_;
  Rng rng_;
};

}  // namespace pamakv
