// pamakv-server: memcached-ASCII TCP server over the PAMA cache library.
//
//   pamakv-server --policy=pama --shards=4 --capacity-mb=256 --port=11211
//
// Any scheme from the experiment registry (memcached, psa, twemcache,
// facebook-age, pre-pama, pama, pama-exact, lama-hr, lama-st) can back the
// server; each shard gets its own engine + policy instance. The `flags`
// field of `set` carries the key's miss penalty in microseconds, which is
// what makes penalty bands work over the wire (see DESIGN.md §8).
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <iostream>
#include <string>

#include <memory>

#include "pamakv/net/cache_service.hpp"
#include "pamakv/net/metrics_http.hpp"
#include "pamakv/net/server.hpp"
#include "pamakv/sim/experiment.hpp"
#include "pamakv/util/arg_parser.hpp"
#include "pamakv/util/failpoint.hpp"
#include "pamakv/util/metrics.hpp"

namespace pamakv {
namespace {

int Main(int argc, char** argv) {
  ArgParser args(argc, argv);
  args.Describe("host", "listen address (default 127.0.0.1)")
      .Describe("port", "TCP port; 0 picks an ephemeral one (default 11211)")
      .Describe("policy", "allocation scheme per shard (default pama)")
      .Describe("shards", "independent engines, keys hash-routed (default 4)")
      .Describe("threads", "event-loop threads (default 1)")
      .Describe("capacity-mb", "total cache capacity in MiB (default 256)")
      .Describe("default-penalty-us",
                "miss penalty for keys stored with flags=0 (default 1000)")
      .Describe("max-conns",
                "shed accepts with SERVER_ERROR above this many open "
                "connections; 0 = unlimited (default 0)")
      .Describe("idle-timeout-ms",
                "close a connection after this long without I/O; "
                "0 = never (default 0)")
      .Describe("request-timeout-ms",
                "close a connection whose in-flight request stalls this "
                "long; 0 = never (default 0)")
      .Describe("tx-pause-kb",
                "stop reading a client whose unsent responses exceed this "
                "(resumes at a quarter of it); 0 = off (default 256)")
      .Describe("tx-cap-mb",
                "hard-close a client whose unsent responses exceed this; "
                "0 = unlimited (default 0)")
      .Describe("drain-ms",
                "graceful-shutdown grace period on SIGTERM/SIGINT before "
                "in-flight connections are force-closed (default 5000)")
      .Describe("accept-retry-ms",
                "how long to pause accepting after fd exhaustion before "
                "re-arming the listener (default 10)")
      .Describe("metrics-port",
                "serve Prometheus text exposition on this port at /metrics "
                "(0 picks an ephemeral one); off unless given")
      .Describe("metrics-dump-ms",
                "append every metric series to --metrics-dump-file this "
                "often; 0 = off (default 0; implies the metrics endpoint)")
      .Describe("metrics-dump-file",
                "CSV file the periodic dump appends to "
                "(default results/metrics.csv)");
  if (args.HelpRequested()) {
    args.PrintHelp(std::cout, "pamakv-server",
                   "memcached-ASCII server over the PAMA cache");
    return 0;
  }

  const std::string scheme = args.GetString("policy", "pama");
  if (!IsKnownScheme(scheme)) {
    std::fprintf(stderr, "unknown --policy=%s; known:", scheme.c_str());
    for (const auto& name : AllSchemeNames()) {
      std::fprintf(stderr, " %s", name.c_str());
    }
    std::fprintf(stderr, "\n");
    return 1;
  }

  net::CacheServiceConfig cache_cfg;
  cache_cfg.shards = static_cast<std::size_t>(args.GetInt("shards", 4));
  cache_cfg.capacity_bytes =
      static_cast<Bytes>(args.GetInt("capacity-mb", 256)) * 1024 * 1024;
  cache_cfg.default_penalty_us = args.GetInt("default-penalty-us", 1'000);

  net::ServerConfig server_cfg;
  server_cfg.host = args.GetString("host", "127.0.0.1");
  server_cfg.port = static_cast<std::uint16_t>(args.GetInt("port", 11211));
  server_cfg.threads = static_cast<std::size_t>(args.GetInt("threads", 1));
  server_cfg.max_conns =
      static_cast<std::size_t>(args.GetInt("max-conns", 0));
  server_cfg.idle_timeout_ms = args.GetInt("idle-timeout-ms", 0);
  server_cfg.request_timeout_ms = args.GetInt("request-timeout-ms", 0);
  server_cfg.tx_pause_bytes =
      static_cast<std::size_t>(args.GetInt("tx-pause-kb", 256)) * 1024;
  server_cfg.tx_resume_bytes = server_cfg.tx_pause_bytes / 4;
  server_cfg.tx_cap_bytes =
      static_cast<std::size_t>(args.GetInt("tx-cap-mb", 0)) * 1024 * 1024;
  server_cfg.accept_retry_ms = args.GetInt("accept-retry-ms", 10);
  const std::int64_t drain_ms = args.GetInt("drain-ms", 5'000);

#if PAMAKV_FAILPOINTS
  // Chaos builds can arm injection points from the environment, e.g.
  //   PAMAKV_FAILPOINTS_CFG="net.accept4=EMFILE@p:0.1;net.writev=short:1"
  if (const std::size_t armed = util::FailPoints::ConfigureFromEnv();
      armed > 0) {
    std::fprintf(stderr, "# failpoints: %zu armed from env\n", armed);
  }
#endif

  net::CacheService service(cache_cfg, [&](Bytes bytes) {
    return MakeEngine(scheme, bytes, SizeClassConfig{});
  });

  // Block the shutdown signals before the loop threads spawn so they
  // inherit the mask and only main's sigwait sees them.
  sigset_t sigs;
  sigemptyset(&sigs);
  sigaddset(&sigs, SIGINT);
  sigaddset(&sigs, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &sigs, nullptr);

  net::Server server(server_cfg, service);

  // Observability: one registry feeds the `stats detail` command, the
  // Prometheus endpoint and the periodic CSV dump (DESIGN.md §10).
  util::MetricsRegistry registry;
  std::unique_ptr<net::MetricsHttpServer> metrics_http;
  const std::int64_t dump_ms = args.GetInt("metrics-dump-ms", 0);
  if (args.Has("metrics-port") || dump_ms > 0) {
    service.RegisterMetrics(registry);
    server.EnableMetrics(registry);
    net::MetricsHttpConfig metrics_cfg;
    metrics_cfg.host = server_cfg.host;
    metrics_cfg.port =
        static_cast<std::uint16_t>(args.GetInt("metrics-port", 0));
    metrics_cfg.dump_ms = dump_ms;
    metrics_cfg.dump_path =
        args.GetString("metrics-dump-file", "results/metrics.csv");
    metrics_http =
        std::make_unique<net::MetricsHttpServer>(metrics_cfg, registry);
  }

  server.Start();
  if (metrics_http != nullptr) {
    metrics_http->Start();
    std::fprintf(stderr, "# metrics: http://%s:%u/metrics%s\n",
                 server_cfg.host.c_str(), metrics_http->port(),
                 dump_ms > 0 ? " (+ periodic CSV dump)" : "");
  }
  std::fprintf(stderr,
               "# pamakv-server: policy=%s shards=%zu capacity=%lluMiB "
               "threads=%zu listening on %s:%u\n",
               scheme.c_str(), cache_cfg.shards,
               static_cast<unsigned long long>(cache_cfg.capacity_bytes >> 20),
               server_cfg.threads, server_cfg.host.c_str(), server.port());

  int sig = 0;
  sigwait(&sigs, &sig);
  std::fprintf(stderr, "# signal %d: draining (up to %lldms)\n", sig,
               static_cast<long long>(drain_ms));
  // Graceful drain: stop accepting, let in-flight requests complete and
  // tx buffers flush, then tear down — so a loadgen run that SIGTERMs the
  // server still gets responses for everything it sent.
  if (metrics_http != nullptr) metrics_http->Stop();
  const bool clean = server.Shutdown(std::chrono::milliseconds(drain_ms));
  std::fprintf(stderr, "# drain %s\n",
               clean ? "complete" : "expired (connections force-closed)");

  const CacheStats stats = service.TotalStats();
  std::fprintf(stderr,
               "# served %llu gets (%.1f%% hits), %llu sets, %llu conns "
               "(%llu rejected, %llu timed out)\n",
               static_cast<unsigned long long>(stats.gets),
               100.0 * stats.HitRatio(),
               static_cast<unsigned long long>(stats.sets),
               static_cast<unsigned long long>(server.total_connections()),
               static_cast<unsigned long long>(server.rejected_connections()),
               static_cast<unsigned long long>(server.timed_out_connections()));
  return 0;
}

}  // namespace
}  // namespace pamakv

int main(int argc, char** argv) {
  try {
    return pamakv::Main(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "pamakv-server: %s\n", e.what());
    return 1;
  }
}
